"""Additional coverage: edge cases across modules that the main suites
don't reach."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.classifier import HDClassifier
from repro.core.encoding import IDLevelEncoder, RBFEncoder
from repro.core.hypervector import bundle, permute, random_bipolar
from repro.core.model import TrainingReport
from repro.data import load_dataset
from repro.experiments.bandwidth import _level_frequency_for
from repro.hierarchy.topology import build_pecan, build_tree


class TestClassifierOnlineMode:
    @pytest.fixture(scope="class")
    def problem(self):
        rng = np.random.default_rng(2)
        centers = rng.standard_normal((3, 8)) * 3.0
        x = np.vstack([centers[c] + rng.standard_normal((40, 8)) for c in range(3)])
        y = np.repeat([0, 1, 2], 40)
        enc = RBFEncoder(8, 512, gamma=0.3, seed=3).encode(x)
        return enc.astype(float), y

    def test_online_and_batched_converge_similarly(self, problem):
        enc, y = problem
        results = {}
        for mode in ("online", "batched"):
            clf = HDClassifier(3, 512).fit_initial(enc, y)
            clf.retrain(enc, y, epochs=10, shuffle_seed=1, mode=mode)
            results[mode] = clf.accuracy(enc, y)
        assert abs(results["online"] - results["batched"]) < 0.1

    def test_online_mode_updates_per_sample(self, problem):
        enc, y = problem
        clf = HDClassifier(3, 512).fit_initial(enc, y)
        history = clf.retrain(enc, y, epochs=3, shuffle_seed=2, mode="online")
        assert len(history) <= 3
        assert all(0.0 <= h <= 1.0 for h in history)


class TestEncodingExtras:
    def test_encode_accepts_1d(self):
        enc = RBFEncoder(6, 64, seed=4)
        out = enc.encode(np.ones(6))
        assert out.shape == (1, 64)

    def test_id_level_multiplies(self):
        enc = IDLevelEncoder(10, 128, seed=5)
        assert enc.multiplies_per_sample() == 10 * 128

    def test_rbf_full_sparsity_keeps_one_weight(self):
        enc = RBFEncoder(50, 64, sparsity=0.999, seed=6)
        assert enc.block_length == 1
        assert np.all(np.count_nonzero(enc.weights, axis=1) <= 1)


class TestHypervectorExtras:
    def test_bundle_float_dtype_preserved(self):
        stack = np.ones((3, 4)) * 0.5
        assert np.allclose(bundle(stack), 1.5)

    def test_permute_wraps_beyond_dimension(self):
        hv = random_bipolar(8, seed=7)
        assert np.array_equal(permute(hv, 8), hv)
        assert np.array_equal(permute(hv, 9), permute(hv, 1))


class TestTrainingReport:
    def test_final_accuracy_fallback(self):
        report = TrainingReport(
            initial_accuracy=0.7, retrain_history=[], n_samples=10
        )
        assert report.final_accuracy == 0.7

    def test_final_accuracy_from_history(self):
        report = TrainingReport(
            initial_accuracy=0.7, retrain_history=[0.8, 0.9], n_samples=10
        )
        assert report.final_accuracy == 0.9


class TestTopologyExtras:
    def test_pecan_partial_last_house(self):
        h = build_pecan(n_appliances=7, appliances_per_house=6, houses_per_street=2)
        houses = h.nodes_at_level(2)
        sizes = sorted(len(h.nodes[n].children) for n in houses)
        assert sizes == [1, 6]

    def test_tree_nodes_at_level(self):
        h = build_tree(4)
        assert len(h.nodes_at_level(1)) == 4
        assert len(h.nodes_at_level(2)) == 2
        assert len(h.nodes_at_level(3)) == 1

    def test_internal_nodes_postorder_subset(self):
        h = build_tree(6)
        internal = h.internal_nodes()
        assert h.root_id in internal
        assert all(not h.nodes[n].is_leaf for n in internal)


class TestBandwidthInternals:
    def test_level_frequency_one_hot(self):
        freq = _level_frequency_for(2, depth=3)
        assert freq == {1: 0.0, 2: 1.0, 3: 0.0}
        assert sum(freq.values()) == 1.0


class TestCliReport:
    def test_report_roundtrip(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig7_accuracy.txt").write_text("CONTENT\n")
        out_file = tmp_path / "out.md"
        code = cli_main(
            [
                "report", "--results-dir", str(results),
                "--output", str(out_file),
            ]
        )
        assert code == 0
        assert "CONTENT" in out_file.read_text()

    def test_report_to_stdout(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig7_accuracy.txt").write_text("BODY\n")
        assert cli_main(["report", "--results-dir", str(results)]) == 0
        assert "BODY" in capsys.readouterr().out


class TestDatasetSubsetInterplay:
    def test_subset_then_train(self):
        """A device can train on its own feature slice end to end."""
        from repro.core.model import EdgeHDModel

        data = load_dataset("PDP", scale=0.03, max_train=400, max_test=150, seed=8)
        local = data.subset_features(list(range(12)))
        model = EdgeHDModel(12, data.n_classes, dimension=512, seed=9)
        model.fit(local.train_x, local.train_y, retrain_epochs=4)
        acc = model.accuracy(local.test_x, local.test_y)
        assert acc > 1.0 / data.n_classes
