"""Property-based tests of :mod:`repro.network.failure` (Hypothesis).

The failure-injection primitives sit under both the Fig. 12 robustness
experiments and the serving chaos harness, so their contracts are
pinned over randomized shapes and fractions rather than a handful of
examples: output shape/dtype preserved, the input never mutated, the
realized loss matching ``round(fraction * n)`` exactly, untouched
entries bit-exact, and every draw seed-deterministic.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.failure import (
    drop_blocks,
    drop_dimensions,
    flip_dimensions,
)

#: all entries drawn away from 0 so injected zeros are unambiguous.
matrices = st.tuples(
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=96),
    st.integers(min_value=0, max_value=2**31 - 1),
).map(
    lambda t: np.random.default_rng(t[2]).uniform(0.5, 1.5, size=(t[0], t[1]))
)

fractions = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(mat=matrices, frac=fractions, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_drop_dimensions_contract(mat, frac, seed):
    before = mat.copy()
    out = drop_dimensions(mat, frac, seed=seed)
    assert out.shape == mat.shape
    assert out.dtype == np.float64
    assert np.array_equal(mat, before), "input must not be mutated"
    n_rows, dim = mat.shape
    n_lost = int(round(frac * dim))
    for r in range(n_rows):
        zeros = np.flatnonzero(out[r] == 0.0)
        assert zeros.size == n_lost
        kept = np.setdiff1d(np.arange(dim), zeros)
        assert np.array_equal(out[r, kept], mat[r, kept]), (
            "surviving dimensions must be bit-exact"
        )
    again = drop_dimensions(mat, frac, seed=seed)
    assert np.array_equal(out, again), "same seed must give same erasures"


@given(
    mat=matrices,
    frac=fractions,
    block_size=st.integers(min_value=1, max_value=48),
    seed=seeds,
)
@settings(max_examples=60, deadline=None)
def test_drop_blocks_contract(mat, frac, block_size, seed):
    before = mat.copy()
    out = drop_blocks(mat, frac, block_size=block_size, seed=seed)
    assert out.shape == mat.shape
    assert out.dtype == np.float64
    assert np.array_equal(mat, before), "input must not be mutated"
    n_rows, dim = mat.shape
    n_blocks = max(1, dim // block_size)
    n_lost = min(int(round(frac * n_blocks)), n_blocks)
    for r in range(n_rows):
        zeros = np.flatnonzero(out[r] == 0.0)
        if n_lost == 0:
            assert zeros.size == 0
        else:
            # The zeros must form exactly n_lost aligned blocks, each
            # erased end to end (the last block absorbs the ragged
            # tail when block_size doesn't divide the dimension).
            block_ids = np.minimum(zeros // block_size, n_blocks - 1)
            lost_blocks = np.unique(block_ids)
            assert lost_blocks.size == n_lost
            for b in lost_blocks:
                start = int(b) * block_size
                end = dim if b == n_blocks - 1 else start + block_size
                assert np.all(out[r, start:end] == 0.0), (
                    "a lost block must be erased end to end"
                )
        kept = np.setdiff1d(np.arange(dim), zeros)
        assert np.array_equal(out[r, kept], mat[r, kept])
    again = drop_blocks(mat, frac, block_size=block_size, seed=seed)
    assert np.array_equal(out, again), "same seed must give same erasures"


@given(mat=matrices, frac=fractions, seed=seeds)
@settings(max_examples=60, deadline=None)
def test_flip_dimensions_contract(mat, frac, seed):
    before = mat.copy()
    out = flip_dimensions(mat, frac, seed=seed)
    assert out.shape == mat.shape
    assert out.dtype == np.float64
    assert np.array_equal(mat, before), "input must not be mutated"
    flipped = out != mat
    assert np.array_equal(out[flipped], -mat[flipped]), (
        "changed entries must be exact sign flips"
    )
    assert np.array_equal(out[~flipped], mat[~flipped])
    realized = flipped.mean()
    if mat.size >= 64:
        # The CLT-style bound is meaningless for tiny matrices (one
        # element realizes a rate of exactly 0 or 1).
        assert abs(realized - frac) <= 4.0 * np.sqrt(
            max(frac * (1 - frac), 1e-12) / mat.size
        ) + 5e-2, "realized flip rate must track the requested fraction"
    again = flip_dimensions(mat, frac, seed=seed)
    assert np.array_equal(out, again)


@given(
    dim=st.integers(min_value=1, max_value=96),
    frac=fractions,
    seed=seeds,
)
@settings(max_examples=40, deadline=None)
def test_one_dimensional_round_trip(dim, frac, seed):
    """1-D inputs come back 1-D with the same per-row semantics."""
    vec = np.random.default_rng(seed).uniform(0.5, 1.5, size=dim)
    for fn in (
        lambda v: drop_dimensions(v, frac, seed=seed),
        lambda v: drop_blocks(v, frac, block_size=8, seed=seed),
        lambda v: flip_dimensions(v, frac, seed=seed),
    ):
        out = fn(vec)
        assert out.shape == (dim,)
        assert out.dtype == np.float64


@given(mat=matrices, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_zero_fraction_is_identity(mat, seed):
    for fn in (drop_dimensions, flip_dimensions):
        assert np.array_equal(fn(mat, 0.0, seed=seed), mat)
    assert np.array_equal(drop_blocks(mat, 0.0, seed=seed), mat)


@given(mat=matrices, seed=seeds)
@settings(max_examples=20, deadline=None)
def test_full_fraction_erases_everything(mat, seed):
    assert np.all(drop_dimensions(mat, 1.0, seed=seed) == 0.0)
    assert np.all(drop_blocks(mat, 1.0, block_size=7, seed=seed) == 0.0)
