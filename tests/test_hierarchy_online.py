"""Unit + integration tests for hierarchical online learning (Sec. IV-D)."""

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import load_dataset, partition_features
from repro.hierarchy.federation import EdgeHDFederation
from repro.hierarchy.online import OnlineLearner, OnlineSession
from repro.hierarchy.topology import build_tree
from repro.network.message import MessageKind


@pytest.fixture(scope="module")
def online_setup():
    """Federation trained on HALF the data; the rest streams online."""
    data = load_dataset("PDP", scale=0.1, max_train=1200, max_test=400, seed=9)
    part = partition_features(data.n_features, 5)
    fed = EdgeHDFederation(
        build_tree(5), part, data.n_classes,
        EdgeHDConfig(dimension=1024, batch_size=10, retrain_epochs=5, seed=21),
    )
    half = data.n_train // 2
    fed.fit_offline(data.train_x[:half], data.train_y[:half])
    stream_x, stream_y = data.train_x[half:], data.train_y[half:]
    return fed, stream_x, stream_y, data


class TestOnlineLearner:
    def test_record_and_pending(self, online_setup):
        fed, sx, sy, data = online_setup
        learner = OnlineLearner(fed)
        leaf = fed.hierarchy.leaves()[0]
        dim = fed.hierarchy.nodes[leaf].dimension
        learner.record_feedback(leaf, np.ones(dim), predicted_class=0)
        assert learner.pending_feedback() == 1

    def test_propagate_clears_residuals(self, online_setup):
        fed, sx, sy, data = online_setup
        learner = OnlineLearner(fed)
        leaf = fed.hierarchy.leaves()[0]
        dim = fed.hierarchy.nodes[leaf].dimension
        learner.record_feedback(leaf, np.ones(dim), predicted_class=0)
        learner.propagate()
        assert learner.pending_feedback() == 0

    def test_propagate_messages_follow_path(self, online_setup):
        fed, sx, sy, data = online_setup
        learner = OnlineLearner(fed)
        leaf = fed.hierarchy.leaves()[0]
        dim = fed.hierarchy.nodes[leaf].dimension
        learner.record_feedback(leaf, np.ones(dim), predicted_class=0)
        messages = learner.propagate()
        # Residuals travel from the leaf along its path to the root.
        path = fed.hierarchy.path_to_root(leaf)
        expected_edges = set(zip(path[:-1], path[1:]))
        actual_edges = {(m.source, m.destination) for m in messages}
        assert actual_edges == expected_edges
        assert all(m.kind == MessageKind.RESIDUALS for m in messages)

    def test_propagate_empty_no_messages(self, online_setup):
        fed, sx, sy, data = online_setup
        learner = OnlineLearner(fed)
        assert learner.propagate() == []

    def test_feedback_modifies_models_after_propagate(self, online_setup):
        fed, sx, sy, data = online_setup
        learner = OnlineLearner(fed)
        leaf = fed.hierarchy.leaves()[0]
        dim = fed.hierarchy.nodes[leaf].dimension
        before = fed.classifiers[leaf].class_hypervectors.copy()
        learner.record_feedback(leaf, np.ones(dim), predicted_class=0)
        learner.propagate()
        after = fed.classifiers[leaf].class_hypervectors
        assert not np.array_equal(before, after)

    def test_root_receives_leaf_residual(self, online_setup):
        fed, sx, sy, data = online_setup
        learner = OnlineLearner(fed)
        leaf = fed.hierarchy.leaves()[0]
        dim = fed.hierarchy.nodes[leaf].dimension
        root_before = fed.classifiers[fed.root_id].class_hypervectors.copy()
        learner.record_feedback(leaf, np.ones(dim), predicted_class=0)
        learner.propagate()
        root_after = fed.classifiers[fed.root_id].class_hypervectors
        assert not np.array_equal(root_before, root_after)

    def test_invalid_learning_rate(self, online_setup):
        fed, *_ = online_setup
        with pytest.raises(ValueError):
            OnlineLearner(fed, learning_rate=0.0)


class TestOnlineSession:
    def test_metrics_structure(self, online_setup):
        fed, sx, sy, data = online_setup
        session = OnlineSession(fed)
        metrics = session.run(
            sx[:200], sy[:200], data.test_x, data.test_y, n_steps=2
        )
        assert len(metrics) == 3  # initial + 2 steps
        assert metrics[0].step == 0 and metrics[0].samples_seen == 0
        assert metrics[-1].samples_seen == 200
        for m in metrics:
            assert set(m.accuracy_by_level) == {1, 2, 3}
            assert set(m.inference_frequency_by_level) == {1, 2, 3}
            assert 0.0 <= m.central_accuracy <= 1.0
            assert 0.0 <= m.end_node_accuracy <= 1.0

    def test_online_learning_improves_accuracy(self, online_setup):
        """The Fig. 9 claim: accuracy rises with online steps."""
        fed, sx, sy, data = online_setup
        # Fresh federation so earlier tests don't interfere.
        part = partition_features(data.n_features, 5)
        fresh = EdgeHDFederation(
            build_tree(5), part, data.n_classes,
            EdgeHDConfig(dimension=1024, batch_size=10, retrain_epochs=5, seed=21),
        )
        half = data.n_train // 2
        fresh.fit_offline(data.train_x[:half], data.train_y[:half])
        session = OnlineSession(OnlineLearner(fresh).federation,
                                learner=OnlineLearner(fresh, feedback_includes_label=True))
        metrics = session.run(sx, sy, data.test_x, data.test_y, n_steps=4)
        first = np.mean(list(metrics[0].accuracy_by_level.values()))
        last = np.mean(list(metrics[-1].accuracy_by_level.values()))
        assert last >= first - 0.02  # must not degrade; usually improves

    def test_feedback_events_counted(self, online_setup):
        fed, sx, sy, data = online_setup
        session = OnlineSession(fed)
        metrics = session.run(
            sx[:100], sy[:100], data.test_x, data.test_y, n_steps=1
        )
        assert metrics[1].feedback_events >= 0
        assert metrics[1].feedback_events <= 100

    def test_invalid_args(self, online_setup):
        fed, sx, sy, data = online_setup
        session = OnlineSession(fed)
        with pytest.raises(ValueError):
            session.run(sx[:10], sy[:10], data.test_x, data.test_y, n_steps=0)
        with pytest.raises(ValueError):
            session.run(sx[:10], sy[:9], data.test_x, data.test_y, n_steps=1)
        with pytest.raises(ValueError):
            session.run(sx[:10], sy[:10], data.test_x, data.test_y,
                        n_steps=1, chunk_size=0)
