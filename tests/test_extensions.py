"""Tests for the extension modules: vertical-federated DNN, model
quantization, and the scaling study."""

import numpy as np
import pytest

from repro.baselines.federated_dnn import VerticalFedMLP
from repro.core.classifier import HDClassifier
from repro.core.encoding import RBFEncoder
from repro.core.quantize import (
    QuantizedModel,
    dequantize_model,
    quantize_classifier,
    quantize_model,
)
from repro.data import make_classification, partition_features
from repro.experiments.scaling import SYSTEMS, format_scaling, run_scaling
from repro.hierarchy.topology import build_tree
from repro.network.message import MessageKind


@pytest.fixture(scope="module")
def vertical_problem():
    x, y = make_classification(
        700, 24, 3, feature_blocks=4, seed=17, noise=0.4
    )
    partition = partition_features(24, 4)
    return x[:550], y[:550], x[550:], y[550:], partition


class TestVerticalFedMLP:
    def test_learns(self, vertical_problem):
        tr_x, tr_y, te_x, te_y, partition = vertical_problem
        model = VerticalFedMLP(
            partition, 3, embedding_dim=16, hidden_dim=32,
            epochs=25, seed=1,
        )
        report = model.fit(tr_x, tr_y)
        assert report.loss_history[-1] < report.loss_history[0]
        assert model.accuracy(te_x, te_y) > 0.6

    def test_proba_normalized(self, vertical_problem):
        tr_x, tr_y, te_x, _, partition = vertical_problem
        model = VerticalFedMLP(partition, 3, epochs=3, seed=2)
        model.fit(tr_x, tr_y)
        probs = model.predict_proba(te_x[:9])
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_training_messages_per_epoch(self, vertical_problem):
        *_, partition = vertical_problem
        hierarchy = build_tree(4)
        model = VerticalFedMLP(partition, 3, epochs=5, seed=3)
        messages = model.training_messages(hierarchy, n_samples=100)
        # 2 messages (up + down) per non-root node per epoch.
        assert len(messages) == 2 * (len(hierarchy.nodes) - 1) * 5
        kinds = {m.kind for m in messages}
        assert kinds == {MessageKind.RAW_DATA, MessageKind.CONTROL}

    def test_traffic_dwarfs_edgehd(self, vertical_problem):
        """Challenge (iii): DNN federation is communication-heavy."""
        from repro.experiments.efficiency import edgehd_training_messages

        *_, partition = vertical_problem
        hierarchy = build_tree(4)
        hierarchy.allocate_dimensions(4000, partition.feature_counts())
        model = VerticalFedMLP(partition, 3, epochs=20, seed=4)
        dnn_bytes = sum(
            m.payload_bytes
            for m in model.training_messages(hierarchy, n_samples=10_000)
        )
        edge_bytes = sum(
            m.payload_bytes
            for m in edgehd_training_messages(hierarchy, 10_000, 3, 75)
        )
        assert dnn_bytes > 50 * edge_bytes

    def test_inference_messages(self, vertical_problem):
        *_, partition = vertical_problem
        hierarchy = build_tree(4)
        model = VerticalFedMLP(partition, 3, seed=5)
        messages = model.inference_messages(hierarchy, 10)
        assert all(m.kind == MessageKind.QUERY for m in messages)
        assert len(messages) == len(hierarchy.nodes) - 1

    def test_predict_before_fit(self, vertical_problem):
        *_, partition = vertical_problem
        model = VerticalFedMLP(partition, 3, seed=6)
        with pytest.raises(RuntimeError):
            model.predict(np.ones((1, 24)))

    def test_invalid_params(self, vertical_problem):
        *_, partition = vertical_problem
        with pytest.raises(ValueError):
            VerticalFedMLP(partition, 1)
        with pytest.raises(ValueError):
            VerticalFedMLP(partition, 3, embedding_dim=0)
        with pytest.raises(ValueError):
            VerticalFedMLP(partition, 3, learning_rate=0.0)


class TestQuantization:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = np.random.default_rng(7)
        centers = rng.standard_normal((3, 10)) * 3.0
        x = np.vstack([centers[c] + rng.standard_normal((60, 10)) for c in range(3)])
        y = np.repeat([0, 1, 2], 60)
        enc = RBFEncoder(10, 1024, gamma=0.3, seed=8).encode(x).astype(float)
        clf = HDClassifier(3, 1024).fit_initial(enc, y)
        clf.retrain(enc, y, epochs=5, shuffle_seed=0)
        return clf, enc, y

    def test_roundtrip_error_bounded(self, fitted):
        clf, enc, y = fitted
        quantized = quantize_model(clf.class_hypervectors, n_bits=8)
        restored = dequantize_model(quantized)
        scale = np.abs(clf.class_hypervectors).max()
        assert np.max(np.abs(restored - clf.class_hypervectors)) < scale / 100

    def test_8bit_preserves_accuracy(self, fitted):
        clf, enc, y = fitted
        q_clf, quantized = quantize_classifier(clf, n_bits=8)
        assert q_clf.accuracy(enc, y) >= clf.accuracy(enc, y) - 0.01
        assert quantized.n_bits == 8

    def test_2bit_degrades_gracefully(self, fitted):
        clf, enc, y = fitted
        q_clf, _ = quantize_classifier(clf, n_bits=2)
        assert q_clf.accuracy(enc, y) > 1.0 / 3.0

    def test_compression_ratio(self, fitted):
        clf, _, _ = fitted
        quantized = quantize_model(clf.class_hypervectors, n_bits=8)
        assert quantized.compression_ratio() == pytest.approx(4.0)

    def test_storage_bits(self):
        model = np.ones((2, 100))
        quantized = quantize_model(model, n_bits=4)
        assert quantized.storage_bits() == 2 * 100 * 4 + 2 * 32

    def test_zero_class_handled(self):
        model = np.vstack([np.zeros(16), np.ones(16)])
        quantized = quantize_model(model, n_bits=8)
        restored = dequantize_model(quantized)
        assert np.all(restored[0] == 0.0)

    def test_invalid_bits(self, fitted):
        clf, _, _ = fitted
        with pytest.raises(ValueError):
            quantize_model(clf.class_hypervectors, n_bits=1)
        with pytest.raises(ValueError):
            quantize_model(clf.class_hypervectors, n_bits=32)

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            quantize_classifier(HDClassifier(2, 8))


class TestScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scaling(node_counts=(4, 16, 64), n_samples=10_000)

    def test_grid_complete(self, result):
        for system in SYSTEMS:
            for n in result.node_counts:
                assert (system, n) in result.time_s
                assert (system, n) in result.traffic_bytes

    def test_edgehd_scales_best(self, result):
        assert result.growth("edgehd") < result.growth("vertical-dnn")

    def test_edgehd_traffic_nearly_flat(self, result):
        lo = result.traffic_bytes[("edgehd", 4)]
        hi = result.traffic_bytes[("edgehd", 64)]
        assert hi < 3 * lo

    def test_vertical_dnn_traffic_linear(self, result):
        lo = result.traffic_bytes[("vertical-dnn", 4)]
        hi = result.traffic_bytes[("vertical-dnn", 64)]
        assert hi == pytest.approx(16 * lo, rel=0.1)

    def test_edgehd_fastest_at_scale(self, result):
        n = max(result.node_counts)
        assert result.time_s[("edgehd", n)] < result.time_s[("centralized-hd", n)]
        assert result.time_s[("edgehd", n)] < result.time_s[("vertical-dnn", n)]

    def test_format(self, result):
        assert "Scaling" in format_scaling(result)

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            run_scaling(node_counts=(1, 2))
