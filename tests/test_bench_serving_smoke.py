"""Tier-1 smoke for the serving benchmark (its --smoke mode).

Loads ``benchmarks/bench_serving.py`` and runs its timing-independent
checks: the serving runtime must produce the exact answers and message
accounting of the offline hierarchical walk, and an overloaded
shed-policy run must terminate with counted sheds and bounded queues —
the guard that micro-batching can never silently change a decision and
overload can never grow memory without a test noticing.
"""

import importlib.util
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module():
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        "bench_serving_smoke", BENCH_DIR / "bench_serving.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_smoke_mode():
    bench = _load_bench_module()
    evidence = bench.check_equivalence()
    assert evidence["labels_equal"] is True
    assert evidence["bytes_equal"] is True
    assert evidence["overload_shed"] > 0
    assert evidence["overload_high_water"] <= 4


def test_bench_smoke_cli_entrypoint(capsys):
    bench = _load_bench_module()
    bench.main(["--smoke"])
    assert "serving smoke OK" in capsys.readouterr().out
