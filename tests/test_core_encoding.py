"""Unit tests for the feature-to-hypervector encoders."""

import numpy as np
import pytest

from repro.core.encoding import (
    CosSinEncoder,
    IDLevelEncoder,
    LinearEncoder,
    RBFEncoder,
    make_encoder,
)


@pytest.fixture(scope="module")
def features(rng=np.random.default_rng(0)):
    return rng.standard_normal((40, 12))


class TestRBFEncoder:
    def test_output_shape_and_values(self, features):
        enc = RBFEncoder(12, 400, seed=1)
        out = enc.encode(features)
        assert out.shape == (40, 400)
        assert set(np.unique(out)) <= {-1, 1}

    def test_single_vector(self, features):
        enc = RBFEncoder(12, 128, seed=1)
        one = enc.encode_one(features[0])
        assert one.shape == (128,)
        assert np.array_equal(one, enc.encode(features[:1])[0])

    def test_deterministic(self, features):
        a = RBFEncoder(12, 256, seed=9).encode(features)
        b = RBFEncoder(12, 256, seed=9).encode(features)
        assert np.array_equal(a, b)

    def test_kernel_approximation(self):
        """Eq. 1: inner products approximate the Gaussian kernel."""
        gamma = 0.5
        enc = RBFEncoder(6, 20_000, gamma=gamma, binarize=False, seed=2)
        rng = np.random.default_rng(3)
        for _ in range(5):
            a = rng.standard_normal(6)
            b = rng.standard_normal(6)
            expected = np.exp(-(gamma**2) * np.sum((a - b) ** 2) / 2.0)
            approx = enc.kernel_approximation(a, b)
            assert approx == pytest.approx(expected, abs=0.05)

    def test_similar_inputs_similar_encodings(self):
        enc = RBFEncoder(8, 4000, gamma=0.3, seed=4)
        base = np.ones(8)
        near = base + 0.01
        far = base + 10.0
        e_base = enc.encode_one(base).astype(float)
        e_near = enc.encode_one(near).astype(float)
        e_far = enc.encode_one(far).astype(float)
        sim_near = e_base @ e_near / 4000
        sim_far = e_base @ e_far / 4000
        assert sim_near > sim_far
        assert sim_near > 0.9

    def test_sparsity_zeroes_weights(self):
        enc = RBFEncoder(100, 300, sparsity=0.8, seed=5)
        nonzero_per_row = np.count_nonzero(enc.weights, axis=1)
        assert np.all(nonzero_per_row <= enc.block_length)
        assert enc.block_length == 20

    def test_sparsity_block_contiguous_mod_n(self):
        enc = RBFEncoder(10, 50, sparsity=0.5, seed=6)
        for row, start in zip(enc.weights, enc.block_starts):
            expect = set((start + np.arange(enc.block_length)) % 10)
            actual = set(np.flatnonzero(row))
            assert actual <= expect

    def test_sparse_multiplies_reduced(self):
        dense = RBFEncoder(100, 200, sparsity=0.0, seed=7)
        sparse = RBFEncoder(100, 200, sparsity=0.8, seed=7)
        assert sparse.multiplies_per_sample() < dense.multiplies_per_sample()

    def test_sparse_encoder_still_learns_similarity(self):
        enc = RBFEncoder(16, 4000, gamma=0.3, sparsity=0.8, seed=8)
        base = np.zeros(16)
        e0 = enc.encode_one(base).astype(float)
        e1 = enc.encode_one(base + 0.01).astype(float)
        assert e0 @ e1 / 4000 > 0.9

    def test_invalid_gamma(self):
        with pytest.raises(ValueError):
            RBFEncoder(4, 16, gamma=0.0)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            RBFEncoder(4, 16, sparsity=1.5)

    def test_wrong_feature_count(self, features):
        enc = RBFEncoder(12, 64, seed=1)
        with pytest.raises(ValueError):
            enc.encode(features[:, :5])


class TestCosSinEncoder:
    def test_shape_and_binarize(self, features):
        enc = CosSinEncoder(12, 200, seed=10)
        out = enc.encode(features)
        assert out.shape == (40, 200)
        assert set(np.unique(out)) <= {-1, 1}

    def test_non_binarized_range(self, features):
        enc = CosSinEncoder(12, 200, binarize=False, seed=10)
        out = enc.encode(features)
        # cos(a+b) * sin(a) is bounded by 1 in magnitude.
        assert np.all(np.abs(out) <= 1.0 + 1e-12)

    def test_deterministic(self, features):
        a = CosSinEncoder(12, 100, seed=11).encode(features)
        b = CosSinEncoder(12, 100, seed=11).encode(features)
        assert np.array_equal(a, b)


class TestLinearEncoder:
    def test_shape(self, features):
        enc = LinearEncoder(12, 300, seed=12)
        assert enc.encode(features).shape == (40, 300)

    def test_is_linear_before_binarization(self, features):
        enc = LinearEncoder(12, 64, binarize=False, seed=13)
        a = enc.encode(features[:1])
        b = enc.encode(2.0 * features[:1])
        assert np.allclose(b, 2.0 * a)

    def test_sign_invariance_to_scaling(self, features):
        """A linear encoder cannot distinguish x from 2x after sign()."""
        enc = LinearEncoder(12, 256, seed=14)
        assert np.array_equal(
            enc.encode(features[:1]), enc.encode(3.0 * features[:1])
        )


class TestIDLevelEncoder:
    def test_shape_and_values(self, features):
        enc = IDLevelEncoder(12, 500, seed=15)
        out = enc.encode(features)
        assert out.shape == (40, 500)
        assert set(np.unique(out)) <= {-1, 1}

    def test_nearby_levels_similar(self):
        enc = IDLevelEncoder(1, 4000, n_levels=16, value_range=(0.0, 1.0), seed=16)
        lv = enc.level_vectors.astype(float)
        sim_adjacent = lv[0] @ lv[1] / 4000
        sim_far = lv[0] @ lv[15] / 4000
        assert sim_adjacent > sim_far

    def test_quantization_clips(self):
        enc = IDLevelEncoder(2, 64, value_range=(-1.0, 1.0), seed=17)
        levels = enc._quantize(np.array([[-100.0, 100.0]]))
        assert levels[0, 0] == 0
        assert levels[0, 1] == enc.n_levels - 1

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            IDLevelEncoder(4, 16, n_levels=1)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            IDLevelEncoder(4, 16, value_range=(1.0, 1.0))


class TestFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("rbf", RBFEncoder),
            ("cos-sin", CosSinEncoder),
            ("linear", LinearEncoder),
            ("id-level", IDLevelEncoder),
        ],
    )
    def test_kinds(self, kind, cls):
        enc = make_encoder(kind, 10, 64, seed=1)
        assert isinstance(enc, cls)
        assert enc.n_features == 10
        assert enc.dimension == 64

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_encoder("fourier", 10, 64)

    def test_default_gamma_scales_with_features(self):
        wide = make_encoder("rbf", 400, 64, seed=1)
        narrow = make_encoder("rbf", 4, 64, seed=1)
        assert isinstance(wide, RBFEncoder) and isinstance(narrow, RBFEncoder)
        assert wide.gamma < narrow.gamma

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            make_encoder("rbf", 0, 64)
        with pytest.raises(ValueError):
            make_encoder("rbf", 10, 0)
