"""Tier-1 smoke for the chaos-serving benchmark (its --smoke mode).

Loads ``benchmarks/bench_chaos_serving.py`` and runs its
timing-independent checks: an inert FaultPlan must serve bit-identically
to no plan and to the offline walk, a chaos run must repeat its
semantic fingerprint under the same seed, and a run with drop 0.3 plus
one permanently crashed non-root node must answer every request — the
guard that fault injection can never silently change fault-free
behaviour or lose work.
"""

import importlib.util
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module():
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        "bench_chaos_smoke", BENCH_DIR / "bench_chaos_serving.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_chaos_smoke_mode():
    bench = _load_bench_module()
    evidence = bench.check_chaos()
    assert evidence["inert_plan_equal"] is True
    assert evidence["chaos_deterministic"] is True
    assert len(evidence["crashed_nodes"]) == 1
    assert evidence["degraded"] > 0


def test_bench_chaos_smoke_cli_entrypoint(capsys):
    bench = _load_bench_module()
    bench.main(["--smoke"])
    assert "chaos smoke OK" in capsys.readouterr().out
