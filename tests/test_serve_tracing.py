"""Request tracing through the serving runtime, and the serve-report.

The tentpole property under test: a :class:`TraceContext` rides on each
request through queues and escalation bundles, so after a chaos run
(message drops + a crashed internal node) a degraded request's full
causal timeline — admission, hops, escalation attempts, timeouts,
retries, the degraded answer — is reconstructable from the trace log
alone, with consistent request ids across the trace, the flight
recorder and the telemetry stream, and with a seed-deterministic
semantic skeleton across two same-seed runs. The report module and the
``repro serve-report`` CLI are tested on the same traces.
"""

from __future__ import annotations

import math

import pytest

import repro.obs as obs
from repro.cli import main
from repro.hierarchy import HierarchicalInference
from repro.network.medium import get_medium
from repro.serve import (
    FaultPlan,
    ServeConfig,
    ServingRuntime,
    make_workload,
)
from repro.serve.report import (
    build_report,
    render_report,
    render_timeline,
    serve_report,
    summarize_request,
)
from repro.serve.tracing import (
    SEMANTIC_EVENTS,
    RequestTraceLog,
    TraceContext,
    TraceEvent,
    load_request_trace,
    semantic_timeline,
)

MEDIUM = get_medium("wired-1gbps")
CONFIG = ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512)

#: the causal skeleton a retried-then-degraded request must show.
_DEGRADED_KINDS = {"retry", "timeout", "degraded", "done"}


@pytest.fixture(scope="module")
def chaos_traced(trained_federation):
    """Two same-seed traced chaos runs (drops + one crashed internal)."""
    federation, _, data = trained_federation
    inference = HierarchicalInference(federation, confidence_threshold=0.7)
    workload = make_workload(
        data.test_x, inference, seed=3, labels=data.test_y
    )
    nodes = federation.hierarchy.nodes
    victim = next(
        nid for nid, n in nodes.items()
        if n.parent is not None and n.children
    )
    plan = FaultPlan(
        seed=7, drop_probability=0.35,
        crash_windows={victim: (0.0, math.inf)},
    )

    def run():
        obs.reset()
        obs.enable()
        try:
            runtime = ServingRuntime(
                inference, MEDIUM, CONFIG, fault_plan=plan
            )
            return runtime.serve_open_loop(workload, rate_rps=3000.0, seed=1)
        finally:
            obs.disable()
            obs.reset()

    first, second = run(), run()
    return first, second, inference, workload


def _degraded_target(result):
    """A degraded request whose trace shows retry + timeout + degraded."""
    by_req = result.traces.by_request()
    for resp in result.responses:
        if not resp.degraded or resp.deciding_node < 0:
            continue
        kinds = {e.event for e in by_req.get(resp.index, [])}
        if _DEGRADED_KINDS <= kinds:
            return resp.index, by_req[resp.index]
    raise AssertionError("no degraded request with retry+timeout traced")


class TestTracePropagation:
    def test_all_evidence_streams_present(self, chaos_traced):
        first, _, _, workload = chaos_traced
        assert first.traces is not None
        assert first.telemetry is not None
        assert first.flight_events
        assert first.traces.n_requests == len(workload)
        assert first.n_degraded > 0 and first.n_retries > 0

    def test_every_request_has_one_complete_timeline(self, chaos_traced):
        first, _, _, workload = chaos_traced
        by_req = first.traces.by_request()
        assert sorted(by_req) == list(range(len(workload)))
        for request_id, events in by_req.items():
            assert all(e.request_id == request_id for e in events)
            seqs = [e.seq for e in events]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
            assert events[0].event == "admitted"
            assert [e.event for e in events].count("done") == 1
            assert events[-1].event == "done"

    def test_timestamps_share_one_monotonic_clock(self, chaos_traced):
        first, _, _, _ = chaos_traced
        for events in first.traces.by_request().values():
            times = [e.t_ms for e in events]
            assert all(
                later >= earlier - 1e-6
                for earlier, later in zip(times, times[1:])
            )

    def test_degraded_request_timeline_reconstructable(self, chaos_traced):
        """The acceptance walk: one degraded request, end to end."""
        first, _, _, _ = chaos_traced
        request_id, events = _degraded_target(first)
        assert all(e.request_id == request_id for e in events)
        done = events[-1]
        assert done.attrs["outcome"] == "degraded"
        degraded = next(e for e in events if e.event == "degraded")
        assert degraded.attrs["reason"] in (
            "retries_exhausted", "hop_timeout"
        )
        timeline = semantic_timeline(events)
        assert timeline[0].startswith("admitted@")
        assert timeline[-1].endswith("=degraded")
        assert any(tag.startswith("retry@") for tag in timeline)
        assert any(tag.startswith("timeout@") for tag in timeline)
        # escalation attempts carry the (child->parent) edge
        assert any(
            tag.startswith("escalate@") and ":" in tag for tag in timeline
        )

    def test_attempt_and_hop_accounting(self, chaos_traced):
        first, _, _, _ = chaos_traced
        _, events = _degraded_target(first)
        done = events[-1]
        n_escalate = sum(1 for e in events if e.event == "escalate")
        assert done.attrs["attempts"] == n_escalate >= 2
        assert done.attrs["hops"] >= 1

    def test_flight_recorder_shares_request_ids(self, chaos_traced):
        first, _, _, _ = chaos_traced
        request_id, _ = _degraded_target(first)
        kinds = {
            e.kind for e in first.flight_events
            if e.request_id == request_id
        }
        assert "degraded" in kinds

    def test_telemetry_sampled_per_node_series(self, chaos_traced):
        first, _, _, _ = chaos_traced
        names = first.telemetry.names()
        assert "serve.telemetry.inflight" in names
        assert "serve.telemetry.queue_depth" in names
        assert "serve.telemetry.degraded" in names
        # the final (post-run) sample of each per-node degraded series
        # must add up to the run's degraded total — same evidence, two
        # streams
        last_by_node = {}
        for sample in first.telemetry:
            if sample.name == "serve.telemetry.degraded":
                last_by_node[sample.labels] = sample.value
        assert sum(last_by_node.values()) == first.n_degraded > 0

    def test_semantic_timelines_deterministic_across_runs(self, chaos_traced):
        first, second, _, _ = chaos_traced
        t1 = {
            rid: semantic_timeline(evs)
            for rid, evs in first.traces.by_request().items()
        }
        t2 = {
            rid: semantic_timeline(evs)
            for rid, evs in second.traces.by_request().items()
        }
        assert t1 == t2

    def test_disabled_mode_attaches_no_trace(self, chaos_traced):
        _, _, inference, workload = chaos_traced
        assert not obs.enabled()
        runtime = ServingRuntime(inference, MEDIUM, CONFIG)
        result = runtime.serve_open_loop(workload, rate_rps=3000.0, seed=1)
        assert result.traces is None
        assert result.telemetry is None
        assert result.flight_events == []


class TestRequestTraceLog:
    def _event(self, request_id, seq, event="hop"):
        return TraceEvent(
            request_id=request_id, seq=seq, t_ms=float(seq), event=event
        )

    def test_ring_drops_oldest_and_counts(self):
        log = RequestTraceLog(max_events=3)
        log.extend([self._event(0, s) for s in range(5)])
        assert len(log) == 3
        assert log.dropped == 2
        assert log.n_requests == 1
        assert [e.seq for e in log] == [2, 3, 4]

    def test_by_request_groups_and_sorts(self):
        log = RequestTraceLog()
        log.extend([self._event(1, 1), self._event(1, 0)])
        log.extend([self._event(0, 0)])
        grouped = log.by_request()
        assert sorted(grouped) == [0, 1]
        assert [e.seq for e in grouped[1]] == [0, 1]
        assert log.n_requests == 2

    def test_empty_extend_counts_no_request(self):
        log = RequestTraceLog()
        log.extend([])
        assert log.n_requests == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            RequestTraceLog(max_events=0)

    def test_export_load_round_trip_skips_foreign_lines(self, tmp_path):
        log = RequestTraceLog()
        log.extend([self._event(4, 0, "admitted"), self._event(4, 1, "done")])
        path = tmp_path / "trace.jsonl"
        assert log.export_jsonl(path) == 2
        # span records and blank lines may share the file; both skipped
        with path.open("a") as fh:
            fh.write('{"name": "span.encode", "duration_ns": 12}\n\n')
        loaded = load_request_trace(path)
        assert sorted(loaded) == [4]
        assert [e.event for e in loaded[4]] == ["admitted", "done"]


class TestTraceContext:
    def test_emit_assigns_sequential_seq(self):
        ctx = TraceContext(3)
        first = ctx.emit("admitted", 0.0, node=1)
        second = ctx.emit("hop", 1.0, node=1, batch=4)
        assert (first.seq, second.seq) == (0, 1)
        assert second.attrs == {"batch": 4}
        assert all(e.request_id == 3 for e in ctx.events)

    def test_visit_deduplicates_immediate_repeats(self):
        ctx = TraceContext(0)
        for node in (2, 2, 5, 2):
            ctx.visit(node)
        assert ctx.hop_path == [2, 5, 2]

    def test_semantic_timeline_filters_timing_events(self):
        ctx = TraceContext(1)
        ctx.emit("admitted", 0.0, node=2)
        ctx.emit("encode", 0.5, node=2, ms=0.4)
        ctx.emit("escalate", 1.0, node=2, edge="2->0", attempt=1)
        ctx.emit("done", 2.0, node=0, outcome="ok")
        timeline = semantic_timeline(ctx.events)
        assert timeline == ["admitted@2", "escalate@2:2->0#a1", "done@0=ok"]
        assert "encode" not in SEMANTIC_EVENTS


class TestServeReport:
    def test_build_report_sections(self, chaos_traced):
        first, _, _, workload = chaos_traced
        traces = first.traces.by_request()
        report = build_report(traces, slo_ms=50.0)
        assert report["n_requests"] == len(workload)
        assert report["n_finished"] == len(workload)
        assert sum(report["outcomes"].values()) == len(workload)
        assert report["outcomes"].get("degraded", 0) == first.n_degraded
        breakdown = report["stage_breakdown"]
        for stage in (
            "queue_wait_ms", "encode_ms", "search_ms",
            "escalation_rtt_ms", "total_ms",
        ):
            pct = breakdown[stage]
            assert pct["p50"] <= pct["p95"] <= pct["p99"]
        assert sum(b.get("n", 0) for b in report["bands"]) == len(workload)
        assert report["root_causes"]
        for entry in report["root_causes"].values():
            example = entry["example"]
            assert traces[example][-1].attrs["outcome"] == "degraded"
        slo = report["slo"]
        assert 0.0 <= slo["attainment"] <= 1.0
        assert slo["n_within"] + sum(
            slo["violations_by_outcome"].values()
        ) == slo["n_total"]

    def test_render_report_names_every_section(self, chaos_traced):
        first, _, _, _ = chaos_traced
        text = render_report(first.traces.by_request(), slo_ms=50.0)
        assert "serve-report:" in text
        assert "per-stage latency breakdown" in text
        assert "critical-path attribution" in text
        assert "degradation root causes:" in text
        assert "SLO attainment" in text
        assert "timeline" in text

    def test_render_report_explicit_request(self, chaos_traced):
        first, _, _, _ = chaos_traced
        request_id, events = _degraded_target(first)
        traces = first.traces.by_request()
        text = render_report(traces, request_id=request_id)
        assert f"request #{request_id} timeline" in text
        missing = render_report(traces, request_id=10**6)
        assert f"request #{10**6}: not found" in missing

    def test_render_timeline_one_line_per_event(self, chaos_traced):
        first, _, _, _ = chaos_traced
        _, events = _degraded_target(first)
        lines = render_timeline(events).splitlines()
        assert len(lines) == len(events) + 1  # header row

    def test_unfinished_request_summarizes_to_none(self):
        ctx = TraceContext(0)
        ctx.emit("admitted", 0.0, node=1)
        assert summarize_request(ctx.events) is None

    def test_serve_report_from_exported_file(self, chaos_traced, tmp_path):
        first, _, _, _ = chaos_traced
        path = tmp_path / "requests.trace.jsonl"
        written = first.traces.export_jsonl(path)
        assert written == len(first.traces)
        text = serve_report(path, slo_ms=50.0)
        assert "serve-report:" in text and "SLO attainment" in text


class TestServeReportCLI:
    def test_renders_report_with_slo(self, chaos_traced, tmp_path, capsys):
        first, _, _, _ = chaos_traced
        path = tmp_path / "t.jsonl"
        first.traces.export_jsonl(path)
        assert main(["serve-report", str(path), "--slo-ms", "50"]) == 0
        out = capsys.readouterr().out
        assert "serve-report:" in out
        assert "SLO attainment (<= 50 ms)" in out
        assert "degradation root causes:" in out

    def test_request_flag_selects_timeline(self, chaos_traced, tmp_path, capsys):
        first, _, _, _ = chaos_traced
        request_id, _ = _degraded_target(first)
        path = tmp_path / "t.jsonl"
        first.traces.export_jsonl(path)
        code = main(["serve-report", str(path), "--request", str(request_id)])
        assert code == 0
        assert f"request #{request_id} timeline" in capsys.readouterr().out

    def test_missing_trace_file_exits_2(self, tmp_path, capsys):
        code = main(["serve-report", str(tmp_path / "absent.jsonl")])
        assert code == 2
        assert "not found" in capsys.readouterr().err
