"""Unit tests for ternary holographic projection and concatenation."""

import numpy as np
import pytest

from repro.core.hypervector import cosine, random_bipolar
from repro.core.projection import TernaryProjection, concatenate_hypervectors


class TestConcatenate:
    def test_1d_parts(self):
        a = np.ones(4)
        b = -np.ones(6)
        out = concatenate_hypervectors([a, b])
        assert out.shape == (10,)
        assert np.all(out[:4] == 1) and np.all(out[4:] == -1)

    def test_2d_parts(self):
        a = np.ones((3, 4))
        b = np.zeros((3, 2))
        out = concatenate_hypervectors([a, b])
        assert out.shape == (3, 6)

    def test_unequal_rows_raises(self):
        with pytest.raises(ValueError):
            concatenate_hypervectors([np.ones((3, 4)), np.ones((2, 4))])

    def test_mixed_ndim_raises(self):
        with pytest.raises(ValueError):
            concatenate_hypervectors([np.ones(4), np.ones((2, 4))])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            concatenate_hypervectors([])


class TestTernaryProjection:
    def test_matrix_values(self):
        proj = TernaryProjection(100, 80, seed=1)
        assert set(np.unique(proj.matrix)) <= {-1, 0, 1}
        assert proj.matrix.shape == (80, 100)

    def test_zero_fraction_respected(self):
        proj = TernaryProjection(1000, 500, zero_fraction=0.5, seed=2)
        zero_rate = np.mean(proj.matrix == 0)
        assert abs(zero_rate - 0.5) < 0.05

    def test_binarized_output(self):
        proj = TernaryProjection(64, 64, seed=3)
        out = proj.project(random_bipolar(64, seed=4).astype(float))
        assert out.shape == (64,)
        assert set(np.unique(out)) <= {-1, 1}

    def test_batch_projection(self):
        proj = TernaryProjection(32, 48, seed=5)
        out = proj.project(np.ones((7, 32)))
        assert out.shape == (7, 48)

    def test_deterministic(self):
        a = TernaryProjection(64, 64, seed=6).matrix
        b = TernaryProjection(64, 64, seed=6).matrix
        assert np.array_equal(a, b)

    def test_variance_preserving(self):
        """Non-binarized projection keeps per-element variance ~input's."""
        proj = TernaryProjection(2000, 2000, seed=7, binarize=False)
        inputs = random_bipolar(2000, count=50, seed=8).astype(float)
        out = proj.project(inputs)
        assert abs(out.std() - 1.0) < 0.15

    def test_similarity_preserved(self):
        """Similar inputs stay similar after projection (JL-style)."""
        proj = TernaryProjection(4000, 4000, seed=9, binarize=False)
        base = random_bipolar(4000, seed=10).astype(float)
        noisy = base.copy()
        flip = np.random.default_rng(11).choice(4000, 200, replace=False)
        noisy[flip] *= -1
        assert cosine(proj.project(base), proj.project(noisy)) > 0.8

    def test_dissimilarity_preserved(self):
        proj = TernaryProjection(4000, 4000, seed=12, binarize=False)
        a = random_bipolar(4000, seed=13).astype(float)
        b = random_bipolar(4000, seed=14).astype(float)
        assert abs(cosine(proj.project(a), proj.project(b))) < 0.1

    def test_holographic_spread(self):
        """Every output element mixes many input elements.

        Zeroing one input block must perturb (almost) all outputs a
        little instead of wiping a contiguous region — the property the
        Fig. 12 robustness relies on.
        """
        proj = TernaryProjection(1000, 1000, seed=15, binarize=False)
        x = random_bipolar(1000, seed=16).astype(float)
        damaged = x.copy()
        damaged[:500] = 0.0
        full = proj.project(x)
        partial = proj.project(damaged)
        # The surviving half keeps substantial global similarity.
        assert cosine(full, partial) > 0.5
        changed = np.mean(np.abs(full - partial) > 1e-12)
        assert changed > 0.95

    def test_rectangular_projection(self):
        proj = TernaryProjection(100, 30, seed=17)
        assert proj.project(np.ones(100)).shape == (30,)

    def test_multiplies_counts_nonzeros(self):
        proj = TernaryProjection(100, 50, zero_fraction=0.4, seed=18)
        assert proj.multiplies_per_vector() == np.count_nonzero(proj.matrix)

    def test_wrong_input_dimension(self):
        proj = TernaryProjection(10, 10, seed=19)
        with pytest.raises(ValueError):
            proj.project(np.ones(11))

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TernaryProjection(0, 10)
        with pytest.raises(ValueError):
            TernaryProjection(10, 0)
        with pytest.raises(ValueError):
            TernaryProjection(10, 10, zero_fraction=1.0)
        with pytest.raises(ValueError):
            TernaryProjection(10, 10, zero_fraction=-0.1)
