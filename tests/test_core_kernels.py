"""Unit + property tests for the bit-packed popcount kernel."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.kernels as kernels
from repro.core.hypervector import random_bipolar
from repro.core.kernels import (
    WORD_BITS,
    PackedBits,
    pack_bits,
    packed_dot,
    packed_hamming,
    packed_similarities,
    popcount_u64,
    unpack_bits,
    words_per_row,
)


class TestWordsPerRow:
    @pytest.mark.parametrize(
        "dim,expected",
        [(1, 1), (63, 1), (64, 1), (65, 2), (128, 2), (10000, 157)],
    )
    def test_values(self, dim, expected):
        assert words_per_row(dim) == expected

    @pytest.mark.parametrize("dim", [0, -1])
    def test_invalid(self, dim):
        with pytest.raises(ValueError):
            words_per_row(dim)


class TestPackUnpack:
    @pytest.mark.parametrize("dim", [1, 7, 8, 63, 64, 65, 100, 1000])
    def test_roundtrip_2d(self, dim):
        batch = random_bipolar(dim, count=5, seed=dim)
        packed = pack_bits(batch)
        assert packed.n_rows == 5
        assert packed.n_words == words_per_row(dim)
        assert np.array_equal(unpack_bits(packed), batch)

    def test_roundtrip_1d(self):
        hv = random_bipolar(130, seed=3)
        packed = pack_bits(hv)
        assert packed.n_rows == 1
        assert np.array_equal(unpack_bits(packed)[0], hv)

    def test_sign_convention_zero_is_minus_one(self):
        packed = pack_bits(np.array([[1.0, 0.0, -1.0, 2.5]]))
        assert np.array_equal(unpack_bits(packed)[0], [1, -1, -1, 1])

    def test_pad_bits_are_zero(self):
        # dim=1 with the single bit set: the other 63 bits must be 0.
        packed = pack_bits(np.array([[1.0]]))
        assert popcount_u64(packed.words).sum() == 1

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.ones((2, 3, 4)))

    def test_zero_dim_rejected(self):
        with pytest.raises(ValueError):
            pack_bits(np.empty((2, 0)))

    def test_nbytes_64x_smaller_than_float64(self):
        batch = random_bipolar(4096, count=8, seed=9).astype(np.float64)
        assert pack_bits(batch).nbytes() * 64 == batch.nbytes


class TestPackedBitsValidation:
    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            PackedBits(words=np.zeros(4, dtype=np.uint64), dimension=64)

    def test_wrong_dtype(self):
        with pytest.raises(ValueError):
            PackedBits(words=np.zeros((1, 1), dtype=np.int64), dimension=64)

    def test_wrong_word_count(self):
        with pytest.raises(ValueError):
            PackedBits(words=np.zeros((1, 2), dtype=np.uint64), dimension=64)


class TestPopcount:
    def test_known_values(self):
        words = np.array([0, 1, 3, 2**64 - 1], dtype=np.uint64)
        assert popcount_u64(words).tolist() == [0, 1, 2, 64]

    def test_matches_python_bin(self):
        rng = np.random.default_rng(4)
        words = rng.integers(0, 2**64, size=(3, 5), dtype=np.uint64)
        expected = np.vectorize(lambda w: bin(int(w)).count("1"))(words)
        assert np.array_equal(popcount_u64(words), expected)

    def test_lut_fallback_matches(self, monkeypatch):
        rng = np.random.default_rng(5)
        words = rng.integers(0, 2**64, size=(2, 7), dtype=np.uint64)
        fast = popcount_u64(words)
        monkeypatch.setattr(kernels, "_HAS_BITWISE_COUNT", False)
        assert np.array_equal(popcount_u64(words), fast)


def _brute_hamming(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.array([[int(np.sum(x != y)) for y in b] for x in a])


class TestPackedKernels:
    @pytest.mark.parametrize("dim", [5, 64, 65, 200])
    @pytest.mark.parametrize("nq,nr", [(3, 7), (7, 3)])  # both loop branches
    def test_hamming_matches_brute_force(self, dim, nq, nr):
        queries = random_bipolar(dim, count=nq, seed=dim + nq)
        refs = random_bipolar(dim, count=nr, seed=dim + nr + 100)
        ham = packed_hamming(pack_bits(queries), pack_bits(refs))
        assert ham.shape == (nq, nr)
        assert np.array_equal(ham, _brute_hamming(queries, refs))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            packed_hamming(
                pack_bits(np.ones((1, 64))), pack_bits(np.ones((1, 65)))
            )

    def test_dot_matches_dense_exactly(self):
        queries = random_bipolar(333, count=6, seed=1).astype(np.int64)
        refs = random_bipolar(333, count=4, seed=2).astype(np.int64)
        dots = packed_dot(pack_bits(queries), pack_bits(refs))
        assert np.array_equal(dots, queries @ refs.T)

    def test_similarities_equal_cosine(self):
        # For bipolar rows every norm is sqrt(D), so dot/D == cosine.
        queries = random_bipolar(512, count=6, seed=3).astype(np.float64)
        refs = random_bipolar(512, count=4, seed=4).astype(np.float64)
        sims = packed_similarities(pack_bits(queries), pack_bits(refs))
        qn = queries / np.linalg.norm(queries, axis=1, keepdims=True)
        rn = refs / np.linalg.norm(refs, axis=1, keepdims=True)
        assert np.allclose(sims, qn @ rn.T, atol=1e-12)

    @settings(deadline=None, max_examples=40)
    @given(
        dim=st.integers(min_value=1, max_value=150),
        nq=st.integers(min_value=1, max_value=5),
        nr=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_dot_property(self, dim, nq, nr, seed):
        queries = random_bipolar(dim, count=nq, seed=seed).astype(np.int64)
        refs = random_bipolar(dim, count=nr, seed=seed + 1).astype(np.int64)
        dots = packed_dot(pack_bits(queries), pack_bits(refs))
        assert np.array_equal(dots, queries @ refs.T)
        # dot = D - 2*hamming, so D - dot is always even.
        assert ((dim - dots) % 2 == 0).all()

    def test_padding_never_leaks(self):
        # All-(-1) rows at an off-word dimension: hamming must be 0,
        # not pick up pad-bit mismatches.
        a = pack_bits(-np.ones((2, 65)))
        assert np.array_equal(packed_hamming(a, a), np.zeros((2, 2)))
