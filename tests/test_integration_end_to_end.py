"""End-to-end integration tests spanning every subsystem.

Each test exercises a realistic pipeline: data generation, federated
training, network replay, inference with escalation, online updates,
and failure injection — the paths a downstream user would actually run.
"""

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import load_dataset, partition_features
from repro.hierarchy import (
    EdgeHDFederation,
    HierarchicalInference,
    OnlineLearner,
    OnlineSession,
    build_star,
    build_tree,
)
from repro.network import MEDIA, FailureModel, NetworkSimulator
from repro.network.message import MessageKind


@pytest.fixture(scope="module")
def pipeline():
    """A fully trained PDP federation with its training report."""
    data = load_dataset("PDP", scale=0.08, max_train=900, max_test=300, seed=3)
    partition = partition_features(data.n_features, 5)
    config = EdgeHDConfig(
        dimension=1500, batch_size=10, retrain_epochs=8, seed=29
    )
    federation = EdgeHDFederation(
        build_tree(5), partition, data.n_classes, config
    )
    report = federation.fit_offline(data.train_x, data.train_y)
    return data, federation, report


class TestTrainReplayInfer:
    def test_training_messages_replay_on_every_medium(self, pipeline):
        data, federation, report = pipeline
        previous = 0.0
        for name in ("wired-1gbps", "wifi-802.11ac", "bluetooth-4.0"):
            sim = NetworkSimulator(federation.hierarchy, MEDIA[name])
            result = sim.simulate_upward_pass(report.messages)
            assert result.delivered == len(report.messages)
            assert result.makespan_s > previous  # slower media take longer
            previous = result.makespan_s

    def test_escalation_traffic_replays(self, pipeline):
        data, federation, report = pipeline
        inference = HierarchicalInference(federation, confidence_threshold=0.9)
        _, outcome = inference.evaluate(data.test_x, data.test_y)
        sim = NetworkSimulator(federation.hierarchy, MEDIA["wifi-802.11n"])
        result = sim.simulate_independent(outcome.messages)
        assert result.delivered == len(outcome.messages)
        assert result.total_bytes == outcome.total_bytes

    def test_inference_beats_each_partial_view(self, pipeline):
        """Escalated inference should beat the average single end node."""
        data, federation, report = pipeline
        by_level = federation.accuracy_by_level(data.test_x, data.test_y)
        inference = HierarchicalInference(federation, confidence_threshold=0.95)
        accuracy, _ = inference.evaluate(data.test_x, data.test_y)
        assert accuracy > by_level[1] - 0.02

    def test_full_loop_with_lossy_network(self, pipeline):
        data, federation, report = pipeline
        sim = NetworkSimulator(
            federation.hierarchy, MEDIA["wifi-802.11n"],
            failure_model=FailureModel(0.2, seed=6), max_retries=8,
        )
        result = sim.simulate_upward_pass(report.messages)
        assert result.delivered == len(report.messages)  # retries win
        clean = NetworkSimulator(
            federation.hierarchy, MEDIA["wifi-802.11n"]
        ).simulate_upward_pass(report.messages)
        assert result.energy_j > clean.energy_j


class TestOnlineIntegration:
    def test_paper_mode_full_loop(self, pipeline):
        """Literal Sec. IV-D: deciding-node feedback, residuals
        aggregated upward; messages appear and models change."""
        import copy

        data, federation, _ = pipeline
        fed = copy.deepcopy(federation)
        session = OnlineSession(
            fed,
            learner=OnlineLearner(fed, feedback_includes_label=True),
            feedback_mode="deciding",
        )
        half = data.n_train // 2
        root_before = fed.classifiers[fed.root_id].class_hypervectors.copy()
        metrics = session.run(
            data.train_x[:half], data.train_y[:half],
            data.test_x, data.test_y, n_steps=2,
        )
        assert len(metrics) == 3
        residual_msgs = [
            m for snap in metrics for m in snap.messages
            if m.kind == MessageKind.RESIDUALS
        ]
        if metrics[-1].feedback_events > 0 or metrics[1].feedback_events > 0:
            assert residual_msgs
            assert not np.array_equal(
                root_before, fed.classifiers[fed.root_id].class_hypervectors
            )

    def test_path_mode_full_loop(self, pipeline):
        import copy

        data, federation, _ = pipeline
        fed = copy.deepcopy(federation)
        session = OnlineSession(
            fed,
            learner=OnlineLearner(
                fed, learning_rate=0.2, feedback_includes_label=True,
                aggregate_children=False, normalize=True,
            ),
            feedback_mode="path",
        )
        half = data.n_train // 2
        metrics = session.run(
            data.train_x[:half], data.train_y[:half],
            data.test_x, data.test_y, n_steps=2,
        )
        final = metrics[-1].central_accuracy
        assert 0.0 <= final <= 1.0


class TestStarVsTree:
    def test_same_accuracy_different_comm(self):
        """Topology changes communication, not learnability."""
        data = load_dataset("APRI", scale=0.05, max_train=700, max_test=250, seed=4)
        partition = partition_features(data.n_features, 3)
        config = EdgeHDConfig(
            dimension=1024, batch_size=10, retrain_epochs=6, seed=31
        )
        accs = {}
        messages = {}
        for name, topo in (("star", build_star(3)), ("tree", build_tree(3))):
            fed = EdgeHDFederation(topo, partition, data.n_classes, config)
            report = fed.fit_offline(data.train_x, data.train_y)
            accs[name] = fed.accuracy_at(fed.root_id, data.test_x, data.test_y)
            messages[name] = report.messages
        assert abs(accs["star"] - accs["tree"]) < 0.15
        # TREE relays through gateways -> more messages.
        assert len(messages["tree"]) > len(messages["star"])


class TestDeterminism:
    def test_whole_pipeline_reproducible(self):
        results = []
        for _ in range(2):
            data = load_dataset("PDP", scale=0.04, max_train=500, max_test=200, seed=11)
            partition = partition_features(data.n_features, 5)
            config = EdgeHDConfig(
                dimension=768, batch_size=10, retrain_epochs=5, seed=23
            )
            fed = EdgeHDFederation(build_tree(5), partition, data.n_classes, config)
            fed.fit_offline(data.train_x, data.train_y)
            inference = HierarchicalInference(fed)
            acc, outcome = inference.evaluate(data.test_x, data.test_y)
            results.append((acc, outcome.total_bytes, tuple(outcome.labels)))
        assert results[0] == results[1]
