"""Direct unit tests for repro.utils.tables, including error paths."""

import pytest

from repro.utils.tables import _fmt, format_series, format_table


class TestFmt:
    def test_rounds_floats(self):
        assert _fmt(0.123456, 3) == "0.123"
        assert _fmt(0.5, 1) == "0.5"

    def test_non_floats_pass_through(self):
        assert _fmt(7, 3) == "7"
        assert _fmt("name", 3) == "name"
        assert _fmt(None, 3) == "None"


class TestFormatTable:
    def test_alignment_and_borders(self):
        out = format_table(["name", "acc"], [["mnist", 0.91234], ["isolet", 0.8]])
        lines = out.splitlines()
        assert len(lines) == 6  # sep, header, sep, 2 rows, sep
        assert all(len(line) == len(lines[0]) for line in lines)
        assert "| mnist" in out
        assert "0.912" in out
        assert "0.800" in out

    def test_title_prepended(self):
        out = format_table(["a"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="row 1 has 1 cells, expected 2"):
            format_table(["a", "b"], [[1, 2], [3]])

    def test_empty_rows_is_valid(self):
        out = format_table(["a", "b"], [])
        assert "| a | b |" in out

    def test_ndigits_respected(self):
        out = format_table(["x"], [[0.123456]], ndigits=5)
        assert "0.12346" in out

    def test_wide_cell_widens_column(self):
        out = format_table(["x"], [["a-very-long-cell"]])
        assert "| a-very-long-cell |" in out


class TestFormatSeries:
    def test_renders_pairs(self):
        out = format_series("acc_vs_dim", [1000, 2000], [0.81, 0.88])
        assert out == "acc_vs_dim: 1000=0.810, 2000=0.880"

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="equal length"):
            format_series("s", [1, 2], [1.0])

    def test_empty_series(self):
        assert format_series("s", [], []) == "s: "
