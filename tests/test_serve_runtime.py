"""End-to-end tests of the asyncio serving runtime.

The load-bearing property: micro-batched serving gives **identical**
answers to the offline batch walk (``HierarchicalInference.run``) on
the same queries with the same seed — same labels, same deciding nodes
and levels, same escalation decisions, same message accounting.
Confidence is compared with ``allclose`` for the dense backend (BLAS
accumulation order varies with batch shape, last-ulp only); the packed
backend's integer similarities make even confidences bitwise equal.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.obs as obs
from repro.hierarchy import HierarchicalInference
from repro.network.medium import get_medium
from repro.serve import ServeConfig, ServingRuntime, make_workload


def _msg_key(m):
    return (m.source, m.destination, m.kind, m.payload_bytes)


@pytest.fixture(scope="module")
def serve_setup(trained_federation):
    federation, _, data = trained_federation
    inference = HierarchicalInference(federation, confidence_threshold=0.7)
    workload = make_workload(
        data.test_x, inference, seed=3, labels=data.test_y
    )
    offline = inference.run(data.test_x, seed=3)
    return inference, workload, offline, data


class TestEquivalence:
    def _assert_equivalent(self, result, offline, exact_confidence=False):
        out = result.to_outcome()
        assert np.array_equal(out.labels, offline.labels)
        assert np.array_equal(out.deciding_node, offline.deciding_node)
        assert np.array_equal(out.deciding_level, offline.deciding_level)
        assert np.array_equal(out.start_leaf, offline.start_leaf)
        if exact_confidence:
            assert np.array_equal(out.confidence, offline.confidence)
        else:
            assert np.allclose(out.confidence, offline.confidence)
        assert sorted(map(_msg_key, out.messages)) == sorted(
            map(_msg_key, offline.messages)
        )
        assert out.total_bytes == offline.total_bytes

    def test_open_loop_matches_offline(self, serve_setup):
        inference, workload, offline, _ = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
        )
        result = runtime.serve_open_loop(workload, rate_rps=3000.0, seed=1)
        assert result.n_shed == 0
        assert result.n_answered == len(workload)
        self._assert_equivalent(result, offline)

    def test_batch_window_does_not_change_answers(self, serve_setup):
        """Different micro-batch composition, same decisions — encoding
        and search are deterministic per row."""
        inference, workload, offline, _ = serve_setup
        for max_batch, wait_ms in ((1, 0.0), (64, 4.0)):
            runtime = ServingRuntime(
                inference,
                get_medium("wired-1gbps"),
                ServeConfig(
                    max_batch=max_batch,
                    max_wait_ms=wait_ms,
                    queue_depth=1024,
                ),
            )
            result = runtime.serve_open_loop(
                workload, rate_rps=5000.0, seed=1
            )
            assert result.n_shed == 0
            self._assert_equivalent(result, offline)

    def test_packed_backend_bitwise_equal(self, trained_federation):
        federation, _, data = trained_federation
        inference = HierarchicalInference(
            federation, confidence_threshold=0.7, backend="packed"
        )
        workload = make_workload(data.test_x, inference, seed=3)
        offline = inference.run(data.test_x, seed=3)
        runtime = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
        )
        result = runtime.serve_open_loop(workload, rate_rps=3000.0, seed=2)
        assert result.n_shed == 0
        self._assert_equivalent(result, offline, exact_confidence=True)

    def test_min_and_max_level_respected(self, trained_federation):
        federation, _, data = trained_federation
        depth = federation.hierarchy.depth
        inference = HierarchicalInference(
            federation, confidence_threshold=0.99, min_level=2
        )
        x = data.test_x[:40]
        offline = inference.run(x, max_level=depth, seed=5)
        workload = make_workload(x, inference, seed=5)
        runtime = ServingRuntime(
            inference,
            get_medium("wifi-802.11ac"),
            ServeConfig(
                max_batch=8, max_wait_ms=1.0, queue_depth=256,
                max_level=depth,
            ),
        )
        result = runtime.serve_open_loop(workload, rate_rps=2000.0, seed=5)
        assert result.n_shed == 0
        self._assert_equivalent(result, offline)
        out = result.to_outcome()
        assert out.deciding_level.min() >= 2

    def test_wire_bytes_at_least_offline(self, serve_setup):
        """Per-flush bundle fragmentation can only add bytes on the
        live wire relative to the aggregated offline accounting."""
        inference, workload, offline, _ = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=4, max_wait_ms=0.2, queue_depth=512),
        )
        result = runtime.serve_open_loop(workload, rate_rps=3000.0, seed=1)
        assert result.wire_bytes >= offline.total_bytes
        assert result.energy_j > 0

    def test_closed_loop_matches_offline(self, serve_setup):
        inference, workload, offline, _ = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=8, max_wait_ms=1.0, queue_depth=256),
        )
        result = runtime.serve_closed_loop(workload, n_clients=8)
        assert result.n_answered == len(workload)
        self._assert_equivalent(result, offline)

    def test_accuracy_matches_offline(self, serve_setup):
        inference, workload, offline, data = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(queue_depth=512),
        )
        result = runtime.serve_open_loop(workload, rate_rps=3000.0, seed=1)
        served_labels = np.asarray([r.label for r in result.responses])
        assert workload.accuracy(served_labels) == pytest.approx(
            float(np.mean(offline.labels == data.test_y))
        )


class TestOverloadAndBackpressure:
    def test_shed_policy_bounds_memory_and_terminates(self, serve_setup):
        """Overload with shedding: the run finishes, sheds are counted,
        and no inbox ever exceeds its bound."""
        inference, workload, _, _ = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("bluetooth-4.0"),
            ServeConfig(
                max_batch=4,
                max_wait_ms=0.5,
                queue_depth=4,
                policy="shed",
                service_time_base_s=0.004,
            ),
        )
        result = runtime.serve_open_loop(workload, rate_rps=5000.0, seed=1)
        assert result.n_total == len(workload)
        assert result.n_shed > 0
        assert result.n_shed == result.n_shed_admission + result.n_shed_escalation
        assert max(result.queue_high_water.values()) <= 4
        # Every request got a terminal response: answered or rejected.
        assert result.n_answered + sum(
            1 for r in result.responses if r.rejected
        ) == len(workload)
        with pytest.raises(ValueError, match="shed"):
            result.to_outcome()

    def test_block_policy_loses_nothing_under_overload(self, serve_setup):
        inference, workload, _, _ = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("wifi-802.11ac"),
            ServeConfig(
                max_batch=4,
                max_wait_ms=0.5,
                queue_depth=4,
                policy="block",
                service_time_base_s=0.002,
            ),
        )
        result = runtime.serve_open_loop(workload, rate_rps=5000.0, seed=1)
        assert result.n_shed == 0
        assert result.n_answered == len(workload)
        assert max(result.queue_high_water.values()) <= 4

    def test_shed_responses_flagged(self, serve_setup):
        inference, workload, _, _ = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("bluetooth-4.0"),
            ServeConfig(
                max_batch=2,
                max_wait_ms=0.2,
                queue_depth=1,
                policy="shed",
                service_time_base_s=0.01,
            ),
        )
        result = runtime.serve_open_loop(workload, rate_rps=10000.0, seed=1)
        shed_responses = [r for r in result.responses if r.shed]
        assert len(shed_responses) == result.n_shed
        for r in shed_responses:
            # Either rejected outright or degraded to a real decision.
            assert r.rejected or r.deciding_node >= 0


class TestTimingsAndObs:
    def test_stage_timings_populated(self, serve_setup):
        inference, workload, _, _ = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("wifi-802.11ac"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
        )
        result = runtime.serve_open_loop(workload, rate_rps=2000.0, seed=4)
        escalated = [
            r for r in result.answered if r.timings.escalation_rtt_ms > 0
        ]
        assert escalated, "threshold 0.7 must escalate some queries"
        for r in result.answered:
            assert r.timings.total_ms > 0
            assert r.timings.queue_wait_ms >= 0
            assert r.timings.encode_ms > 0
            assert r.timings.search_ms > 0
        pct = result.stage_breakdown()
        assert pct["total_ms"]["p99"] >= pct["total_ms"]["p50"] > 0
        assert result.throughput_rps > 0
        assert "p99" in result.summary()

    def test_obs_counters_recorded(self, serve_setup):
        inference, workload, _, _ = serve_setup
        runtime = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
        )
        obs.reset()
        obs.enable()
        try:
            runtime.serve_open_loop(workload, rate_rps=3000.0, seed=1)
            snap = obs.snapshot()
        finally:
            obs.disable()
            obs.reset()
        n = len(workload)
        assert snap["serve.requests"]["value"] == n
        assert snap["serve.responses"]["value"] == n
        assert snap["serve.batches"]["value"] > 0
        assert snap["serve.escalated"]["value"] > 0
        assert snap["serve.latency.total_ms"]["count"] == n
        assert snap["serve.batch_size"]["count"] > 0

    def test_media_by_level_override(self, serve_setup):
        """A slower leaf uplink must raise escalation RTT."""
        inference, workload, _, _ = serve_setup
        fast = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(queue_depth=512),
        )
        slow = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(queue_depth=512),
            media_by_level={1: get_medium("bluetooth-4.0")},
        )
        r_fast = fast.serve_open_loop(workload, rate_rps=2000.0, seed=4)
        r_slow = slow.serve_open_loop(workload, rate_rps=2000.0, seed=4)
        assert (
            r_slow.latencies_ms("escalation_rtt_ms").sum()
            > r_fast.latencies_ms("escalation_rtt_ms").sum()
        )
        assert r_slow.energy_j != r_fast.energy_j
