"""Unit + integration tests for federated (hierarchical) training."""

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import partition_features
from repro.hierarchy.federation import EdgeHDFederation, batch_groups
from repro.hierarchy.topology import build_star, build_tree
from repro.network.message import MessageKind


class TestBatchGroups:
    def test_covers_all_samples_once(self):
        y = np.array([0, 1, 0, 1, 0, 0, 1, 2])
        groups = batch_groups(y, batch_size=2)
        seen = np.concatenate([idx for _, idx in groups])
        assert sorted(seen.tolist()) == list(range(8))

    def test_batches_are_class_pure(self):
        y = np.array([0, 1, 0, 1, 0, 0, 1, 2])
        for cls, idx in batch_groups(y, batch_size=3):
            assert np.all(y[idx] == cls)

    def test_batch_sizes(self):
        y = np.zeros(10, dtype=int)
        groups = batch_groups(y, batch_size=4)
        assert [len(idx) for _, idx in groups] == [4, 4, 2]

    def test_b1_gives_per_sample(self):
        y = np.array([0, 1, 1])
        assert len(batch_groups(y, batch_size=1)) == 3

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            batch_groups(np.array([0, 1]), 0)

    def test_deterministic_pure_function(self):
        y = np.array([1, 0, 2, 1, 0])
        a = batch_groups(y, 2)
        b = batch_groups(y, 2)
        assert all(
            ca == cb and np.array_equal(ia, ib)
            for (ca, ia), (cb, ib) in zip(a, b)
        )


class TestConstruction:
    def test_partition_leaf_mismatch(self, apri_small, small_config):
        part = partition_features(apri_small.n_features, 4)
        with pytest.raises(ValueError):
            EdgeHDFederation(build_tree(3), part, 2, small_config)

    def test_invalid_classes(self, apri_small, small_config):
        part = partition_features(apri_small.n_features, 3)
        with pytest.raises(ValueError):
            EdgeHDFederation(build_tree(3), part, 1, small_config)

    def test_leaf_dimensions_proportional(self, trained_federation):
        fed, _, _ = trained_federation
        for leaf in fed.hierarchy.leaves():
            node = fed.hierarchy.nodes[leaf]
            n_local = len(fed.partition.columns(node.leaf_index))
            expected = round(fed.config.dimension * n_local / fed.partition.n_features)
            assert abs(node.dimension - expected) <= 8

    def test_every_node_has_artifacts(self, trained_federation):
        fed, _, _ = trained_federation
        for nid, node in fed.hierarchy.nodes.items():
            assert nid in fed.classifiers
            if node.is_leaf:
                assert nid in fed.encoders
            else:
                assert nid in fed.projections


class TestEncoding:
    def test_encode_leaf_uses_local_columns(self, trained_federation):
        fed, _, data = trained_federation
        leaf = fed.hierarchy.leaves()[0]
        enc = fed.encode_leaf(leaf, data.test_x[:4])
        assert enc.shape == (4, fed.hierarchy.nodes[leaf].dimension)

    def test_encode_leaf_on_internal_raises(self, trained_federation):
        fed, _, data = trained_federation
        with pytest.raises(ValueError):
            fed.encode_leaf(fed.root_id, data.test_x[:1])

    def test_encode_all_shapes(self, trained_federation):
        fed, _, data = trained_federation
        encodings = fed.encode_all(data.test_x[:5])
        assert set(encodings) == set(fed.hierarchy.nodes)
        for nid, enc in encodings.items():
            assert enc.shape == (5, fed.hierarchy.nodes[nid].dimension)

    def test_forward_view_is_bipolar(self, trained_federation):
        fed, _, data = trained_federation
        forwards = fed.encode_all(data.test_x[:3], view="forward")
        for enc in forwards.values():
            assert set(np.unique(enc)) <= {-1, 1}

    def test_own_view_matches_encode_at(self, trained_federation):
        fed, _, data = trained_federation
        encodings = fed.encode_all(data.test_x[:3])
        root_enc = fed.encode_at(fed.root_id, data.test_x[:3])
        assert np.allclose(encodings[fed.root_id], root_enc)

    def test_invalid_view(self, trained_federation):
        fed, _, data = trained_federation
        with pytest.raises(ValueError):
            fed.encode_all(data.test_x[:1], view="sideways")
        with pytest.raises(ValueError):
            fed.encode_at(fed.root_id, data.test_x[:1], view="sideways")

    def test_encode_at_unknown_node(self, trained_federation):
        fed, _, data = trained_federation
        with pytest.raises(KeyError):
            fed.encode_at(999, data.test_x[:1])

    def test_combine_children_count_check(self, trained_federation):
        fed, _, _ = trained_federation
        root = fed.root_id
        with pytest.raises(ValueError):
            fed.combine_children(root, [np.ones(4)])

    def test_combine_children_on_leaf_raises(self, trained_federation):
        fed, _, _ = trained_federation
        with pytest.raises(ValueError):
            fed.combine_children(fed.hierarchy.leaves()[0], [])


class TestOfflineTraining:
    def test_all_nodes_trained(self, trained_federation):
        fed, report, _ = trained_federation
        for clf in fed.classifiers.values():
            assert clf.class_hypervectors is not None

    def test_messages_only_child_to_parent(self, trained_federation):
        fed, report, _ = trained_federation
        for msg in report.messages:
            assert fed.hierarchy.nodes[msg.source].parent == msg.destination

    def test_message_kinds(self, trained_federation):
        _, report, _ = trained_federation
        kinds = {m.kind for m in report.messages}
        assert kinds == {MessageKind.CLASS_MODEL, MessageKind.BATCH_HYPERVECTORS}

    def test_every_non_root_sends_model(self, trained_federation):
        fed, report, _ = trained_federation
        senders = {
            m.source for m in report.messages if m.kind == MessageKind.CLASS_MODEL
        }
        non_root = set(fed.hierarchy.nodes) - {fed.root_id}
        assert senders == non_root

    def test_bytes_by_kind_sums_to_total(self, trained_federation):
        _, report, _ = trained_federation
        assert sum(report.bytes_by_kind().values()) == report.total_bytes

    def test_training_much_cheaper_than_raw_upload(self, trained_federation):
        from repro.baselines.centralized import centralized_upload_messages

        fed, report, data = trained_federation
        raw = centralized_upload_messages(
            fed.hierarchy, fed.partition, data.n_train
        )
        raw_bytes = sum(m.payload_bytes for m in raw)
        assert report.total_bytes < raw_bytes

    def test_accuracy_by_level_trend(self, trained_federation):
        """End nodes < central node on the heterogeneous-feature data."""
        fed, _, data = trained_federation
        by_level = fed.accuracy_by_level(data.test_x, data.test_y)
        assert set(by_level) == {1, 2, 3}
        assert by_level[3] > by_level[1]

    def test_root_beats_chance_clearly(self, trained_federation):
        fed, _, data = trained_federation
        acc = fed.accuracy_at(fed.root_id, data.test_x, data.test_y)
        assert acc > 1.0 / data.n_classes + 0.2

    def test_sample_label_mismatch(self, apri_small, small_config):
        part = partition_features(apri_small.n_features, 3)
        fed = EdgeHDFederation(build_tree(3), part, 2, small_config)
        with pytest.raises(ValueError):
            fed.fit_offline(apri_small.train_x, apri_small.train_y[:-1])

    def test_star_topology_trains(self, apri_small, small_config):
        part = partition_features(apri_small.n_features, 3)
        fed = EdgeHDFederation(build_star(3), part, apri_small.n_classes, small_config)
        fed.fit_offline(apri_small.train_x, apri_small.train_y)
        acc = fed.accuracy_at(fed.root_id, apri_small.test_x, apri_small.test_y)
        assert acc > 0.5

    def test_non_holographic_mode(self, apri_small, small_config):
        part = partition_features(apri_small.n_features, 3)
        fed = EdgeHDFederation(
            build_tree(3), part, apri_small.n_classes, small_config,
            holographic=False,
        )
        assert all(p is None for p in fed.projections.values())
        fed.fit_offline(apri_small.train_x, apri_small.train_y)
        acc = fed.accuracy_at(fed.root_id, apri_small.test_x, apri_small.test_y)
        assert acc > 0.5

    def test_deterministic_training(self, apri_small, small_config):
        part = partition_features(apri_small.n_features, 3)
        accs = []
        for _ in range(2):
            fed = EdgeHDFederation(
                build_tree(3), part, apri_small.n_classes, small_config
            )
            fed.fit_offline(apri_small.train_x, apri_small.train_y)
            accs.append(
                fed.accuracy_at(fed.root_id, apri_small.test_x, apri_small.test_y)
            )
        assert accs[0] == accs[1]
