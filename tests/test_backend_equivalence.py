"""Dense vs packed backend equivalence on binarized models.

The contract (see HDClassifier): after ``binarize_model()``, dense
cosine and the XOR+popcount kernel compute the same similarities on
bipolar queries, so predictions — and therefore every hierarchical
escalation decision built on their confidences — must coincide.
"""

import numpy as np
import pytest

import repro.obs as obs
from repro.core.classifier import HDClassifier
from repro.core.encoding import RBFEncoder
from repro.core.hypervector import random_bipolar
from repro.core.kernels import pack_bits, packed_dot
from repro.data import make_classification, partition_features
from repro.hierarchy import (
    EdgeHDFederation,
    HierarchicalInference,
    build_tree,
)


def _binarize(encoded: np.ndarray) -> np.ndarray:
    """Kernel sign convention: > 0 maps to +1, everything else to -1."""
    return np.where(np.asarray(encoded) > 0, 1.0, -1.0)


def _untied(clf: HDClassifier, queries: np.ndarray) -> np.ndarray:
    """Mask of queries whose top similarity is unique.

    Computed with the exact integer kernel. On tied rows the dense
    backend's argmax depends on ~1e-16 float rounding, so the
    equivalence guarantee is scoped to untied rows — where it is
    *exact* — plus the weaker guarantee that tied rows still pick a
    maximal class under both backends.
    """
    dots = packed_dot(pack_bits(queries), pack_bits(clf.class_hypervectors))
    return (dots == dots.max(axis=1, keepdims=True)).sum(axis=1) == 1


def _assert_equivalent_labels(clf, queries):
    dense = clf.predict_labels(queries, backend="dense")
    packed = clf.predict_labels(queries, backend="packed")
    mask = _untied(clf, queries)
    # The overwhelming majority of real queries are untied; guard the
    # test's own strength.
    assert mask.mean() > 0.9
    assert np.array_equal(dense[mask], packed[mask])
    # Tied rows: both backends still picked a maximal class.
    dots = packed_dot(pack_bits(queries), pack_bits(clf.class_hypervectors))
    top = dots.max(axis=1)
    rows = np.arange(len(queries))
    assert (dots[rows, dense] == top).all()
    assert (dots[rows, packed] == top).all()


@pytest.fixture(scope="module")
def trained_binary_classifier():
    """An HDClassifier trained on encoded data, then binarized."""
    x, y = make_classification(
        n_samples=300, n_features=12, n_classes=4, seed=21, name="equiv"
    )
    encoder = RBFEncoder(12, 768, seed=22)
    enc = _binarize(encoder.encode(x))
    clf = HDClassifier(4, 768).fit_initial(enc, y)
    clf.retrain(enc, y, epochs=5)
    clf.binarize_model()
    return clf, enc, y


class TestClassifierEquivalence:
    def test_similarities_match(self, trained_binary_classifier):
        clf, enc, _ = trained_binary_classifier
        dense = clf.similarities(enc, backend="dense")
        packed = clf.similarities(enc, backend="packed")
        assert np.allclose(dense, packed, atol=1e-12)

    def test_labels_identical(self, trained_binary_classifier):
        clf, enc, _ = trained_binary_classifier
        _assert_equivalent_labels(clf, enc)

    def test_confidences_match(self, trained_binary_classifier):
        clf, enc, _ = trained_binary_classifier
        assert np.allclose(
            clf.predict_proba(enc, backend="dense"),
            clf.predict_proba(enc, backend="packed"),
            atol=1e-9,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_labels_identical_fresh_queries(
        self, trained_binary_classifier, seed
    ):
        clf, _, _ = trained_binary_classifier
        queries = random_bipolar(768, count=200, seed=seed).astype(float)
        _assert_equivalent_labels(clf, queries)

    def test_default_backend_constructor(self, trained_binary_classifier):
        clf, enc, _ = trained_binary_classifier
        packed_clf = clf.copy()
        packed_clf.backend = "packed"
        assert np.array_equal(
            packed_clf.predict_labels(enc),
            clf.predict_labels(enc, backend="packed"),
        )

    def test_unknown_backend_rejected(self, trained_binary_classifier):
        clf, enc, _ = trained_binary_classifier
        with pytest.raises(ValueError):
            clf.predict(enc, backend="sparse")
        with pytest.raises(ValueError):
            HDClassifier(2, 64, backend="sparse")


@pytest.fixture(scope="module")
def binarized_federation():
    """A trained 3-leaf TREE federation with every node binarized."""
    from repro.config import EdgeHDConfig
    from repro.data import load_dataset

    data = load_dataset(
        "APRI", scale=0.1, max_train=700, max_test=250, seed=31
    )
    config = EdgeHDConfig(
        dimension=512, batch_size=10, retrain_epochs=5, seed=33
    )
    partition = partition_features(data.n_features, 3)
    federation = EdgeHDFederation(
        build_tree(3), partition, data.n_classes, config
    )
    federation.fit_offline(data.train_x, data.train_y)
    for clf in federation.classifiers.values():
        clf.binarize_model()
    return federation, data


class TestHierarchicalEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_escalation_decisions(self, binarized_federation, seed):
        federation, data = binarized_federation
        encodings = {
            node_id: _binarize(enc)
            for node_id, enc in federation.encode_all(data.test_x).items()
        }
        outcomes = {}
        for backend in ("dense", "packed"):
            inference = HierarchicalInference(
                federation, confidence_threshold=0.6, backend=backend
            )
            outcomes[backend] = inference.run(
                data.test_x, seed=seed, encodings=encodings
            )
        dense, packed = outcomes["dense"], outcomes["packed"]
        assert np.array_equal(dense.labels, packed.labels)
        assert np.array_equal(dense.deciding_node, packed.deciding_node)
        assert np.array_equal(dense.deciding_level, packed.deciding_level)
        assert np.allclose(dense.confidence, packed.confidence, atol=1e-9)
        # Same escalations => same wire traffic, message for message.
        assert dense.messages == packed.messages

    def test_invalid_backend_rejected(self, binarized_federation):
        federation, _ = binarized_federation
        with pytest.raises(ValueError):
            HierarchicalInference(federation, backend="dense2")


class TestPackedObservability:
    def test_packed_path_increments_counters(self, binarized_federation):
        federation, data = binarized_federation
        inference = HierarchicalInference(
            federation, confidence_threshold=0.95, backend="packed"
        )
        was_enabled = obs.enabled()
        obs.enable()
        try:
            before = obs.snapshot()
            outcome = inference.run(data.test_x[:64], seed=7)
            after = obs.snapshot()
        finally:
            if not was_enabled:
                obs.disable()

        def value(snap, name):
            return snap.get(name, {}).get("value", 0)

        delta = value(after, "core.similarity.packed_queries") - value(
            before, "core.similarity.packed_queries"
        )
        # The cohort walk classifies each query once at its entry node
        # plus once per escalation hop — never the whole batch at every
        # node.
        expected = 64 + sum(outcome.escalations.values())
        assert delta == expected
        assert delta < 64 * len(federation.classifiers)
        assert value(after, "core.similarity.queries") >= value(
            before, "core.similarity.queries"
        ) + delta
        assert (
            value(after, "hierarchy.inference.queries")
            - value(before, "hierarchy.inference.queries")
            == 64
        )
        # Threshold 0.95 forces escalations on this small model.
        escalated = sum(
            value(after, k) - value(before, k)
            for k in after
            if k.startswith("hierarchy.escalations.l")
        )
        assert escalated > 0
