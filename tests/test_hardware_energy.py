"""Unit tests for combined compute + communication cost accounting."""

import pytest

from repro.hardware.energy import CostBreakdown
from repro.network.simulator import SimulationResult


def sim(makespan=1.0, energy=2.0, total_bytes=100):
    return SimulationResult(
        makespan_s=makespan, busy_time_s=makespan, energy_j=energy,
        total_bytes=total_bytes, delivered=1, dropped=0, retransmissions=0,
    )


class TestCostBreakdown:
    def test_totals(self):
        cost = CostBreakdown(
            compute_time_s=2.0, compute_energy_j=5.0,
            comm_time_s=3.0, comm_energy_j=1.0, comm_bytes=10,
        )
        assert cost.total_time_s == 5.0
        assert cost.total_energy_j == 6.0
        assert cost.comm_fraction == pytest.approx(0.6)

    def test_comm_fraction_zero_total(self):
        assert CostBreakdown().comm_fraction == 0.0

    def test_add_compute(self):
        cost = CostBreakdown().add_compute(1.0, 2.0).add_compute(0.5, 0.5)
        assert cost.compute_time_s == 1.5
        assert cost.compute_energy_j == 2.5

    def test_add_simulation(self):
        cost = CostBreakdown().add_simulation(sim()).add_simulation(sim())
        assert cost.comm_time_s == 2.0
        assert cost.comm_energy_j == 4.0
        assert cost.comm_bytes == 200

    def test_speedup_and_efficiency(self):
        ours = CostBreakdown(compute_time_s=1.0, compute_energy_j=1.0)
        baseline = CostBreakdown(compute_time_s=4.0, compute_energy_j=8.0)
        assert ours.speedup_over(baseline) == pytest.approx(4.0)
        assert ours.energy_efficiency_over(baseline) == pytest.approx(8.0)

    def test_speedup_zero_time(self):
        with pytest.raises(ZeroDivisionError):
            CostBreakdown().speedup_over(CostBreakdown(compute_time_s=1.0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostBreakdown(compute_time_s=-1.0)
        with pytest.raises(ValueError):
            CostBreakdown().add_compute(-1.0, 0.0)
