"""Unit tests for position-hypervector compression (Eq. 3-4)."""

import numpy as np
import pytest

from repro.core.compression import (
    CompressedBatch,
    PositionCodebook,
    compressed_bundle_bytes,
)
from repro.core.hypervector import hamming_similarity, random_bipolar


@pytest.fixture(scope="module")
def queries():
    return random_bipolar(4000, count=25, seed=1).astype(np.float64)


class TestCompressDecompress:
    def test_roundtrip_beats_chance(self, queries):
        """Per-element fidelity at m=10 is ~PHI(1/3) ~ 0.63 (Eq. 4).

        Decoding is noisy by design; what matters is that every decoded
        element is biased toward the original (well above the 0.5 of an
        unrelated hypervector).
        """
        book = PositionCodebook(4000, 25, seed=2)
        batch = book.compress(queries[:10])
        decoded = book.decompress(batch)
        assert decoded.shape == (10, 4000)
        for original, recovered in zip(queries[:10], decoded):
            assert hamming_similarity(original, recovered) > 0.58

    def test_decoded_query_classifies_like_original(self, queries):
        """The associative search is robust to decode interference:
        a decoded query lands on the same class as the original."""
        from repro.core.classifier import HDClassifier

        dim = 4000
        model = random_bipolar(dim, count=3, seed=20).astype(float)
        clf = HDClassifier(3, dim).set_model(model)
        # Queries correlated with their class hypervector.
        rng = np.random.default_rng(21)
        originals = np.where(
            rng.random((9, dim)) < 0.85, model[np.arange(9) % 3], -model[np.arange(9) % 3]
        )
        book = PositionCodebook(dim, 9, seed=22)
        decoded = book.decompress(book.compress(originals), binarize=False)
        before = clf.predict(originals).labels
        after = clf.predict(decoded).labels
        assert np.mean(before == after) >= 8 / 9

    def test_more_vectors_more_noise(self, queries):
        """Eq. 4: interference grows with the number of compressed HVs."""
        book = PositionCodebook(4000, 25, seed=3)
        few = book.decompress(book.compress(queries[:3]))
        many = book.decompress(book.compress(queries[:25]))
        fidelity_few = np.mean(
            [hamming_similarity(q, d) for q, d in zip(queries[:3], few)]
        )
        fidelity_many = np.mean(
            [hamming_similarity(q, d) for q, d in zip(queries[:25], many)]
        )
        assert fidelity_few > fidelity_many

    def test_single_vector_exact(self):
        book = PositionCodebook(256, 4, seed=4)
        hv = random_bipolar(256, seed=5).astype(float)
        batch = book.compress(hv.reshape(1, -1))
        decoded = book.decompress(batch)
        assert np.array_equal(decoded[0], hv.astype(np.int8))

    def test_decode_one_matches_decompress(self, queries):
        book = PositionCodebook(4000, 25, seed=6)
        batch = book.compress(queries[:5])
        all_decoded = book.decompress(batch)
        for i in range(5):
            assert np.array_equal(book.decode_one(batch, i), all_decoded[i])

    def test_decode_one_out_of_range(self, queries):
        book = PositionCodebook(4000, 25, seed=7)
        batch = book.compress(queries[:5])
        with pytest.raises(IndexError):
            book.decode_one(batch, 5)

    def test_non_binarized_decode_signal_noise(self):
        """Signal term has unit magnitude; noise std ~ sqrt(m-1)."""
        dim, m = 20_000, 10
        book = PositionCodebook(dim, m, seed=8)
        vectors = random_bipolar(dim, count=m, seed=9).astype(float)
        batch = book.compress(vectors)
        decoded = book.decompress(batch, binarize=False)
        noise = decoded - vectors
        assert abs(noise.std() - book.expected_noise_std(m)) < 0.3


class TestWireAccounting:
    def test_compressed_batch_elements(self, queries):
        book = PositionCodebook(4000, 25, seed=10)
        batch = book.compress(queries)
        # One bundle of D integers regardless of m.
        assert batch.wire_elements() == 4000
        assert batch.count == 25
        assert batch.dimension == 4000

    def test_compress_stream_splits(self, queries):
        book = PositionCodebook(4000, 10, seed=11)
        batches = book.compress_stream(queries)  # 25 vectors, capacity 10
        assert [b.count for b in batches] == [10, 10, 5]


class TestValidation:
    def test_capacity_exceeded(self, queries):
        book = PositionCodebook(4000, 5, seed=12)
        with pytest.raises(ValueError):
            book.compress(queries[:6])

    def test_empty_batch(self):
        book = PositionCodebook(64, 4, seed=13)
        with pytest.raises(ValueError):
            book.compress(np.empty((0, 64)))

    def test_dimension_mismatch_on_decode(self):
        book = PositionCodebook(64, 4, seed=14)
        batch = CompressedBatch(bundle=np.zeros(32), count=2)
        with pytest.raises(ValueError):
            book.decompress(batch)

    def test_bad_count_on_decode(self):
        book = PositionCodebook(64, 4, seed=15)
        batch = CompressedBatch(bundle=np.zeros(64), count=9)
        with pytest.raises(ValueError):
            book.decompress(batch)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PositionCodebook(0, 4)
        with pytest.raises(ValueError):
            PositionCodebook(64, 0)

    def test_expected_noise_invalid_count(self):
        book = PositionCodebook(64, 4, seed=16)
        with pytest.raises(ValueError):
            book.expected_noise_std(0)

    def test_sender_receiver_same_seed_interoperate(self, queries):
        sender = PositionCodebook(4000, 25, seed=77)
        receiver = PositionCodebook(4000, 25, seed=77)
        batch = sender.compress(queries[:8])
        decoded = receiver.decompress(batch)
        fidelity = np.mean(
            [hamming_similarity(q, d) for q, d in zip(queries[:8], decoded)]
        )
        # m=8: expected per-element fidelity PHI(1/sqrt(7)) ~ 0.65.
        assert fidelity > 0.6


class TestByteAccounting:
    """Wire-size arithmetic of compressed bundles (Eq. 3 accounting)."""

    def test_bundle_bytes_formula(self):
        # m = 25: elements lie in [-25, 25], 51 symbols -> 6 bits each.
        assert compressed_bundle_bytes(4000, 25) == (4000 * 6 + 7) // 8
        # m = 1: 3 symbols -> 2 bits each.
        assert compressed_bundle_bytes(4000, 1) == (4000 * 2 + 7) // 8
        # Rounding up to whole bytes.
        assert compressed_bundle_bytes(3, 1) == 1

    def test_saving_vs_uncompressed_queries(self):
        """One m=25 bundle beats shipping 25 bit-packed queries ~4x
        (and naive 32-bit elements by ~5x per element)."""
        from repro.core.model import hypervector_bytes

        dimension, m = 4000, 25
        bundle = compressed_bundle_bytes(dimension, m)
        uncompressed = m * hypervector_bytes(dimension, bipolar=True)
        assert uncompressed / bundle > 4.0
        naive_int32 = dimension * 4
        assert naive_int32 / bundle > 5.0

    def test_bundle_bytes_grows_with_count(self):
        sizes = [compressed_bundle_bytes(4000, m) for m in (1, 3, 25, 100)]
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            compressed_bundle_bytes(0, 25)
        with pytest.raises(ValueError):
            compressed_bundle_bytes(4000, 0)

    def test_partial_count_roundtrip(self, queries):
        """A bundle filled below capacity decodes its actual count and
        is cheaper on the wire than a full one."""
        book = PositionCodebook(4000, 25, seed=12)
        partial = book.compress(queries[:7])
        assert partial.count == 7
        decoded = book.decompress(partial)
        assert decoded.shape == (7, 4000)
        # Per-vector decode matches the batch decode at every index.
        for index in range(partial.count):
            np.testing.assert_array_equal(
                book.decode_one(partial, index), decoded[index]
            )
        fidelity = np.mean(
            [
                hamming_similarity(q, d)
                for q, d in zip(queries[:7], decoded)
            ]
        )
        assert fidelity > 0.6
        # Fewer vectors -> fewer symbols per element -> fewer bytes.
        assert compressed_bundle_bytes(4000, 7) < compressed_bundle_bytes(
            4000, 25
        )

    def test_bundle_element_range_supports_packing(self, queries):
        """Every bundle element fits the advertised symbol alphabet."""
        book = PositionCodebook(4000, 25, seed=13)
        batch = book.compress(queries)
        assert np.abs(batch.bundle).max() <= batch.count
        assert np.array_equal(batch.bundle, np.round(batch.bundle))
