"""Unit tests for network medium models."""

import pytest

from repro.network.medium import MEDIA, Medium, get_medium


class TestMediaRegistry:
    def test_five_paper_media(self):
        assert set(MEDIA) == {
            "wired-1gbps",
            "wired-500mbps",
            "wifi-802.11ac",
            "wifi-802.11n",
            "bluetooth-4.0",
        }

    def test_bandwidth_ordering(self):
        """Fig. 11's x-axis ordering: wired > ac > n > bluetooth."""
        ordered = [
            "wired-1gbps",
            "wired-500mbps",
            "wifi-802.11ac",
            "wifi-802.11n",
            "bluetooth-4.0",
        ]
        bws = [MEDIA[name].bandwidth_bps for name in ordered]
        assert bws == sorted(bws, reverse=True)

    def test_paper_effective_bandwidths(self):
        assert MEDIA["wifi-802.11ac"].bandwidth_bps == pytest.approx(46.5e6)
        assert MEDIA["wifi-802.11n"].bandwidth_bps == pytest.approx(23.5e6)
        assert MEDIA["bluetooth-4.0"].bandwidth_bps == pytest.approx(1e6)

    def test_get_medium(self):
        assert get_medium("wired-1gbps") is MEDIA["wired-1gbps"]

    def test_get_medium_unknown(self):
        with pytest.raises(KeyError):
            get_medium("5g")


class TestMedium:
    def test_transfer_time(self):
        m = Medium("test", bandwidth_bps=8e6, latency_s=0.001,
                   tx_energy_per_bit=1e-9, rx_energy_per_bit=1e-9)
        # 1 MB = 8e6 bits -> 1 second + latency.
        assert m.transfer_time(1_000_000) == pytest.approx(1.001)

    def test_zero_payload_costs_latency_only(self):
        m = MEDIA["wifi-802.11n"]
        assert m.transfer_time(0) == m.latency_s
        assert m.transfer_energy(0) == 0.0

    def test_transfer_energy(self):
        m = Medium("test", bandwidth_bps=1e6, latency_s=0.0,
                   tx_energy_per_bit=2e-9, rx_energy_per_bit=1e-9)
        assert m.transfer_energy(1000) == pytest.approx(8000 * 3e-9)

    def test_slower_medium_takes_longer(self):
        fast = MEDIA["wired-1gbps"]
        slow = MEDIA["bluetooth-4.0"]
        assert slow.transfer_time(10_000) > fast.transfer_time(10_000)

    def test_negative_payload(self):
        m = MEDIA["wired-1gbps"]
        with pytest.raises(ValueError):
            m.transfer_time(-1)
        with pytest.raises(ValueError):
            m.transfer_energy(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Medium("bad", 0.0, 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Medium("bad", 1e6, -1.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            Medium("bad", 1e6, 0.0, -1e-9, 0.0)
