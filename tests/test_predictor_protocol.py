"""One unified predict API: every model satisfies the Predictor protocol."""

import warnings

import numpy as np
import pytest

import repro.core.classifier as classifier_mod
from repro.baselines import (
    AdaBoostClassifier,
    KernelSVM,
    LinearHDClassifier,
    MLPClassifier,
)
from repro.baselines.centralized import CentralizedHD
from repro.baselines.federated_dnn import VerticalFedMLP
from repro.core.classifier import HDClassifier, PredictionResult
from repro.core.model import EdgeHDModel
from repro.core.predictor import (
    Predictor,
    result_from_proba,
    result_from_scores,
)
from repro.data import make_classification, partition_features
from repro.hierarchy import build_tree


@pytest.fixture(scope="module")
def data():
    x, y = make_classification(
        n_samples=240, n_features=10, n_classes=3, seed=41, name="proto"
    )
    return x[:200], y[:200], x[200:], y[200:]


def _fitted_models(data):
    """One fitted instance of every user-facing model type."""
    train_x, train_y, _, _ = data
    hd = EdgeHDModel(10, 3, dimension=256, seed=1)
    hd.fit(train_x, train_y, retrain_epochs=2)
    linear = LinearHDClassifier(10, 3, dimension=256, seed=2)
    linear.fit(train_x, train_y, retrain_epochs=2)
    svm = KernelSVM(10, 3, n_components=64, epochs=2, seed=3)
    svm.fit(train_x, train_y)
    ada = AdaBoostClassifier(10, 3, n_estimators=5, seed=4)
    ada.fit(train_x, train_y)
    mlp = MLPClassifier(10, 3, hidden_sizes=(16,), epochs=2, seed=5)
    mlp.fit(train_x, train_y)
    partition = partition_features(10, 2)
    fed = VerticalFedMLP(partition, 3, embedding_dim=8, hidden_dim=16,
                         epochs=2, seed=6)
    fed.fit(train_x, train_y)
    central = CentralizedHD(build_tree(2), partition, 3)
    central.fit(train_x, train_y)
    clf = HDClassifier(3, 256)
    clf.fit_initial(hd.encoder.encode(train_x), train_y)
    return {
        "EdgeHDModel": (hd, train_x),
        "LinearHDClassifier": (linear, train_x),
        "KernelSVM": (svm, train_x),
        "AdaBoostClassifier": (ada, train_x),
        "MLPClassifier": (mlp, train_x),
        "VerticalFedMLP": (fed, train_x),
        "CentralizedHD": (central, train_x),
        "HDClassifier": (clf, hd.encoder.encode(train_x)),
    }


@pytest.fixture(scope="module")
def models(data):
    return _fitted_models(data)


class TestProtocolConformance:
    def test_every_model_is_a_predictor(self, models):
        for name, (model, _) in models.items():
            assert isinstance(model, Predictor), name

    def test_predict_returns_prediction_result(self, models):
        for name, (model, x) in models.items():
            result = model.predict(x[:16])
            assert isinstance(result, PredictionResult), name
            assert result.labels.shape == (16,), name
            assert result.similarities.shape == (16, 3), name
            assert result.confidences.shape == (16, 3), name

    def test_predict_labels_matches_predict(self, models):
        for name, (model, x) in models.items():
            assert np.array_equal(
                model.predict_labels(x[:16]), model.predict(x[:16]).labels
            ), name

    def test_predict_proba_rows_sum_to_one(self, models):
        for name, (model, x) in models.items():
            proba = model.predict_proba(x[:16])
            assert proba.shape == (16, 3), name
            assert np.allclose(proba.sum(axis=1), 1.0), name
            assert (proba >= 0).all(), name

    def test_labels_are_argmax_of_confidences(self, models):
        for name, (model, x) in models.items():
            result = model.predict(x[:16])
            assert np.array_equal(
                result.labels, np.argmax(result.confidences, axis=1)
            ), name


class TestResultHelpers:
    def test_result_from_scores(self):
        scores = np.array([[0.1, 0.9, 0.0], [2.0, -1.0, 0.5]])
        result = result_from_scores(scores)
        assert np.array_equal(result.labels, [1, 0])
        assert result.similarities is scores or np.array_equal(
            result.similarities, scores
        )
        assert np.allclose(result.confidences.sum(axis=1), 1.0)

    def test_result_from_proba(self):
        proba = np.array([[0.2, 0.8], [0.7, 0.3]])
        result = result_from_proba(proba)
        assert np.array_equal(result.labels, [1, 0])
        assert np.array_equal(result.confidences, proba)

    def test_top_confidence(self):
        result = result_from_proba(np.array([[0.2, 0.8], [0.7, 0.3]]))
        assert np.allclose(result.top_confidence, [0.8, 0.7])


class TestDeprecationShims:
    """Old bare-array call sites keep working, with a one-time warning."""

    @pytest.fixture(autouse=True)
    def _fresh_warning_state(self):
        saved = set(classifier_mod._legacy_result_warned)
        classifier_mod._legacy_result_warned.clear()
        yield
        classifier_mod._legacy_result_warned.clear()
        classifier_mod._legacy_result_warned.update(saved)

    @pytest.fixture()
    def result(self):
        return result_from_proba(np.array([[0.2, 0.8], [0.7, 0.3]]))

    def test_asarray_warns_and_returns_labels(self, result):
        with pytest.warns(DeprecationWarning, match="np.asarray"):
            labels = np.asarray(result)
        assert np.array_equal(labels, [1, 0])

    def test_iteration_warns(self, result):
        with pytest.warns(DeprecationWarning, match="iteration"):
            assert list(result) == [1, 0]

    def test_indexing_warns(self, result):
        with pytest.warns(DeprecationWarning, match="indexing"):
            assert result[0] == 1

    def test_eq_against_array_warns_and_compares_labels(self, result):
        with pytest.warns(DeprecationWarning, match="comparison"):
            mask = result == np.array([1, 1])
        assert np.array_equal(mask, [True, False])
        # The classic accuracy idiom still computes correctly.
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert np.mean(result == np.array([1, 0])) == 1.0

    def test_eq_between_results_is_exact_and_silent(self, result):
        other = result_from_proba(np.array([[0.2, 0.8], [0.7, 0.3]]))
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert result == other
            assert len(result) == 2  # len() is not deprecated

    def test_warning_fires_once_per_behavior(self, result):
        with pytest.warns(DeprecationWarning):
            result[0]
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result[1]  # second use of the same behavior: silent

    def test_unhashable(self, result):
        with pytest.raises(TypeError):
            hash(result)
