"""Unit tests for the Table I dataset registry."""

import numpy as np
import pytest

from repro.data.datasets import (
    DATASETS,
    HIERARCHY_DATASETS,
    dataset_names,
    load_dataset,
)


class TestRegistry:
    def test_all_nine_present(self):
        assert len(DATASETS) == 9
        assert dataset_names() == [
            "MNIST", "ISOLET", "UCIHAR", "EXTRA", "FACE",
            "PECAN", "PAMAP2", "APRI", "PDP",
        ]

    def test_table1_shapes(self):
        """Spec fields mirror Table I of the paper."""
        expectations = {
            "MNIST": (784, 10, None, 60_000, 10_000),
            "ISOLET": (617, 26, None, 6_238, 1_559),
            "UCIHAR": (561, 12, None, 6_213, 1_554),
            "EXTRA": (225, 4, None, 146_869, 16_343),
            "FACE": (608, 2, None, 522_441, 2_494),
            "PECAN": (312, 3, 312, 22_290, 5_574),
            "PAMAP2": (75, 5, 3, 611_142, 101_582),
            "APRI": (36, 2, 3, 67_017, 1_241),
            "PDP": (60, 2, 5, 17_385, 7_334),
        }
        for name, (n, k, nodes, train, test) in expectations.items():
            spec = DATASETS[name]
            assert spec.n_features == n
            assert spec.n_classes == k
            assert spec.n_end_nodes == nodes
            assert spec.paper_train_size == train
            assert spec.paper_test_size == test

    def test_hierarchy_subset(self):
        assert set(HIERARCHY_DATASETS) == {"PECAN", "PAMAP2", "APRI", "PDP"}
        for name in HIERARCHY_DATASETS:
            assert DATASETS[name].is_hierarchical


class TestLoadDataset:
    def test_shapes_match_spec(self):
        data = load_dataset("PDP", scale=0.05)
        spec = DATASETS["PDP"]
        assert data.n_features == spec.n_features
        assert data.n_classes == spec.n_classes

    def test_scale_controls_size(self):
        small = load_dataset("PDP", scale=0.02)
        large = load_dataset("PDP", scale=0.1)
        assert small.n_train < large.n_train

    def test_max_caps(self):
        data = load_dataset("FACE", scale=1.0, max_train=500, max_test=100)
        assert data.n_train <= 500
        assert data.n_test <= 100

    def test_deterministic(self):
        a = load_dataset("APRI", scale=0.02, seed=4)
        b = load_dataset("APRI", scale=0.02, seed=4)
        assert np.array_equal(a.train_x, b.train_x)
        assert np.array_equal(a.test_y, b.test_y)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("CIFAR")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("PDP", scale=0.0)

    def test_minimum_samples_per_class(self):
        """Even tiny scales keep enough samples to train."""
        data = load_dataset("ISOLET", scale=0.001)
        counts = np.bincount(data.train_y, minlength=data.n_classes)
        assert counts.min() >= 1

    def test_learnable(self):
        """Each generated dataset is actually learnable by EdgeHD."""
        from repro.core.model import EdgeHDModel

        data = load_dataset("UCIHAR", scale=0.05, max_train=800, max_test=300)
        model = EdgeHDModel(
            data.n_features, data.n_classes, dimension=1000, seed=1
        )
        model.fit(data.train_x, data.train_y, retrain_epochs=5)
        chance = 1.0 / data.n_classes
        assert model.accuracy(data.test_x, data.test_y) > chance + 0.3
