"""Tests for the multi-process sharded serving cluster.

Three layers, in increasing weight:

* pure in-process units — :class:`ReplicaRegistry` selection/eviction/
  resurrection policy, :class:`ConsistentHashRing` determinism,
  :class:`ClusterConfig` validation, crash-only fault-plan gating;
* shared-memory plumbing — :class:`SharedModelStore` publish → attach →
  install round-trips inside one process, including the zero-copy
  assertion the issue pins (worker model arrays are *views* over the
  shared segment, never copies);
* end-to-end fleets — real worker processes serving a workload with
  answers bit-identical to the offline ``HierarchicalInference.run``
  walk, plus a killed-worker scenario where eviction + re-dispatch
  still answers every request correctly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hierarchy import HierarchicalInference
from repro.network.medium import get_medium
from repro.serve import (
    ClusterConfig,
    ClusterRuntime,
    ConsistentHashRing,
    FaultPlan,
    ReplicaRegistry,
    ServeConfig,
    SharedModelStore,
    make_workload,
)


def _msg_key(m):
    return (m.source, m.destination, m.kind, m.payload_bytes)


@pytest.fixture(scope="module")
def cluster_setup(trained_federation):
    federation, _, data = trained_federation
    inference = HierarchicalInference(federation, confidence_threshold=0.7)
    workload = make_workload(
        data.test_x, inference, seed=3, labels=data.test_y
    )
    offline = inference.run(
        data.test_x, start_leaves=workload.start_leaves
    )
    return inference, workload, offline, data


def assert_matches_offline(result, offline):
    out = result.to_outcome()
    assert np.array_equal(out.labels, offline.labels)
    assert np.array_equal(out.deciding_node, offline.deciding_node)
    assert np.array_equal(out.deciding_level, offline.deciding_level)
    assert np.array_equal(out.start_leaf, offline.start_leaf)
    assert np.allclose(out.confidence, offline.confidence)
    assert sorted(map(_msg_key, out.messages)) == sorted(
        map(_msg_key, offline.messages)
    )
    assert out.total_bytes == offline.total_bytes


# ----------------------------------------------------------------------
# replica registry
# ----------------------------------------------------------------------
class TestReplicaRegistry:
    def test_register_and_duplicate_rejected(self):
        reg = ReplicaRegistry()
        reg.register(0, 0, now=1.0)
        assert 0 in reg and len(reg) == 1
        with pytest.raises(ValueError, match="already registered"):
            reg.register(0, 1, now=2.0)

    def test_evicts_only_stale_replicas(self):
        reg = ReplicaRegistry(heartbeat_timeout_s=1.0)
        reg.register(0, 0, now=0.0)
        reg.register(1, 0, now=0.0)
        reg.beat(1, now=2.0)
        evicted = reg.evict_stale(now=2.5)
        assert [info.replica_id for info in evicted] == [0]
        assert reg.n_evicted == 1
        assert not reg.get(0).healthy and reg.get(1).healthy
        # already-evicted replicas are not evicted twice
        assert reg.evict_stale(now=10.0) == [reg.get(1)]

    def test_beat_resurrects_evicted_replica(self):
        reg = ReplicaRegistry(heartbeat_timeout_s=1.0)
        reg.register(0, 0, now=0.0)
        reg.dispatch(0, 8)
        assert reg.evict_stale(now=5.0)
        assert reg.pick(0) is None
        # the worker was slow, not dead: a late beat brings it back
        # with an empty in-flight count (its batches were re-dispatched)
        assert reg.beat(0, now=5.5) is True
        info = reg.get(0)
        assert info.healthy and info.in_flight == 0
        assert reg.n_resurrected == 1
        assert reg.pick(0) is info

    def test_pick_prefers_least_loaded_home_replica(self):
        reg = ReplicaRegistry()
        reg.register(0, 0, now=0.0)
        reg.register(1, 0, now=0.0)
        reg.register(2, 1, now=0.0)
        reg.dispatch(0, 5)
        assert reg.pick(0).replica_id == 1
        reg.dispatch(1, 5)
        # tie on in_flight breaks on lowest replica id
        assert reg.pick(0).replica_id == 0

    def test_pick_falls_back_across_shards(self):
        reg = ReplicaRegistry()
        reg.register(0, 0, now=0.0)
        reg.register(1, 1, now=0.0)
        reg.mark_unhealthy(0)
        assert reg.pick(0).replica_id == 1
        reg.mark_unhealthy(1)
        assert reg.pick(0) is None

    def test_complete_clamps_and_counts(self):
        reg = ReplicaRegistry()
        reg.register(0, 0, now=0.0)
        reg.dispatch(0, 3)
        reg.complete(0, 5)
        info = reg.get(0)
        assert info.in_flight == 0
        assert info.n_dispatched == 3 and info.n_completed == 5

    def test_summary_is_json_safe(self):
        import json

        reg = ReplicaRegistry()
        reg.register(0, 0, now=0.0)
        reg.mark_unhealthy(0)
        summary = json.loads(json.dumps(reg.summary()))
        assert summary["n_replicas"] == 1
        assert summary["n_healthy"] == 0
        assert summary["n_evicted"] == 1
        assert summary["n_resurrected"] == 0


class TestRegistryLeaseEdgeCases:
    """Interleavings at lease boundaries (ISSUE 10 satellite 4).

    The topology control plane reuses the registry's lease semantics
    for node-crash detection, so the exact boundary behavior — strict
    inequality, resurrection mid-re-dispatch, late beats after a
    planned drain — is load-bearing beyond the serving cluster.
    """

    def test_resurrection_after_evict_during_redispatch(self):
        # replica 0 goes quiet with a batch in flight; the router
        # evicts it and re-dispatches the stranded batch to replica 1.
        reg = ReplicaRegistry(heartbeat_timeout_s=1.0)
        reg.register(0, 0, now=0.0)
        reg.register(1, 0, now=0.0)
        reg.dispatch(0, 4)
        reg.beat(1, now=2.0)
        assert [i.replica_id for i in reg.evict_stale(now=2.5)] == [0]
        reg.dispatch(1, 4)  # re-dispatch of the stranded batch
        # mid-re-dispatch, the "dead" worker beats: it was slow, not
        # gone. It must come back with an EMPTY in-flight count — its
        # old batch now belongs to replica 1.
        assert reg.beat(0, now=2.6) is True
        assert reg.get(0).in_flight == 0
        assert reg.n_resurrected == 1
        # the old batch's late completion clamps at zero rather than
        # going negative and skewing selection forever after
        reg.complete(0, 4)
        assert reg.get(0).in_flight == 0
        # selection prefers the resurrected idle replica again
        assert reg.pick(0).replica_id == 0
        # and total shard load reflects only the live re-dispatch
        assert reg.shard_in_flight(0) == 4

    def test_lease_expiry_races_late_heartbeat(self):
        # eviction is strictly-greater-than: a beat landing exactly at
        # the lease boundary keeps the replica alive.
        reg = ReplicaRegistry(heartbeat_timeout_s=1.0)
        reg.register(0, 0, now=0.0)
        assert reg.lease_remaining(0, now=1.0) == 0.0
        assert reg.evict_stale(now=1.0) == []  # boundary: still held
        assert reg.get(0).healthy
        # one tick past the boundary the lease is gone
        assert [i.replica_id for i in reg.evict_stale(now=1.0 + 1e-9)] == [0]
        assert reg.lease_remaining(0, now=1.5) < 0
        # the heartbeat that lost the race arrives now: resurrection,
        # counted once, and the replica is not re-reported as evicted
        assert reg.beat(0, now=1.5) is True
        assert reg.beat(0, now=1.6) is False  # already healthy
        assert reg.n_evicted == 1 and reg.n_resurrected == 1
        assert reg.evict_stale(now=1.7) == []

    def test_beat_after_deregister_is_ignored(self):
        # planned drain: a late beat from the departed id must not
        # re-create the record (ids are never reused by the control
        # plane, so a revenant here would be a ghost replica).
        reg = ReplicaRegistry(heartbeat_timeout_s=1.0)
        reg.register(0, 0, now=0.0)
        gone = reg.deregister(0)
        assert gone is not None and gone.replica_id == 0
        assert reg.beat(0, now=0.5) is False
        assert 0 not in reg and len(reg) == 0
        assert reg.deregister(0) is None  # idempotent

    def test_eviction_and_resurrection_under_sanitizer(
        self, cluster_setup
    ):
        """The crash → evict → degrade path stays race-free with the
        REPRO_SAN ownership guard armed: a worker-kill serve completes
        with zero lost requests and no RaceError."""
        from repro.serve import sanitizer

        inference, workload, offline, _ = cluster_setup
        plan = FaultPlan(crash_windows={0: (0.0, float("inf"))})
        sanitizer.enable(True)
        try:
            with ClusterRuntime(
                inference,
                get_medium("wired-1gbps"),
                ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
                cluster=ClusterConfig(
                    workers=2,
                    heartbeat_interval_s=0.02,
                    heartbeat_timeout_s=0.3,
                ),
                fault_plan=plan,
            ) as runtime:
                result = runtime.serve_open_loop(
                    workload, rate_rps=2000.0, seed=1
                )
                assert runtime.registry.n_evicted >= 1
        finally:
            sanitizer.enable(False)
        assert result.n_answered == len(workload)
        out = result.to_outcome()
        assert np.array_equal(out.labels, offline.labels)


# ----------------------------------------------------------------------
# consistent-hash ring / config validation
# ----------------------------------------------------------------------
class TestConsistentHashRing:
    def test_lookup_is_deterministic_and_total(self):
        ring = ConsistentHashRing(range(4))
        first = [ring.lookup(leaf) for leaf in range(32)]
        again = [ring.lookup(leaf) for leaf in range(32)]
        assert first == again
        assert set(first) <= set(range(4))

    def test_all_shards_receive_keys(self):
        ring = ConsistentHashRing(range(4), points=64)
        owners = {ring.lookup(key) for key in range(256)}
        assert owners == set(range(4))

    def test_single_shard_owns_everything(self):
        ring = ConsistentHashRing([7])
        assert {ring.lookup(k) for k in range(16)} == {7}


class TestClusterConfig:
    def test_n_shards_rounds_up(self):
        assert ClusterConfig(workers=4, replicas_per_shard=1).n_shards == 4
        assert ClusterConfig(workers=4, replicas_per_shard=2).n_shards == 2
        assert ClusterConfig(workers=5, replicas_per_shard=2).n_shards == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"replicas_per_shard": 0},
            {"heartbeat_interval_s": 0.0},
            {"heartbeat_interval_s": 2.0, "heartbeat_timeout_s": 1.0},
            {"hash_points": 0},
            {"ready_timeout_s": 0.0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ClusterConfig(**kwargs)


class TestFaultPlanClusterValidation:
    def test_crash_only_plans_accepted(self):
        FaultPlan(crash_windows={0: (0.1, 1.0)}).validate_for_cluster(2)

    def test_non_crash_knobs_rejected(self):
        plan = FaultPlan(drop_probability=0.5)
        with pytest.raises(ValueError, match="crash-only"):
            plan.validate_for_cluster(2)

    def test_replica_index_out_of_range_rejected(self):
        plan = FaultPlan(crash_windows={3: (0.0, 1.0)})
        with pytest.raises(ValueError):
            plan.validate_for_cluster(2)

    def test_whole_fleet_crash_rejected(self):
        plan = FaultPlan(crash_windows={0: (0.0, 1.0), 1: (0.0, 1.0)})
        with pytest.raises(ValueError, match="at least one"):
            plan.validate_for_cluster(2)


# ----------------------------------------------------------------------
# shared-memory model store
# ----------------------------------------------------------------------
class TestSharedModelStore:
    def test_publish_attach_round_trip(self, trained_federation):
        federation, _, _ = trained_federation
        with SharedModelStore.publish(federation) as store:
            manifest = store.manifest()
            assert manifest["format_version"] == 1
            assert set(manifest["nodes"]) == {
                str(node_id) for node_id in federation.hierarchy.nodes
            }
            attached = SharedModelStore.attach(manifest)
            try:
                for node_id, clf in federation.classifiers.items():
                    model, normalized, packed = attached.node_views(node_id)
                    assert np.array_equal(model, clf.class_hypervectors)
                    assert model.flags.writeable is False
            finally:
                attached.close()

    def test_install_is_zero_copy(self, trained_federation, apri_small,
                                  small_config):
        """The issue's acceptance bar: workers attach the packed model
        shards as shared-memory views — zero per-worker copies."""
        from repro.data import partition_features
        from repro.hierarchy import EdgeHDFederation, build_tree

        federation, _, _ = trained_federation
        with SharedModelStore.publish(federation) as store:
            replica = EdgeHDFederation(
                federation.hierarchy,
                federation.partition,
                federation.n_classes,
                small_config,
            )
            attached = SharedModelStore.attach(store.manifest())
            try:
                report = attached.install(replica)
                assert report["zero_copy"] is True
                assert report["nodes"] == len(federation.hierarchy.nodes)
                for node_id, clf in replica.classifiers.items():
                    model = clf.class_hypervectors
                    # a view over the shared segment, not an owned copy
                    assert model.flags.owndata is False
                    probe, _, _ = attached.node_views(node_id)
                    assert np.shares_memory(model, probe)
                    assert np.array_equal(
                        model,
                        federation.classifiers[node_id].class_hypervectors,
                    )
            finally:
                attached.close()

    def test_attach_rejects_tampered_manifest(self, trained_federation):
        federation, _, _ = trained_federation
        with SharedModelStore.publish(federation) as store:
            manifest = store.manifest()
            bad = dict(manifest, name="psm_does_not_exist")
            with pytest.raises(FileNotFoundError):
                SharedModelStore.attach(bad)


# ----------------------------------------------------------------------
# end-to-end worker fleets
# ----------------------------------------------------------------------
class TestClusterServing:
    def test_single_worker_matches_offline(self, cluster_setup):
        inference, workload, offline, _ = cluster_setup
        with ClusterRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
            cluster=ClusterConfig(workers=1),
        ) as runtime:
            assert runtime.zero_copy
            result = runtime.serve_open_loop(workload, rate_rps=2000.0, seed=1)
        assert_matches_offline(result, offline)
        assert result.topology["workers"] == 1
        assert result.degraded_rate == 0.0

    def test_two_worker_fleet_matches_offline(self, cluster_setup):
        inference, workload, offline, _ = cluster_setup
        with ClusterRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
            cluster=ClusterConfig(workers=2),
        ) as runtime:
            assert runtime.zero_copy
            result = runtime.serve_open_loop(workload, rate_rps=2000.0, seed=1)
            topology = runtime.topology()
        assert_matches_offline(result, offline)
        assert topology["workers"] == 2
        assert topology["n_shards"] == 2
        assert topology["shared_memory_bytes"] > 0
        # every worker answered something (consistent-hash spread)
        per_replica = [
            info.n_completed for info in runtime.registry.replicas()
        ]
        assert sum(per_replica) >= result.n_answered - result.n_retries

    def test_killed_worker_is_evicted_and_work_redispatched(
        self, cluster_setup
    ):
        inference, workload, offline, _ = cluster_setup
        plan = FaultPlan(crash_windows={0: (0.0, float("inf"))})
        with ClusterRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
            cluster=ClusterConfig(
                workers=2,
                heartbeat_interval_s=0.02,
                heartbeat_timeout_s=0.3,
            ),
            fault_plan=plan,
        ) as runtime:
            result = runtime.serve_open_loop(workload, rate_rps=2000.0, seed=1)
            evicted = runtime.registry.n_evicted
        assert evicted >= 1
        assert result.n_answered == len(workload)
        out = result.to_outcome()
        assert np.array_equal(out.labels, offline.labels)
        assert np.array_equal(out.deciding_node, offline.deciding_node)

    def test_local_fallback_answers_degraded(self, cluster_setup):
        """Fleet-down path: the router's own walk answers correctly but
        flags every response degraded (exercised without processes)."""
        inference, workload, offline, _ = cluster_setup
        runtime = ClusterRuntime(
            inference, get_medium("wired-1gbps"), ServeConfig()
        )
        n = min(8, len(workload))
        indices = list(range(n))
        responses: dict = {}
        escalations: dict = {}
        runtime._answer_locally(
            workload, indices, 0.0, np.zeros(len(workload)),
            responses, escalations,
        )
        assert sorted(responses) == indices
        for idx in indices:
            assert responses[idx].degraded is True
            assert responses[idx].label == int(offline.labels[idx])


class TestLazyEncodings:
    def test_lazy_matches_eager_bitwise(self, trained_federation):
        federation, _, data = trained_federation
        rows = data.test_x[:16]
        eager = federation.encode_all(rows)
        lazy = federation.encode_lazy(rows)
        assert lazy.n_materialized == 0
        for node_id, encoded in eager.items():
            assert np.array_equal(lazy.own(node_id), encoded)
        assert lazy.n_materialized == len(eager)

    def test_only_touched_subtree_materializes(self, trained_federation):
        federation, _, data = trained_federation
        lazy = federation.encode_lazy(data.test_x[:4])
        leaf = federation.hierarchy.leaves()[0]
        lazy.own(leaf)
        assert lazy.n_materialized == 1

    def test_prefill_seeds_the_cache(self, trained_federation):
        federation, _, data = trained_federation
        rows = data.test_x[:4]
        leaf = federation.hierarchy.leaves()[0]
        seeded = federation.encode_lazy(
            rows, prefill={leaf: federation.encode_leaf(leaf, rows)}
        )
        assert seeded.n_materialized == 1
        assert np.array_equal(
            seeded.own(leaf), federation.encode_all(rows)[leaf]
        )

    def test_unknown_node_rejected(self, trained_federation):
        federation, _, data = trained_federation
        lazy = federation.encode_lazy(data.test_x[:2])
        with pytest.raises(KeyError):
            lazy.own(10_000)
        with pytest.raises(KeyError):
            federation.encode_lazy(data.test_x[:2], prefill={10_000: None})
