"""Unit tests for the analytic efficiency machinery (Fig. 10 internals)."""

import math

import pytest

from repro.data import DATASETS, partition_features
from repro.experiments.efficiency import (
    CONFIGS,
    _batches_per_node,
    edgehd_query_messages,
    edgehd_training_messages,
    system_inference_cost,
    system_training_cost,
)
from repro.hierarchy.topology import build_star, build_tree
from repro.network.message import MessageKind


@pytest.fixture(scope="module")
def pdp_tree():
    spec = DATASETS["PDP"]
    hierarchy = build_tree(spec.n_end_nodes)
    partition = partition_features(spec.n_features, spec.n_end_nodes)
    hierarchy.allocate_dimensions(4000, partition.feature_counts())
    return hierarchy, spec


class TestBatchesPerNode:
    def test_balanced_classes(self):
        assert _batches_per_node(750, 3, 75) == 3 * math.ceil(250 / 75)

    def test_minimum_one_batch_per_class(self):
        assert _batches_per_node(2, 2, 75) == 2


class TestTrainingMessages:
    def test_two_messages_per_non_root(self, pdp_tree):
        hierarchy, spec = pdp_tree
        messages = edgehd_training_messages(hierarchy, 1000, spec.n_classes, 75)
        assert len(messages) == 2 * (len(hierarchy.nodes) - 1)

    def test_kinds(self, pdp_tree):
        hierarchy, spec = pdp_tree
        messages = edgehd_training_messages(hierarchy, 1000, spec.n_classes, 75)
        kinds = {m.kind for m in messages}
        assert kinds == {MessageKind.CLASS_MODEL, MessageKind.BATCH_HYPERVECTORS}

    def test_batch_bytes_scale_with_samples(self, pdp_tree):
        hierarchy, spec = pdp_tree

        def batch_bytes(n):
            return sum(
                m.payload_bytes
                for m in edgehd_training_messages(hierarchy, n, spec.n_classes, 75)
                if m.kind == MessageKind.BATCH_HYPERVECTORS
            )

        assert batch_bytes(10_000) > batch_bytes(1_000)

    def test_model_bytes_independent_of_samples(self, pdp_tree):
        hierarchy, spec = pdp_tree

        def model_bytes(n):
            return sum(
                m.payload_bytes
                for m in edgehd_training_messages(hierarchy, n, spec.n_classes, 75)
                if m.kind == MessageKind.CLASS_MODEL
            )

        assert model_bytes(10_000) == model_bytes(1_000)

    def test_negative_samples_rejected(self, pdp_tree):
        hierarchy, spec = pdp_tree
        with pytest.raises(ValueError):
            edgehd_training_messages(hierarchy, -1, spec.n_classes, 75)


class TestQueryMessages:
    def test_all_local_no_messages(self, pdp_tree):
        hierarchy, spec = pdp_tree
        messages = edgehd_query_messages(
            hierarchy, 1000, 25, level_frequency={1: 1.0, 2: 0.0, 3: 0.0}
        )
        assert messages == []

    def test_all_central_maximal_traffic(self, pdp_tree):
        hierarchy, spec = pdp_tree
        local = edgehd_query_messages(
            hierarchy, 1000, 25, level_frequency={1: 0.5, 2: 0.3, 3: 0.2}
        )
        central = edgehd_query_messages(
            hierarchy, 1000, 25, level_frequency={1: 0.0, 2: 0.0, 3: 1.0}
        )
        assert sum(m.payload_bytes for m in central) > sum(
            m.payload_bytes for m in local
        )

    def test_compression_reduces_bundles(self, pdp_tree):
        hierarchy, spec = pdp_tree
        freq = {1: 0.0, 2: 0.0, 3: 1.0}
        tight = edgehd_query_messages(hierarchy, 1000, 50, level_frequency=freq)
        loose = edgehd_query_messages(hierarchy, 1000, 1, level_frequency=freq)
        assert sum(m.payload_bytes for m in tight) < sum(
            m.payload_bytes for m in loose
        )


class TestSystemCosts:
    @pytest.mark.parametrize("config", CONFIGS)
    def test_training_positive(self, config):
        cost = system_training_cost(config, "PDP")
        assert cost.total_time_s > 0
        assert cost.total_energy_j > 0

    @pytest.mark.parametrize("config", CONFIGS)
    def test_inference_positive(self, config):
        cost = system_inference_cost(config, "PDP")
        assert cost.total_time_s > 0

    def test_edgehd_lowest_comm(self):
        edge = system_training_cost("edgehd", "PDP")
        central = system_training_cost("hd-fpga", "PDP")
        assert edge.comm_bytes < central.comm_bytes

    def test_slow_medium_increases_comm_time(self):
        fast = system_training_cost("hd-gpu", "PDP", medium="wired-1gbps")
        slow = system_training_cost("hd-gpu", "PDP", medium="bluetooth-4.0")
        assert slow.comm_time_s > fast.comm_time_s
        # Compute time is unchanged.
        assert slow.compute_time_s == pytest.approx(fast.compute_time_s)

    def test_star_cheaper_than_tree_comm(self):
        star = system_training_cost("hd-gpu", "PDP", topology="star")
        tree = system_training_cost("hd-gpu", "PDP", topology="tree")
        assert star.comm_time_s < tree.comm_time_s

    def test_unknown_config(self):
        with pytest.raises(ValueError):
            system_training_cost("quantum", "PDP")

    def test_flat_dataset_rejected(self):
        with pytest.raises(ValueError):
            system_training_cost("edgehd", "MNIST")

    def test_unknown_topology(self):
        with pytest.raises(ValueError):
            system_training_cost("edgehd", "PDP", topology="ring")
