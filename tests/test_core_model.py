"""Unit tests for the EdgeHDModel container and wire-size helpers."""

import numpy as np
import pytest

from repro.core.encoding import RBFEncoder
from repro.core.model import (
    EdgeHDModel,
    class_model_bytes,
    hypervector_bytes,
    raw_data_bytes,
)


class TestWireSizes:
    def test_bipolar_bits(self):
        assert hypervector_bytes(4000, bipolar=True) == 500
        assert hypervector_bytes(7, bipolar=True) == 1

    def test_integer_elements(self):
        assert hypervector_bytes(4000, bipolar=False) == 16_000

    def test_class_model(self):
        assert class_model_bytes(3, 100) == 3 * 400

    def test_raw_data(self):
        assert raw_data_bytes(10, 5) == 200

    def test_invalid(self):
        with pytest.raises(ValueError):
            hypervector_bytes(0)
        with pytest.raises(ValueError):
            class_model_bytes(0, 10)
        with pytest.raises(ValueError):
            raw_data_bytes(-1, 5)

    def test_model_much_smaller_than_raw_data(self):
        """The paper's headline: models beat raw uploads at scale."""
        model = class_model_bytes(5, 4000)
        raw = raw_data_bytes(600_000, 75)  # PAMAP2 paper scale
        assert model < raw / 100


class TestEdgeHDModel:
    @pytest.fixture(scope="class")
    def fitted(self, small_split=None):
        rng = np.random.default_rng(1)
        centers = rng.standard_normal((2, 8)) * 3.0
        x = np.vstack(
            [centers[c] + rng.standard_normal((50, 8)) for c in range(2)]
        )
        y = np.repeat([0, 1], 50)
        model = EdgeHDModel(8, 2, dimension=400, seed=2)
        report = model.fit(x, y, retrain_epochs=5)
        return model, report, x, y

    def test_fit_report(self, fitted):
        model, report, x, y = fitted
        assert report.n_samples == 100
        assert 0.0 <= report.initial_accuracy <= 1.0
        assert report.final_accuracy >= report.initial_accuracy - 0.05

    def test_predict_from_raw_features(self, fitted):
        model, report, x, y = fitted
        assert model.accuracy(x, y) > 0.9
        labels = model.predict_labels(x[:5])
        assert labels.shape == (5,)

    def test_encode_shape(self, fitted):
        model, _, x, _ = fitted
        assert model.encode(x[:3]).shape == (3, 400)

    def test_class_hypervectors_unfitted_raises(self):
        model = EdgeHDModel(4, 2, dimension=64)
        with pytest.raises(RuntimeError):
            _ = model.class_hypervectors

    def test_model_wire_bytes(self, fitted):
        model, _, _, _ = fitted
        assert model.model_wire_bytes() == class_model_bytes(2, 400)

    def test_save_load_roundtrip(self, fitted, tmp_path):
        model, _, x, y = fitted
        path = str(tmp_path / "model.npz")
        model.save_model(path)
        fresh = EdgeHDModel(8, 2, dimension=400, seed=2)
        fresh.load_model(path)
        assert np.array_equal(
            fresh.class_hypervectors, model.class_hypervectors
        )
        assert fresh.accuracy(x, y) == model.accuracy(x, y)

    def test_load_shape_mismatch(self, fitted, tmp_path):
        model, _, _, _ = fitted
        path = str(tmp_path / "model.npz")
        model.save_model(path)
        other = EdgeHDModel(8, 2, dimension=512, seed=2)
        with pytest.raises(ValueError):
            other.load_model(path)

    def test_to_bytes_nonempty(self, fitted):
        model, _, _, _ = fitted
        blob = model.to_bytes()
        assert isinstance(blob, bytes)
        assert len(blob) > 400

    def test_custom_encoder_instance(self):
        enc = RBFEncoder(6, 128, seed=3)
        model = EdgeHDModel(6, 2, dimension=128, encoder=enc)
        assert model.encoder is enc

    def test_custom_encoder_shape_mismatch(self):
        enc = RBFEncoder(6, 128, seed=3)
        with pytest.raises(ValueError):
            EdgeHDModel(7, 2, dimension=128, encoder=enc)

    def test_wrong_feature_width(self, fitted):
        model, _, _, _ = fitted
        with pytest.raises(ValueError):
            model.predict(np.ones((2, 9)))
