"""Unit tests for feature partitioning across end nodes."""

import numpy as np
import pytest

from repro.data.partition import FeaturePartition, partition_features


class TestPartitionFeatures:
    def test_balanced_sizes(self):
        part = partition_features(10, 3)
        assert part.feature_counts() == [4, 3, 3]
        part.validate()

    def test_exact_division(self):
        part = partition_features(12, 4)
        assert part.feature_counts() == [3, 3, 3, 3]

    def test_single_node_gets_all(self):
        part = partition_features(7, 1)
        assert part.feature_counts() == [7]
        assert np.array_equal(part.columns(0), np.arange(7))

    def test_unbalanced_random_sizes(self):
        part = partition_features(20, 4, balanced=False, seed=1)
        counts = part.feature_counts()
        assert sum(counts) == 20
        assert all(c >= 1 for c in counts)
        part.validate()

    def test_unbalanced_deterministic(self):
        a = partition_features(20, 4, balanced=False, seed=2)
        b = partition_features(20, 4, balanced=False, seed=2)
        assert a.slices == b.slices

    def test_shuffled_columns(self):
        part = partition_features(10, 2, shuffle=True, seed=3)
        all_cols = sorted(c for s in part.slices for c in s)
        assert all_cols == list(range(10))

    def test_contiguous_when_not_shuffled(self):
        part = partition_features(9, 3)
        assert part.slices == ((0, 1, 2), (3, 4, 5), (6, 7, 8))

    def test_too_many_nodes(self):
        with pytest.raises(ValueError):
            partition_features(3, 5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            partition_features(0, 1)
        with pytest.raises(ValueError):
            partition_features(5, 0)


class TestFeaturePartition:
    @pytest.fixture()
    def part(self):
        return partition_features(8, 2)

    def test_restrict_matrix(self, part):
        mat = np.arange(16).reshape(2, 8)
        assert np.array_equal(part.restrict(mat, 0), mat[:, :4])
        assert np.array_equal(part.restrict(mat, 1), mat[:, 4:])

    def test_restrict_vector(self, part):
        vec = np.arange(8)
        assert np.array_equal(part.restrict(vec, 1), vec[4:])

    def test_columns_out_of_range(self, part):
        with pytest.raises(IndexError):
            part.columns(2)

    def test_n_properties(self, part):
        assert part.n_nodes == 2
        assert part.n_features == 8

    def test_validate_catches_overlap(self):
        bad = FeaturePartition(slices=((0, 1), (1, 2)))
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_catches_gap(self):
        bad = FeaturePartition(slices=((0, 1), (3,)))
        with pytest.raises(ValueError):
            bad.validate()

    def test_validate_catches_empty_slice(self):
        bad = FeaturePartition(slices=((0, 1), ()))
        with pytest.raises(ValueError):
            bad.validate()
