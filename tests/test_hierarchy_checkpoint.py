"""Unit tests for federation checkpointing."""

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import load_dataset, partition_features
from repro.hierarchy.checkpoint import (
    CheckpointError,
    load_federation,
    save_federation,
)
from repro.hierarchy.federation import EdgeHDFederation
from repro.hierarchy.topology import build_star, build_tree


@pytest.fixture(scope="module")
def trained():
    data = load_dataset("PDP", scale=0.04, max_train=500, max_test=200, seed=19)
    partition = partition_features(data.n_features, 5)
    config = EdgeHDConfig(dimension=768, batch_size=10, retrain_epochs=4, seed=37)
    federation = EdgeHDFederation(build_tree(5), partition, data.n_classes, config)
    federation.fit_offline(data.train_x, data.train_y)
    return data, partition, config, federation


def fresh(data, partition, config, topology=None):
    return EdgeHDFederation(
        topology or build_tree(5), partition, data.n_classes, config
    )


class TestRoundtrip:
    def test_restores_exact_models(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        restored = load_federation(fresh(data, partition, config), path)
        for nid in federation.hierarchy.nodes:
            assert np.array_equal(
                restored.classifiers[nid].class_hypervectors,
                federation.classifiers[nid].class_hypervectors,
            )

    def test_restored_accuracy_identical(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        restored = load_federation(fresh(data, partition, config), path)
        original = federation.accuracy_by_level(data.test_x, data.test_y)
        reloaded = restored.accuracy_by_level(data.test_x, data.test_y)
        assert original == reloaded

    def test_untrained_save_rejected(self, trained, tmp_path):
        data, partition, config, _ = trained
        with pytest.raises(RuntimeError):
            save_federation(fresh(data, partition, config), tmp_path / "x.npz")


class TestValidation:
    def test_missing_file(self, trained, tmp_path):
        data, partition, config, _ = trained
        with pytest.raises(FileNotFoundError):
            load_federation(fresh(data, partition, config), tmp_path / "nope.npz")

    def test_topology_mismatch_rejected(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        other = fresh(data, partition, config, topology=build_star(5))
        # STAR differs in node count (and depth); either is caught.
        with pytest.raises(CheckpointError, match="n_nodes|depth"):
            load_federation(other, path)

    def test_config_mismatch_rejected(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        other_config = config.with_overrides(seed=99)
        with pytest.raises(CheckpointError, match="seed"):
            load_federation(fresh(data, partition, other_config), path)

    def test_dimension_mismatch_rejected(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        small = config.with_overrides(dimension=512)
        with pytest.raises(CheckpointError):
            load_federation(fresh(data, partition, small), path)

    def test_corrupt_metadata_rejected(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        # Write an npz without the meta block.
        np.savez_compressed(str(path), node_0=np.ones((2, 4)))
        with pytest.raises(CheckpointError, match="metadata"):
            load_federation(fresh(data, partition, config), path)


class TestPackedRoundtrip:
    """Binarized / packed models survive save -> load bit-exactly.

    The serving cluster publishes the packed sign model into shared
    memory straight from the checkpointed class hypervectors, so a
    single flipped bit here would silently change every worker's
    associative search.
    """

    def _binarized(self, trained, tmp_path, tag):
        data, partition, config, federation = trained
        path = tmp_path / f"{tag}.npz"
        save_federation(federation, path)
        restored = load_federation(fresh(data, partition, config), path)
        for clf in restored.classifiers.values():
            clf.binarize_model()
        return data, partition, config, restored

    def test_binarized_round_trip_bit_exact(self, trained, tmp_path):
        data, partition, config, binarized = self._binarized(
            trained, tmp_path, "base"
        )
        path = tmp_path / "binarized.npz"
        save_federation(binarized, path)
        reloaded = load_federation(fresh(data, partition, config), path)
        for nid in binarized.hierarchy.nodes:
            original = binarized.classifiers[nid].class_hypervectors
            loaded = reloaded.classifiers[nid].class_hypervectors
            assert loaded.dtype == original.dtype
            assert np.array_equal(loaded, original)
            assert set(np.unique(loaded)) <= {-1.0, 1.0}

    def test_packed_words_round_trip_bit_exact(self, trained, tmp_path):
        from repro.core.kernels import pack_bits

        data, partition, config, binarized = self._binarized(
            trained, tmp_path, "base"
        )
        path = tmp_path / "binarized.npz"
        save_federation(binarized, path)
        reloaded = load_federation(fresh(data, partition, config), path)
        for nid in binarized.hierarchy.nodes:
            before = pack_bits(binarized.classifiers[nid].class_hypervectors)
            after = pack_bits(reloaded.classifiers[nid].class_hypervectors)
            assert np.array_equal(before.words, after.words)
            assert before.dimension == after.dimension

    def test_packed_predictions_identical_after_reload(self, trained, tmp_path):
        from repro.core.search import SearchSpec

        data, partition, config, binarized = self._binarized(
            trained, tmp_path, "base"
        )
        path = tmp_path / "binarized.npz"
        save_federation(binarized, path)
        reloaded = load_federation(fresh(data, partition, config), path)
        spec = SearchSpec(backend="packed")
        encodings = binarized.encode_all(data.test_x[:64])
        for nid, enc in encodings.items():
            before = binarized.classifiers[nid].predict(enc, search=spec)
            after = reloaded.classifiers[nid].predict(enc, search=spec)
            assert np.array_equal(before.labels, after.labels)
            # packed similarities are integer Hamming scores: bit-equal
            assert np.array_equal(before.top_confidence, after.top_confidence)


class TestErrorContext:
    """Every ``CheckpointError`` names the file and what diverged.

    Operators diagnose restore failures from the message alone (the
    CLI prints it and exits), so each error must carry the checkpoint
    path plus the expected-vs-found detail — regression tests for the
    error-context contract of ``load_federation``.
    """

    def _saved(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "ctx.npz"
        save_federation(federation, path)
        return data, partition, config, path

    def test_mismatch_names_path_and_both_values(self, trained, tmp_path):
        data, partition, config, path = self._saved(trained, tmp_path)
        other = config.with_overrides(seed=99)
        with pytest.raises(CheckpointError) as err:
            load_federation(fresh(data, partition, other), path)
        msg = str(err.value)
        assert str(path) in msg
        assert "'seed'" in msg
        assert f"saved {config.seed!r}" in msg
        assert "vs federation 99" in msg

    def test_garbage_file_names_path(self, trained, tmp_path):
        data, partition, config, _ = trained
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"definitely not a zip archive")
        with pytest.raises(CheckpointError) as err:
            load_federation(fresh(data, partition, config), path)
        msg = str(err.value)
        assert str(path) in msg
        assert "not a readable checkpoint archive" in msg

    def test_truncated_archive_names_path(self, trained, tmp_path):
        data, partition, config, path = self._saved(trained, tmp_path)
        raw = path.read_bytes()
        target = tmp_path / "trunc.npz"
        target.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError) as err:
            load_federation(fresh(data, partition, config), target)
        assert str(target) in str(err.value)

    def test_version_mismatch_names_expected_and_found(
        self, trained, tmp_path
    ):
        import json

        data, partition, config, path = self._saved(trained, tmp_path)
        arrays = dict(np.load(path, allow_pickle=False))
        meta = json.loads(bytes(arrays["meta"]).decode("utf-8"))
        meta["format_version"] = 99
        arrays["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        target = tmp_path / "vers.npz"
        np.savez_compressed(str(target), **arrays)
        with pytest.raises(CheckpointError) as err:
            load_federation(fresh(data, partition, config), target)
        msg = str(err.value)
        assert str(target) in msg
        assert "expected 1" in msg
        assert "found 99" in msg

    def test_missing_model_lists_expected_and_found(self, trained, tmp_path):
        data, partition, config, path = self._saved(trained, tmp_path)
        arrays = dict(np.load(path, allow_pickle=False))
        del arrays["node_0"]
        target = tmp_path / "missing.npz"
        np.savez_compressed(str(target), **arrays)
        with pytest.raises(CheckpointError) as err:
            load_federation(fresh(data, partition, config), target)
        msg = str(err.value)
        assert str(target) in msg
        assert "missing model for node 0" in msg
        # both sides of the diff: what was wanted, what the file holds
        assert "expected arrays for nodes" in msg
        assert "found entries" in msg
        assert "node_1" in msg

    def test_wrong_shape_names_both_shapes(self, trained, tmp_path):
        data, partition, config, path = self._saved(trained, tmp_path)
        arrays = dict(np.load(path, allow_pickle=False))
        arrays["node_0"] = np.ones((2, 3))
        target = tmp_path / "shape.npz"
        np.savez_compressed(str(target), **arrays)
        with pytest.raises(CheckpointError) as err:
            load_federation(fresh(data, partition, config), target)
        msg = str(err.value)
        assert str(target) in msg
        assert "(2, 3)" in msg
        assert "expected" in msg

    def test_missing_meta_lists_found_entries(self, trained, tmp_path):
        data, partition, config, path = self._saved(trained, tmp_path)
        arrays = dict(np.load(path, allow_pickle=False))
        del arrays["meta"]
        target = tmp_path / "nometa.npz"
        np.savez_compressed(str(target), **arrays)
        with pytest.raises(CheckpointError) as err:
            load_federation(fresh(data, partition, config), target)
        msg = str(err.value)
        assert str(target) in msg
        assert "missing metadata block" in msg
        assert "node_0" in msg
