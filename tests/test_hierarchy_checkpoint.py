"""Unit tests for federation checkpointing."""

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import load_dataset, partition_features
from repro.hierarchy.checkpoint import (
    CheckpointError,
    load_federation,
    save_federation,
)
from repro.hierarchy.federation import EdgeHDFederation
from repro.hierarchy.topology import build_star, build_tree


@pytest.fixture(scope="module")
def trained():
    data = load_dataset("PDP", scale=0.04, max_train=500, max_test=200, seed=19)
    partition = partition_features(data.n_features, 5)
    config = EdgeHDConfig(dimension=768, batch_size=10, retrain_epochs=4, seed=37)
    federation = EdgeHDFederation(build_tree(5), partition, data.n_classes, config)
    federation.fit_offline(data.train_x, data.train_y)
    return data, partition, config, federation


def fresh(data, partition, config, topology=None):
    return EdgeHDFederation(
        topology or build_tree(5), partition, data.n_classes, config
    )


class TestRoundtrip:
    def test_restores_exact_models(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        restored = load_federation(fresh(data, partition, config), path)
        for nid in federation.hierarchy.nodes:
            assert np.array_equal(
                restored.classifiers[nid].class_hypervectors,
                federation.classifiers[nid].class_hypervectors,
            )

    def test_restored_accuracy_identical(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        restored = load_federation(fresh(data, partition, config), path)
        original = federation.accuracy_by_level(data.test_x, data.test_y)
        reloaded = restored.accuracy_by_level(data.test_x, data.test_y)
        assert original == reloaded

    def test_untrained_save_rejected(self, trained, tmp_path):
        data, partition, config, _ = trained
        with pytest.raises(RuntimeError):
            save_federation(fresh(data, partition, config), tmp_path / "x.npz")


class TestValidation:
    def test_missing_file(self, trained, tmp_path):
        data, partition, config, _ = trained
        with pytest.raises(FileNotFoundError):
            load_federation(fresh(data, partition, config), tmp_path / "nope.npz")

    def test_topology_mismatch_rejected(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        other = fresh(data, partition, config, topology=build_star(5))
        # STAR differs in node count (and depth); either is caught.
        with pytest.raises(CheckpointError, match="n_nodes|depth"):
            load_federation(other, path)

    def test_config_mismatch_rejected(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        other_config = config.with_overrides(seed=99)
        with pytest.raises(CheckpointError, match="seed"):
            load_federation(fresh(data, partition, other_config), path)

    def test_dimension_mismatch_rejected(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        save_federation(federation, path)
        small = config.with_overrides(dimension=512)
        with pytest.raises(CheckpointError):
            load_federation(fresh(data, partition, small), path)

    def test_corrupt_metadata_rejected(self, trained, tmp_path):
        data, partition, config, federation = trained
        path = tmp_path / "fed.npz"
        # Write an npz without the meta block.
        np.savez_compressed(str(path), node_0=np.ones((2, 4)))
        with pytest.raises(CheckpointError, match="metadata"):
            load_federation(fresh(data, partition, config), path)
