"""Unit tests for the command-line interface."""

import pytest

import repro.obs as obs
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.dataset == "PDP"
        assert args.dimension == 4000
        assert args.encoder == "rbf"

    def test_federate_topologies(self):
        for topo in ("star", "tree", "pecan"):
            args = build_parser().parse_args(["federate", "--topology", topo])
            assert args.topology == topo

    def test_invalid_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--dataset", "CIFAR"])

    def test_reproduce_choices(self):
        args = build_parser().parse_args(["reproduce", "--figure", "table2"])
        assert args.figure == "table2"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--figure", "fig99"])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "PECAN" in out and "MNIST" in out

    def test_train_small(self, capsys, tmp_path):
        checkpoint = str(tmp_path / "model.npz")
        code = main(
            [
                "train", "--dataset", "PDP", "--dimension", "256",
                "--scale", "0.02", "--epochs", "2", "--save", checkpoint,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert (tmp_path / "model.npz").exists()

    def test_federate_small(self, capsys):
        code = main(
            [
                "federate", "--dataset", "PDP", "--dimension", "256",
                "--scale", "0.02", "--epochs", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "level 1" in out and "training traffic" in out

    def test_federate_rejects_flat_dataset(self, capsys):
        code = main(
            ["federate", "--dataset", "MNIST", "--scale", "0.001"]
        )
        assert code == 2


class TestObservability:
    @pytest.fixture(autouse=True)
    def clean_obs(self):
        obs.disable()
        obs.reset()
        yield
        obs.disable()
        obs.reset()

    def test_verbose_flag_parses(self):
        args = build_parser().parse_args(["-vv", "train"])
        assert args.verbose == 2

    def test_trace_flag_enables_obs_and_writes(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_OBS_STATS", str(tmp_path / "stats.json"))
        trace = tmp_path / "trace.jsonl"
        code = main(
            [
                "train", "--dataset", "PDP", "--dimension", "128",
                "--scale", "0.02", "--epochs", "1", "--trace", str(trace),
            ]
        )
        assert code == 0
        assert trace.exists() and trace.read_text().strip()
        assert (tmp_path / "stats.json").exists()

    def test_stats_renders_dump(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_STATS", str(tmp_path / "stats.json"))
        obs.enable()
        obs.incr("core.encode.calls", 3)
        obs.dump_stats()
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "core.encode.calls" in out and "3" in out

    def test_stats_json_output(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_STATS", str(tmp_path / "stats.json"))
        obs.enable()
        obs.incr("x")
        obs.dump_stats()
        assert main(["stats", "--json"]) == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert data["x"]["value"] == 1

    def test_stats_missing_explicit_input(self, capsys, tmp_path):
        code = main(["stats", "--input", str(tmp_path / "absent.json")])
        assert code == 2

    def _dump(self, path, n):
        """A one-counter + one-gauge stats dump worth ``n``."""
        obs.enable()
        obs.reset()
        obs.incr("worker.requests", n, labels={"node": 0})
        obs.gauge_set("worker.depth", n)
        obs.dump_stats(path)
        obs.reset()

    def test_stats_merge_combines_dumps(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, 3)
        self._dump(b, 4)
        code = main(["stats", "--merge", str(a), str(b), "--json"])
        assert code == 0
        import json

        data = json.loads(capsys.readouterr().out)
        assert data['worker.requests{node="0"}']["value"] == 7
        # gauges: last dump on the command line wins
        assert data["worker.depth"]["value"] == 4

    def test_stats_merge_missing_file_exits_2(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        self._dump(a, 1)
        code = main(["stats", "--merge", str(a), str(tmp_path / "no.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_stats_merge_conflict_exits_2(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._dump(a, 1)
        obs.enable()
        obs.reset()
        obs.incr("worker.depth")  # counter where a.json holds a gauge
        obs.dump_stats(b)
        obs.reset()
        code = main(["stats", "--merge", str(a), str(b)])
        assert code == 2
        assert "error merging" in capsys.readouterr().err

    def test_stats_openmetrics_format(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        self._dump(a, 5)
        code = main(["stats", "--input", str(a), "--format", "openmetrics"])
        assert code == 0
        out = capsys.readouterr().out
        assert 'worker_requests_total{node="0"} 5' in out
        assert out.rstrip().endswith("# EOF")
        assert obs.parse_openmetrics(out)

    def test_stats_output_file(self, capsys, tmp_path):
        a = tmp_path / "a.json"
        self._dump(a, 2)
        target = tmp_path / "exposition.txt"
        code = main(
            [
                "stats", "--input", str(a), "--format", "openmetrics",
                "--output", str(target),
            ]
        )
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        assert obs.parse_openmetrics(target.read_text())


class TestServeBench:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.policy == "block"
        # --backend is now a deprecated alias for --search-backend;
        # unset means "use the resolved SearchSpec default".
        assert args.backend is None
        assert args.search_backend is None
        assert args.search_prune is None
        assert args.max_batch == 32
        assert args.rate == 500.0
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--policy", "drop"])

    def test_open_loop_run(self, capsys):
        code = main(
            [
                "serve-bench", "--dataset", "APRI", "--dimension", "256",
                "--scale", "0.05", "--max-train", "500", "--max-test", "150",
                "--epochs", "2", "--rate", "2000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "open loop" in out
        assert "p99" in out
        assert "accuracy (answered)" in out

    def test_closed_loop_run(self, capsys):
        code = main(
            [
                "serve-bench", "--dataset", "APRI", "--dimension", "256",
                "--scale", "0.05", "--max-train", "500", "--max-test", "150",
                "--epochs", "2", "--closed-loop", "--clients", "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "closed loop: 4 clients" in out

    def test_rejects_flat_dataset(self, capsys):
        code = main(["serve-bench", "--dataset", "MNIST", "--scale", "0.001"])
        assert code == 2

    def test_faults_run(self, capsys):
        code = main(
            [
                "serve-bench", "--dataset", "APRI", "--dimension", "256",
                "--scale", "0.05", "--max-train", "500", "--max-test", "150",
                "--epochs", "2", "--rate", "2000", "--faults",
                "--fault-drop", "0.3", "--fault-dim-loss", "0.15",
                "--fault-crash", "1", "--fault-seed", "42",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "faults: drop 0.30" in out
        assert "crashed nodes [1]" in out
        assert "degraded" in out

    def test_faults_trace_export_then_report(
        self, capsys, tmp_path, monkeypatch
    ):
        """The acceptance path: traced chaos serve, then serve-report."""
        monkeypatch.setenv("REPRO_OBS_STATS", str(tmp_path / "stats.json"))
        obs.disable()
        obs.reset()
        trace = tmp_path / "t.jsonl"
        exposition = tmp_path / "om.txt"
        flight = tmp_path / "flight.jsonl"
        telemetry = tmp_path / "telemetry.jsonl"
        try:
            code = main(
                [
                    "serve-bench", "--dataset", "APRI", "--dimension", "256",
                    "--scale", "0.05", "--max-train", "500",
                    "--max-test", "150", "--epochs", "2", "--rate", "2000",
                    "--faults", "--fault-drop", "0.3", "--fault-crash", "1",
                    "--fault-seed", "42", "--trace", str(trace),
                    "--openmetrics", str(exposition),
                    "--flight", str(flight), "--telemetry", str(telemetry),
                ]
            )
        finally:
            obs.disable()
            obs.reset()
        assert code == 0
        out = capsys.readouterr().out
        assert "flight recorder" in out
        assert trace.exists() and flight.exists() and telemetry.exists()
        assert obs.parse_openmetrics(exposition.read_text())
        assert main(["serve-report", str(trace), "--slo-ms", "50"]) == 0
        report = capsys.readouterr().out
        assert "serve-report:" in report
        assert "critical-path attribution" in report
        assert "timeline" in report

    def test_faults_parser_defaults(self):
        args = build_parser().parse_args(["serve-bench", "--faults"])
        assert args.faults is True
        assert args.fault_drop == 0.1
        assert args.fault_dim_loss == 0.0
        assert args.fault_crash is None
        assert args.fault_seed is None


class TestOutputPaths:
    def test_report_output_creates_parent_dirs(self, capsys, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_x.report.json").write_text(
            '{"title": "X", "body": "measured"}'
        )
        out = tmp_path / "deep" / "nested" / "report.md"
        code = main(
            [
                "report", "--results-dir", str(results),
                "--output", str(out),
            ]
        )
        assert code == 0
        assert out.exists()

    def test_trace_path_creates_parent_dirs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_OBS_STATS", str(tmp_path / "stats.json"))
        obs.disable()
        obs.reset()
        trace = tmp_path / "deep" / "nested" / "trace.jsonl"
        code = main(
            [
                "train", "--dataset", "PDP", "--dimension", "128",
                "--scale", "0.02", "--epochs", "1", "--trace", str(trace),
            ]
        )
        obs.disable()
        obs.reset()
        assert code == 0
        assert trace.exists()
