"""Unit + integration tests for the comparison baselines."""

import numpy as np
import pytest

from repro.baselines.adaboost import AdaBoostClassifier, DecisionStump
from repro.baselines.centralized import CentralizedHD, centralized_upload_messages
from repro.baselines.linear_hd import LinearHDClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.svm import KernelSVM
from repro.config import EdgeHDConfig
from repro.data import make_classification, partition_features
from repro.hierarchy.topology import build_star, build_tree
from repro.network.message import MessageKind


@pytest.fixture(scope="module")
def easy_problem():
    """Well-separated 3-class Gaussian blobs — every baseline should ace it."""
    rng = np.random.default_rng(1)
    centers = rng.standard_normal((3, 10)) * 5.0
    x = np.vstack([centers[c] + rng.standard_normal((80, 10)) for c in range(3)])
    y = np.repeat([0, 1, 2], 80)
    order = rng.permutation(240)
    x, y = x[order], y[order]
    return x[:180], y[:180], x[180:], y[180:]


@pytest.fixture(scope="module")
def hard_problem():
    """Non-linearly separable data (multi-cluster, centered classes)."""
    x, y = make_classification(
        700, 12, 2, clusters_per_class=4, seed=2, noise=0.3,
        class_separation=3.0,
    )
    return x[:550], y[:550], x[550:], y[550:]


class TestMLP:
    def test_fits_easy(self, easy_problem):
        tr_x, tr_y, te_x, te_y = easy_problem
        mlp = MLPClassifier(10, 3, hidden_sizes=(32,), epochs=20, seed=3)
        mlp.fit(tr_x, tr_y)
        assert mlp.accuracy(te_x, te_y) > 0.9

    def test_handles_nonlinear(self, hard_problem):
        tr_x, tr_y, te_x, te_y = hard_problem
        mlp = MLPClassifier(12, 2, hidden_sizes=(64, 32), epochs=40, seed=4)
        mlp.fit(tr_x, tr_y)
        assert mlp.accuracy(te_x, te_y) > 0.75

    def test_loss_decreases(self, easy_problem):
        tr_x, tr_y, *_ = easy_problem
        mlp = MLPClassifier(10, 3, hidden_sizes=(16,), epochs=15, seed=5)
        mlp.fit(tr_x, tr_y)
        assert mlp.loss_history[-1] < mlp.loss_history[0]

    def test_proba_normalized(self, easy_problem):
        tr_x, tr_y, te_x, _ = easy_problem
        mlp = MLPClassifier(10, 3, hidden_sizes=(16,), epochs=5, seed=6)
        mlp.fit(tr_x, tr_y)
        probs = mlp.predict_proba(te_x[:7])
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MLPClassifier(4, 2).predict(np.ones((1, 4)))

    def test_empty_training_set(self):
        with pytest.raises(ValueError):
            MLPClassifier(4, 2).fit(np.empty((0, 4)), np.empty(0, dtype=int))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            MLPClassifier(4, 2, hidden_sizes=(0,))
        with pytest.raises(ValueError):
            MLPClassifier(4, 2, learning_rate=0.0)
        with pytest.raises(ValueError):
            MLPClassifier(4, 1)


class TestKernelSVM:
    def test_fits_easy(self, easy_problem):
        tr_x, tr_y, te_x, te_y = easy_problem
        svm = KernelSVM(10, 3, n_components=256, epochs=8, seed=7)
        svm.fit(tr_x, tr_y)
        assert svm.accuracy(te_x, te_y) > 0.9

    def test_handles_nonlinear(self, hard_problem):
        """RFF lift lets the linear solver fit non-linear data."""
        tr_x, tr_y, te_x, te_y = hard_problem
        svm = KernelSVM(12, 2, n_components=512, gamma=0.4, epochs=15, seed=8)
        svm.fit(tr_x, tr_y)
        assert svm.accuracy(te_x, te_y) > 0.75

    def test_decision_function_shape(self, easy_problem):
        tr_x, tr_y, te_x, _ = easy_problem
        svm = KernelSVM(10, 3, n_components=128, epochs=3, seed=9)
        svm.fit(tr_x, tr_y)
        assert svm.decision_function(te_x[:5]).shape == (5, 3)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            KernelSVM(4, 2).predict(np.ones((1, 4)))

    def test_invalid_hyperparams(self):
        with pytest.raises(ValueError):
            KernelSVM(4, 2, n_components=0)
        with pytest.raises(ValueError):
            KernelSVM(4, 2, reg_lambda=0.0)
        with pytest.raises(ValueError):
            KernelSVM(4, 2, gamma=-1.0)


class TestAdaBoost:
    def test_fits_easy(self, easy_problem):
        tr_x, tr_y, te_x, te_y = easy_problem
        ada = AdaBoostClassifier(10, 3, n_estimators=40, seed=10)
        ada.fit(tr_x, tr_y)
        assert ada.accuracy(te_x, te_y) > 0.8

    def test_stump_predict(self):
        stump = DecisionStump(feature=0, threshold=0.5, left_class=1, right_class=0)
        x = np.array([[0.2], [0.9]])
        assert np.array_equal(stump.predict(x), [1, 0])

    def test_boosting_beats_single_stump(self, easy_problem):
        tr_x, tr_y, te_x, te_y = easy_problem
        one = AdaBoostClassifier(10, 3, n_estimators=1, seed=11)
        many = AdaBoostClassifier(10, 3, n_estimators=50, seed=11)
        one.fit(tr_x, tr_y)
        many.fit(tr_x, tr_y)
        assert many.accuracy(te_x, te_y) >= one.accuracy(te_x, te_y)

    def test_alphas_positive(self, easy_problem):
        tr_x, tr_y, *_ = easy_problem
        ada = AdaBoostClassifier(10, 3, n_estimators=10, seed=12)
        ada.fit(tr_x, tr_y)
        assert all(a > 0 for a in ada.alphas)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            AdaBoostClassifier(4, 2).predict(np.ones((1, 4)))

    def test_invalid(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(4, 2, n_estimators=0)


class TestLinearHD:
    def test_fits_easy(self, easy_problem):
        tr_x, tr_y, te_x, te_y = easy_problem
        hd = LinearHDClassifier(10, 3, dimension=1000, seed=13)
        hd.fit(tr_x, tr_y, retrain_epochs=8)
        assert hd.accuracy(te_x, te_y) > 0.85

    def test_nonlinear_encoding_beats_linear_on_average(self):
        """The Fig. 7 headline: RBF encoding > linear encoding (avg)."""
        from repro.core.model import EdgeHDModel

        gaps = []
        for seed in (3, 4):
            x, y = make_classification(
                700, 12, 2, clusters_per_class=4, seed=seed, noise=0.3,
                class_separation=3.0,
            )
            tr_x, tr_y, te_x, te_y = x[:550], y[:550], x[550:], y[550:]
            linear = LinearHDClassifier(12, 2, dimension=2000, seed=14)
            linear.fit(tr_x, tr_y, retrain_epochs=10)
            rbf = EdgeHDModel(12, 2, dimension=2000, encoder="rbf", seed=14)
            rbf.fit(tr_x, tr_y, retrain_epochs=10)
            gaps.append(
                rbf.accuracy(te_x, te_y) - linear.accuracy(te_x, te_y)
            )
        assert np.mean(gaps) > 0.0


class TestCentralized:
    @pytest.fixture(scope="class")
    def setup(self):
        x, y = make_classification(400, 12, 2, seed=15)
        part = partition_features(12, 3)
        hierarchy = build_tree(3)
        config = EdgeHDConfig(dimension=512, retrain_epochs=5, seed=16)
        return x, y, part, hierarchy, config

    def test_upload_messages_cover_all_hops(self, setup):
        x, y, part, hierarchy, config = setup
        messages = centralized_upload_messages(hierarchy, part, 100)
        # Every non-root node forwards once.
        assert len(messages) == len(hierarchy.nodes) - 1

    def test_gateway_forwards_subtree_volume(self, setup):
        x, y, part, hierarchy, config = setup
        messages = centralized_upload_messages(hierarchy, part, 100)
        by_source = {m.source: m for m in messages}
        for nid in hierarchy.internal_nodes():
            if nid == hierarchy.root_id:
                continue
            children_bytes = sum(
                by_source[c].payload_bytes for c in hierarchy.nodes[nid].children
            )
            assert by_source[nid].payload_bytes == children_bytes

    def test_fit_and_accuracy(self, setup):
        x, y, part, hierarchy, config = setup
        central = CentralizedHD(hierarchy, part, 2, config)
        report = central.fit(x[:300], y[:300])
        assert report.total_bytes > 0
        assert all(m.kind == MessageKind.RAW_DATA for m in report.messages)
        assert central.accuracy(x[300:], y[300:]) > 0.6

    def test_inference_messages_kind(self, setup):
        x, y, part, hierarchy, config = setup
        central = CentralizedHD(hierarchy, part, 2, config)
        messages = central.inference_messages(10)
        assert all(m.kind == MessageKind.QUERY for m in messages)

    def test_star_less_hops_than_tree(self, setup):
        x, y, part, hierarchy, config = setup
        star_msgs = centralized_upload_messages(build_star(3), part, 100)
        tree_msgs = centralized_upload_messages(hierarchy, part, 100)
        assert sum(m.payload_bytes for m in star_msgs) < sum(
            m.payload_bytes for m in tree_msgs
        )

    def test_invalid_samples(self, setup):
        x, y, part, hierarchy, config = setup
        with pytest.raises(ValueError):
            centralized_upload_messages(hierarchy, part, -1)
