"""Unit tests for the synthetic data generator."""

import numpy as np
import pytest

from repro.data.synthetic import (
    SyntheticDataset,
    make_classification,
    train_test_split,
)


class TestMakeClassification:
    def test_shapes_and_labels(self):
        x, y = make_classification(200, 10, 4, seed=1)
        assert x.shape == (200, 10)
        assert y.shape == (200,)
        assert set(np.unique(y)) <= set(range(4))

    def test_deterministic(self):
        a = make_classification(100, 8, 3, seed=7)
        b = make_classification(100, 8, 3, seed=7)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])

    def test_seed_changes_data(self):
        a = make_classification(100, 8, 3, seed=7)
        b = make_classification(100, 8, 3, seed=8)
        assert not np.array_equal(a[0], b[0])

    def test_all_classes_present(self):
        _, y = make_classification(500, 6, 5, seed=2)
        assert len(np.unique(y)) == 5

    def test_not_linearly_separable_but_learnable(self):
        """Multi-cluster classes defeat a linear model but not a
        nearest-centroid-per-cluster view (the generator's contract)."""
        x, y = make_classification(
            600, 12, 2, clusters_per_class=3, seed=3, noise=0.3
        )
        # Linear probe: least-squares on {-1,+1} targets.
        targets = np.where(y == 0, -1.0, 1.0)
        xb = np.hstack([x, np.ones((x.shape[0], 1))])
        w, *_ = np.linalg.lstsq(xb, targets, rcond=None)
        linear_acc = np.mean(np.sign(xb @ w) == targets)
        assert linear_acc < 0.9

    def test_feature_blocks_complementary(self):
        """With blocks, a single block is less informative than all."""
        x, y = make_classification(
            1500, 30, 3, feature_blocks=3, seed=4, noise=0.3
        )
        from repro.core.model import EdgeHDModel

        full = EdgeHDModel(30, 3, dimension=1000, seed=1)
        full.fit(x[:1000], y[:1000], retrain_epochs=5)
        part = EdgeHDModel(10, 3, dimension=1000, seed=1)
        part.fit(x[:1000, :10], y[:1000], retrain_epochs=5)
        assert full.accuracy(x[1000:], y[1000:]) > part.accuracy(
            x[1000:, :10], y[1000:]
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_classification(0, 5, 2)
        with pytest.raises(ValueError):
            make_classification(10, 0, 2)
        with pytest.raises(ValueError):
            make_classification(10, 5, 1)
        with pytest.raises(ValueError):
            make_classification(10, 5, 2, nonlinear_mix=1.5)
        with pytest.raises(ValueError):
            make_classification(10, 5, 2, feature_blocks=6)
        with pytest.raises(ValueError):
            make_classification(10, 5, 2, feature_blocks=2, block_leak=-0.1)


class TestTrainTestSplit:
    def test_sizes(self):
        x, y = make_classification(100, 4, 2, seed=5)
        tr_x, tr_y, te_x, te_y = train_test_split(x, y, test_fraction=0.25, seed=1)
        assert tr_x.shape[0] == 75 and te_x.shape[0] == 25
        assert tr_y.shape[0] == 75 and te_y.shape[0] == 25

    def test_disjoint_and_complete(self):
        x, y = make_classification(60, 4, 2, seed=6)
        # Tag rows uniquely via first column.
        x[:, 0] = np.arange(60)
        tr_x, _, te_x, _ = train_test_split(x, y, 0.5, seed=2)
        combined = np.sort(np.concatenate([tr_x[:, 0], te_x[:, 0]]))
        assert np.array_equal(combined, np.arange(60))

    def test_invalid_fraction(self):
        x, y = make_classification(10, 4, 2, seed=7)
        with pytest.raises(ValueError):
            train_test_split(x, y, 0.0)
        with pytest.raises(ValueError):
            train_test_split(x, y, 1.0)

    def test_length_mismatch(self):
        x, y = make_classification(10, 4, 2, seed=8)
        with pytest.raises(ValueError):
            train_test_split(x, y[:5], 0.2)


class TestSyntheticDataset:
    @pytest.fixture()
    def dataset(self):
        x, y = make_classification(100, 12, 3, seed=9)
        return SyntheticDataset("demo", x[:80], y[:80], x[80:], y[80:])

    def test_properties(self, dataset):
        assert dataset.n_features == 12
        assert dataset.n_classes == 3
        assert dataset.n_train == 80
        assert dataset.n_test == 20

    def test_subset_features(self, dataset):
        sub = dataset.subset_features([0, 3, 5])
        assert sub.n_features == 3
        assert np.array_equal(sub.train_x, dataset.train_x[:, [0, 3, 5]])
        assert np.array_equal(sub.train_y, dataset.train_y)

    def test_subset_features_invalid(self, dataset):
        with pytest.raises(ValueError):
            dataset.subset_features([])
        with pytest.raises(IndexError):
            dataset.subset_features([99])

    def test_subsample(self, dataset):
        small = dataset.subsample(10, 5, seed=1)
        assert small.n_train == 10 and small.n_test == 5

    def test_subsample_caps_at_available(self, dataset):
        same = dataset.subsample(10_000, 10_000, seed=1)
        assert same.n_train == 80 and same.n_test == 20

    def test_subsample_deterministic(self, dataset):
        a = dataset.subsample(10, 5, seed=3)
        b = dataset.subsample(10, 5, seed=3)
        assert np.array_equal(a.train_x, b.train_x)
