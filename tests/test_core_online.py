"""Unit tests for residual accumulators (online learning, Sec. IV-D)."""

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.hypervector import random_bipolar
from repro.core.online import ResidualAccumulator


@pytest.fixture()
def acc():
    return ResidualAccumulator(n_classes=3, dimension=16)


class TestRecording:
    def test_initially_empty(self, acc):
        assert acc.is_empty
        assert acc.feedback_count == 0
        assert np.all(acc.negative == 0) and np.all(acc.positive == 0)

    def test_negative_only_feedback(self, acc):
        q = np.ones(16)
        acc.record_negative(q, predicted_class=1)
        assert acc.feedback_count == 1
        assert np.array_equal(acc.negative[1], q)
        assert np.all(acc.positive == 0)

    def test_feedback_with_true_label(self, acc):
        q = np.ones(16)
        acc.record_negative(q, predicted_class=1, true_class=2)
        assert np.array_equal(acc.negative[1], q)
        assert np.array_equal(acc.positive[2], q)

    def test_accumulates(self, acc):
        q = np.ones(16)
        acc.record_negative(q, 0)
        acc.record_negative(q, 0)
        assert np.array_equal(acc.negative[0], 2 * q)
        assert acc.feedback_count == 2

    def test_same_class_feedback_rejected(self, acc):
        with pytest.raises(ValueError):
            acc.record_negative(np.ones(16), predicted_class=1, true_class=1)

    def test_bad_query_shape(self, acc):
        with pytest.raises(ValueError):
            acc.record_negative(np.ones(8), 0)

    def test_bad_class_index(self, acc):
        with pytest.raises(IndexError):
            acc.record_negative(np.ones(16), 7)
        with pytest.raises(IndexError):
            acc.record_negative(np.ones(16), 0, true_class=9)


class TestApply:
    def test_apply_subtracts_negative_adds_positive(self):
        acc = ResidualAccumulator(2, 4)
        clf = HDClassifier(2, 4).set_model(np.zeros((2, 4)))
        q = np.array([1.0, -1.0, 1.0, -1.0])
        acc.record_negative(q, predicted_class=0, true_class=1)
        acc.apply_to(clf)
        assert np.array_equal(clf.class_hypervectors[0], -q)
        assert np.array_equal(clf.class_hypervectors[1], q)

    def test_apply_learning_rate(self):
        acc = ResidualAccumulator(2, 4)
        clf = HDClassifier(2, 4).set_model(np.zeros((2, 4)))
        acc.record_negative(np.ones(4), 0)
        acc.apply_to(clf, learning_rate=0.5)
        assert np.allclose(clf.class_hypervectors[0], -0.5)

    def test_apply_does_not_clear(self):
        acc = ResidualAccumulator(2, 4)
        clf = HDClassifier(2, 4).set_model(np.zeros((2, 4)))
        acc.record_negative(np.ones(4), 0)
        acc.apply_to(clf)
        assert not acc.is_empty

    def test_apply_shape_mismatch(self):
        acc = ResidualAccumulator(2, 4)
        clf = HDClassifier(2, 8).set_model(np.zeros((2, 8)))
        with pytest.raises(ValueError):
            acc.apply_to(clf)

    def test_apply_unfitted_classifier(self):
        acc = ResidualAccumulator(2, 4)
        with pytest.raises(RuntimeError):
            acc.apply_to(HDClassifier(2, 4))

    def test_apply_invalid_lr(self):
        acc = ResidualAccumulator(2, 4)
        clf = HDClassifier(2, 4).set_model(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            acc.apply_to(clf, learning_rate=0.0)

    def test_online_update_improves_on_mistake(self):
        """Subtracting a misclassified query weakens the wrong class."""
        dim = 2000
        correct = random_bipolar(dim, seed=1).astype(float)
        wrong = random_bipolar(dim, seed=2).astype(float)
        clf = HDClassifier(2, dim).set_model(np.vstack([correct, wrong]))
        # A query near class 0 but currently closer to class 1's model.
        query = 0.4 * correct + 0.8 * wrong
        assert clf.predict(query.reshape(1, -1)).labels[0] == 1
        acc = ResidualAccumulator(2, dim)
        for _ in range(3):
            acc.record_negative(query, predicted_class=1)
        acc.apply_to(clf)
        assert clf.predict(query.reshape(1, -1)).labels[0] == 0


class TestMergeTransferClear:
    def test_merge(self):
        a = ResidualAccumulator(2, 4)
        b = ResidualAccumulator(2, 4)
        a.record_negative(np.ones(4), 0)
        b.record_negative(2 * np.ones(4), 0, true_class=1)
        a.merge(b)
        assert np.array_equal(a.negative[0], 3 * np.ones(4))
        assert np.array_equal(a.positive[1], 2 * np.ones(4))
        assert a.feedback_count == 2

    def test_merge_shape_mismatch(self):
        a = ResidualAccumulator(2, 4)
        b = ResidualAccumulator(3, 4)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_snapshot_copies(self):
        acc = ResidualAccumulator(2, 4)
        acc.record_negative(np.ones(4), 0)
        neg, pos = acc.snapshot()
        neg[0, 0] = 99.0
        assert acc.negative[0, 0] == 1.0

    def test_load(self):
        acc = ResidualAccumulator(2, 4)
        neg = np.ones((2, 4))
        pos = np.zeros((2, 4))
        acc.load(neg, pos, count=5)
        assert acc.feedback_count == 5
        assert np.array_equal(acc.negative, neg)

    def test_load_bad_shapes(self):
        acc = ResidualAccumulator(2, 4)
        with pytest.raises(ValueError):
            acc.load(np.ones((3, 4)), np.ones((2, 4)), 1)
        with pytest.raises(ValueError):
            acc.load(np.ones((2, 4)), np.ones((2, 4)), -1)

    def test_clear(self):
        acc = ResidualAccumulator(2, 4)
        acc.record_negative(np.ones(4), 0)
        acc.clear()
        assert acc.is_empty
        assert np.all(acc.negative == 0)

    def test_wire_elements(self):
        acc = ResidualAccumulator(3, 10)
        assert acc.wire_elements() == 2 * 3 * 10

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            ResidualAccumulator(1, 4)
        with pytest.raises(ValueError):
            ResidualAccumulator(2, 0)
