"""Property-based tests (hypothesis) on the wire layer.

Packing/unpacking and frame encode/decode must be exact inverses for
every shape and value range — the deployment runtime depends on it.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypervector import random_bipolar
from repro.core.packing import (
    bits_for_cap,
    pack_bipolar,
    pack_floats,
    pack_narrow_ints,
    unpack_bipolar,
    unpack_floats,
    unpack_narrow_ints,
)
from repro.core.quantize import dequantize_model, quantize_model
from repro.network.message import MessageKind
from repro.network.protocol import decode_frame, encode_frame

seeds = st.integers(min_value=0, max_value=2**31 - 1)


class TestPackingProperties:
    @given(st.integers(min_value=1, max_value=2048), seeds)
    @settings(max_examples=40, deadline=None)
    def test_bipolar_roundtrip(self, dim, seed):
        hv = random_bipolar(dim, seed=seed)
        assert np.array_equal(unpack_bipolar(pack_bipolar(hv), dim), hv)

    @given(st.integers(min_value=1, max_value=2048), seeds)
    @settings(max_examples=30, deadline=None)
    def test_bipolar_size_is_ceil_bits(self, dim, seed):
        hv = random_bipolar(dim, seed=seed)
        assert len(pack_bipolar(hv)) == (dim + 7) // 8

    @given(
        st.integers(min_value=1, max_value=512),
        st.integers(min_value=1, max_value=200),
        seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_narrow_int_roundtrip(self, dim, cap, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(-cap, cap + 1, size=dim)
        payload = pack_narrow_ints(values, cap)
        assert np.array_equal(unpack_narrow_ints(payload, dim, cap), values)

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_bits_for_cap_sufficient(self, cap):
        width = bits_for_cap(cap)
        assert 2**width >= 2 * cap + 1
        assert 2 ** (width - 1) < 2 * cap + 1  # minimal

    @given(st.integers(min_value=1, max_value=512), seeds)
    @settings(max_examples=30, deadline=None)
    def test_float_roundtrip(self, dim, seed):
        values = np.random.default_rng(seed).standard_normal(dim) * 100
        recovered = unpack_floats(pack_floats(values), dim)
        assert np.allclose(recovered, values, rtol=1e-5, atol=1e-4)


class TestFrameProperties:
    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=8),
        seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_query_frame_roundtrip(self, dim, rows, seed):
        data = random_bipolar(dim, count=rows, seed=seed)
        frame = decode_frame(encode_frame(MessageKind.QUERY, data))
        assert np.array_equal(frame.data, data)

    @given(
        st.integers(min_value=1, max_value=128),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=50),
        seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_compressed_frame_roundtrip(self, dim, rows, cap, seed):
        rng = np.random.default_rng(seed)
        data = rng.integers(-cap, cap + 1, size=(rows, dim)).astype(float)
        frame = decode_frame(
            encode_frame(MessageKind.COMPRESSED_QUERY, data, aux=cap)
        )
        assert np.array_equal(frame.data, data)

    @given(st.integers(min_value=1, max_value=128), seeds)
    @settings(max_examples=20, deadline=None)
    def test_any_single_byte_corruption_detected(self, dim, seed):
        """Flipping any single payload byte must fail the CRC."""
        from repro.network.protocol import ProtocolError, _HEADER

        blob = encode_frame(
            MessageKind.QUERY, random_bipolar(dim, seed=seed)
        )
        rng = np.random.default_rng(seed)
        idx = int(rng.integers(_HEADER.size, len(blob)))
        corrupted = bytearray(blob)
        corrupted[idx] ^= 0x55
        with pytest.raises(ProtocolError):
            decode_frame(bytes(corrupted))


class TestQuantizationProperties:
    @given(
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=8, max_value=256),
        st.integers(min_value=2, max_value=16),
        seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_error_bounded_by_half_step(self, n_classes, dim, bits, seed):
        rng = np.random.default_rng(seed)
        model = rng.standard_normal((n_classes, dim)) * 50
        quantized = quantize_model(model, n_bits=bits)
        restored = dequantize_model(quantized)
        cap = 2 ** (bits - 1) - 1
        for c in range(n_classes):
            step = np.abs(model[c]).max() / cap
            assert np.max(np.abs(restored[c] - model[c])) <= step / 2 + 1e-9

    @given(st.integers(min_value=2, max_value=16), seeds)
    @settings(max_examples=20, deadline=None)
    def test_codes_within_range(self, bits, seed):
        model = np.random.default_rng(seed).standard_normal((3, 64))
        quantized = quantize_model(model, n_bits=bits)
        cap = 2 ** (bits - 1) - 1
        assert quantized.codes.max() <= cap
        assert quantized.codes.min() >= -cap
