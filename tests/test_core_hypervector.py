"""Unit tests for the hypervector algebra primitives."""

import numpy as np
import pytest

from repro.core.hypervector import (
    bind,
    bundle,
    cosine,
    cosine_many,
    hamming_similarity,
    normalize_rows,
    permute,
    random_bipolar,
    random_gaussian,
    sign_binarize,
    similarity_matrix,
)


class TestRandomHypervectors:
    def test_bipolar_values(self):
        hv = random_bipolar(1000, seed=1)
        assert hv.shape == (1000,)
        assert set(np.unique(hv)) <= {-1, 1}

    def test_bipolar_stack_shape(self):
        stack = random_bipolar(500, count=7, seed=1)
        assert stack.shape == (7, 500)

    def test_bipolar_deterministic(self):
        a = random_bipolar(256, seed=42)
        b = random_bipolar(256, seed=42)
        assert np.array_equal(a, b)

    def test_bipolar_different_seeds_differ(self):
        a = random_bipolar(256, seed=1)
        b = random_bipolar(256, seed=2)
        assert not np.array_equal(a, b)

    def test_bipolar_near_orthogonal(self):
        stack = random_bipolar(10_000, count=5, seed=3)
        sims = similarity_matrix(stack)
        off_diag = sims[~np.eye(5, dtype=bool)]
        assert np.all(np.abs(off_diag) < 0.05)

    def test_gaussian_moments(self):
        hv = random_gaussian(50_000, seed=4)
        assert abs(hv.mean()) < 0.02
        assert abs(hv.std() - 1.0) < 0.02

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            random_bipolar(0)
        with pytest.raises(ValueError):
            random_gaussian(-5)


class TestBind:
    def test_self_inverse(self):
        a = random_bipolar(512, seed=5)
        b = random_bipolar(512, seed=6)
        assert np.array_equal(bind(bind(a, b), b), a)

    def test_commutative(self):
        a = random_bipolar(512, seed=7)
        b = random_bipolar(512, seed=8)
        assert np.array_equal(bind(a, b), bind(b, a))

    def test_bound_is_dissimilar_to_inputs(self):
        a = random_bipolar(10_000, seed=9)
        b = random_bipolar(10_000, seed=10)
        bound = bind(a, b)
        assert abs(cosine(bound, a)) < 0.05
        assert abs(cosine(bound, b)) < 0.05

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            bind(random_bipolar(10, seed=1), random_bipolar(11, seed=1))


class TestBundle:
    def test_bundle_preserves_similarity(self):
        stack = random_bipolar(10_000, count=9, seed=11)
        total = bundle(stack)
        for row in stack:
            assert cosine(total, row) > 0.2

    def test_bundle_single_vector(self):
        hv = random_bipolar(64, seed=12)
        assert np.array_equal(bundle(hv), hv)

    def test_bundle_is_elementwise_sum(self):
        stack = np.array([[1, -1, 1], [1, 1, -1], [-1, 1, 1]], dtype=np.int8)
        assert np.array_equal(bundle(stack), np.array([1, 1, 1]))

    def test_bundle_promotes_integer_dtype(self):
        stack = np.ones((300, 4), dtype=np.int8)
        result = bundle(stack)
        assert result.dtype == np.int64
        assert np.all(result == 300)

    def test_bundle_empty_raises(self):
        with pytest.raises(ValueError):
            bundle(np.empty((0, 16)))

    def test_bundle_3d_raises(self):
        with pytest.raises(ValueError):
            bundle(np.zeros((2, 2, 2)))


class TestPermute:
    def test_roundtrip(self):
        hv = random_bipolar(128, seed=13)
        assert np.array_equal(permute(permute(hv, 5), -5), hv)

    def test_permuted_is_dissimilar(self):
        hv = random_bipolar(10_000, seed=14)
        assert abs(cosine(permute(hv, 1), hv)) < 0.05

    def test_zero_shift_identity(self):
        hv = random_bipolar(64, seed=15)
        assert np.array_equal(permute(hv, 0), hv)


class TestSignBinarize:
    def test_output_bipolar(self):
        out = sign_binarize(np.array([0.5, -2.0, 3.1, -0.1]))
        assert np.array_equal(out, np.array([1, -1, 1, -1]))

    def test_zero_handling_deterministic(self):
        out = sign_binarize(np.zeros(10))
        assert set(np.unique(out)) <= {-1, 1}

    def test_zero_handling_with_rng(self, rng):
        out = sign_binarize(np.zeros(1000), rng=rng)
        # Random tie-breaking should be roughly balanced.
        assert abs(out.mean()) < 0.2

    def test_matrix_input(self):
        out = sign_binarize(np.array([[1.0, -1.0], [-0.5, 2.0]]))
        assert out.shape == (2, 2)
        assert out.dtype == np.int8


class TestCosine:
    def test_identical(self):
        hv = random_bipolar(512, seed=16)
        assert cosine(hv, hv) == pytest.approx(1.0)

    def test_opposite(self):
        hv = random_bipolar(512, seed=17)
        assert cosine(hv, -hv) == pytest.approx(-1.0)

    def test_zero_vector(self):
        assert cosine(np.zeros(16), np.ones(16)) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            cosine(np.ones(4), np.ones(5))

    def test_cosine_many_matches_scalar(self):
        q = random_gaussian(64, count=3, seed=18)
        r = random_gaussian(64, count=4, seed=19)
        sims = cosine_many(q, r)
        assert sims.shape == (3, 4)
        for i in range(3):
            for j in range(4):
                assert sims[i, j] == pytest.approx(cosine(q[i], r[j]))

    def test_cosine_many_zero_rows(self):
        q = np.zeros((2, 8))
        r = np.ones((1, 8))
        assert np.all(cosine_many(q, r) == 0.0)

    def test_similarity_matrix_symmetric(self):
        stack = random_gaussian(128, count=6, seed=20)
        sims = similarity_matrix(stack)
        assert np.allclose(sims, sims.T)
        assert np.allclose(np.diag(sims), 1.0)


class TestHamming:
    def test_identical(self):
        hv = random_bipolar(256, seed=21)
        assert hamming_similarity(hv, hv) == 1.0

    def test_opposite(self):
        hv = random_bipolar(256, seed=22)
        assert hamming_similarity(hv, -hv) == 0.0

    def test_random_pair_half(self):
        a = random_bipolar(20_000, seed=23)
        b = random_bipolar(20_000, seed=24)
        assert abs(hamming_similarity(a, b) - 0.5) < 0.02

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            hamming_similarity(np.array([]), np.array([]))


class TestNormalizeRows:
    def test_unit_norms(self):
        m = random_gaussian(32, count=5, seed=25)
        normalized = normalize_rows(m)
        assert np.allclose(np.linalg.norm(normalized, axis=1), 1.0)

    def test_zero_row_unchanged(self):
        m = np.vstack([np.zeros(8), np.ones(8)])
        normalized = normalize_rows(m)
        assert np.all(normalized[0] == 0.0)

    def test_1d_raises(self):
        with pytest.raises(ValueError):
            normalize_rows(np.ones(8))
