"""End-to-end topology replacement scenarios (ISSUE 10 satellite 1).

The full elastic lifecycle under chaos: a trained hierarchy serves and
learns online; mid-run an end node crashes, the lease monitor detects
it, a replacement respawns from the latest checkpoint and catches up by
replaying the feedback journal. The suite pins the three contracts the
control plane exists for:

* **zero lost requests** — every request of the mid-outage workload
  gets a terminal response (degraded is fine, lost is not);
* **bit-exact recovery** — after catch-up, answers and models are
  bit-identical to a same-seed run that never crashed;
* **determinism** — two same-seed scenario runs produce the same
  scenario fingerprint.

Everything runs on the virtual clock of
:func:`repro.hierarchy.control.run_replacement_scenario`, so these are
deterministic despite exercising detection timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import make_classification
from repro.data.partition import partition_features
from repro.hierarchy import (
    EdgeHDFederation,
    HierarchicalInference,
    OnlineLearner,
    ScenarioSpec,
    TopologyController,
    build_tree,
    run_replacement_scenario,
)

pytestmark = pytest.mark.scenario

N_FEATURES = 16
N_CLASSES = 3
SPEC = ScenarioSpec(
    n_steps=3, crash_step=1, seed=5, lease_timeout_s=0.5,
    heartbeat_period_s=0.25, drop_probability=0.1,
)


@pytest.fixture(scope="module")
def scenario_data():
    x, y = make_classification(
        n_samples=360, n_features=N_FEATURES, n_classes=N_CLASSES,
        seed=23, name="scenario-fixture",
    )
    train_x, train_y = x[:240], y[:240]
    stream_x, stream_y = x[240:320], y[240:320]
    serve_x = x[320:]
    return train_x, train_y, stream_x, stream_y, serve_x


def fresh_controller(scenario_data):
    """A trained controller + inference (same seed every call)."""
    train_x, train_y = scenario_data[0], scenario_data[1]
    config = EdgeHDConfig(
        dimension=512, batch_size=10, retrain_epochs=4, seed=17,
        confidence_threshold=0.3,
    )
    hierarchy = build_tree(4)
    partition = partition_features(N_FEATURES, 4)
    hierarchy.allocate_dimensions(config.dimension, partition.feature_counts())
    federation = EdgeHDFederation(hierarchy, partition, N_CLASSES, config)
    controller = TopologyController(
        federation, train_x, train_y,
        learner=OnlineLearner(federation),
        lease_timeout_s=SPEC.lease_timeout_s,
    )
    controller.fit()
    return controller, HierarchicalInference(federation)


def run(scenario_data, tmp_path, tag, *, inject_crash=True):
    controller, inference = fresh_controller(scenario_data)
    _, _, stream_x, stream_y, serve_x = scenario_data
    result = run_replacement_scenario(
        controller, inference, stream_x, stream_y, serve_x,
        tmp_path / f"{tag}.npz", SPEC, inject_crash=inject_crash,
    )
    return controller, result


class TestReplacementScenario:
    def test_zero_lost_requests_under_chaos(self, scenario_data, tmp_path):
        _, result = run(scenario_data, tmp_path, "chaos")
        assert result.n_lost_outage == 0
        assert result.n_lost_final == 0
        # the crash actually happened and was recovered from
        assert result.detected_at_s is not None
        assert any(e.startswith("fail:") for e in result.events)
        assert any(e.startswith("respawn:") for e in result.events)

    def test_catch_up_replays_journal(self, scenario_data, tmp_path):
        _, result = run(scenario_data, tmp_path, "replay")
        # The victim stays in the query pool, so the crash step produces
        # feedback for it on both sides of the crash — the journal
        # replay path must carry real events, not vacuously pass.
        assert result.n_replayed >= 1

    def test_recovery_bit_identical_to_uninterrupted_run(
        self, scenario_data, tmp_path
    ):
        crashed_ctl, crashed = run(scenario_data, tmp_path, "crashed")
        clean_ctl, clean = run(
            scenario_data, tmp_path, "clean", inject_crash=False
        )
        # post-catch-up serving answers are bit-identical to the run
        # that never crashed...
        assert (
            crashed.final_serve.fingerprint()
            == clean.final_serve.fingerprint()
        )
        # ...because every model ends bit-identical.
        for nid in crashed_ctl.federation.classifiers:
            assert np.array_equal(
                crashed_ctl.federation.classifiers[nid].class_hypervectors,
                clean_ctl.federation.classifiers[nid].class_hypervectors,
            ), f"node {nid} model diverged across the crash"

    def test_same_seed_runs_have_identical_fingerprints(
        self, scenario_data, tmp_path
    ):
        _, first = run(scenario_data, tmp_path, "fp-a")
        _, second = run(scenario_data, tmp_path, "fp-b")
        assert first.fingerprint == second.fingerprint
        assert first.events == second.events
        assert first.n_replayed == second.n_replayed

    def test_crash_run_fingerprint_differs_from_baseline(
        self, scenario_data, tmp_path
    ):
        _, crashed = run(scenario_data, tmp_path, "diff-a")
        _, clean = run(
            scenario_data, tmp_path, "diff-b", inject_crash=False
        )
        assert crashed.fingerprint != clean.fingerprint


@pytest.mark.slow
class TestClusterReplacement:
    def test_worker_respawn_keeps_fleet_whole(self, scenario_data):
        import time

        from repro.network.medium import get_medium
        from repro.serve import ServeConfig, make_workload
        from repro.serve.cluster import ClusterConfig, ClusterRuntime
        from repro.serve.faults import FaultPlan

        controller, inference = fresh_controller(scenario_data)
        serve_x = scenario_data[4]
        # replica 0 dies at t=0 and never comes back by itself; the
        # router must evict it and spawn a replacement.
        plan = FaultPlan.replacement(0, 0.0, 1e9, seed=3)
        assert plan.respawn_times() == {0: 1e9}
        workload = make_workload(serve_x, inference, seed=7)
        cluster = ClusterConfig(
            workers=2, heartbeat_timeout_s=0.6,
            heartbeat_interval_s=0.05, respawn=True,
        )
        with ClusterRuntime(
            inference, get_medium("wired-1gbps"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=1024),
            cluster, fault_plan=plan,
        ) as runtime:
            result = runtime.serve_open_loop(workload, rate_rps=400.0, seed=1)
            assert result.n_total == len(workload)  # zero lost
            assert runtime.n_respawned >= 1
            assert runtime.registry.n_evicted >= 1
            # the replacement inherited the evicted worker's shard under
            # a fresh, never-reused id
            assert runtime._shard_of_replica[2] == 0
            # give the replacement time to come up, then serve again:
            # the router registers it and the fleet is whole again.
            time.sleep(1.0)
            second = runtime.serve_open_loop(workload, rate_rps=400.0, seed=2)
            assert second.n_total == len(workload)
            assert 2 in runtime.registry
            assert runtime.registry.get(2).shard_id == 0
