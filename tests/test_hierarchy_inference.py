"""Unit + integration tests for escalation-based hierarchical inference."""

import numpy as np
import pytest

from repro.hierarchy.inference import HierarchicalInference
from repro.network.message import MessageKind


@pytest.fixture()
def inference(trained_federation):
    fed, _, data = trained_federation
    return HierarchicalInference(fed), fed, data


class TestRun:
    def test_outcome_shapes(self, inference):
        inf, fed, data = inference
        outcome = inf.run(data.test_x)
        n = data.n_test
        assert outcome.labels.shape == (n,)
        assert outcome.deciding_node.shape == (n,)
        assert outcome.deciding_level.shape == (n,)
        assert outcome.confidence.shape == (n,)

    def test_deciding_nodes_exist(self, inference):
        inf, fed, data = inference
        outcome = inf.run(data.test_x)
        assert set(outcome.deciding_node.tolist()) <= set(fed.hierarchy.nodes)

    def test_confident_answers_stay_local(self, inference):
        """Queries answered below the root must clear the threshold."""
        inf, fed, data = inference
        outcome = inf.run(data.test_x)
        below_root = outcome.deciding_level < fed.hierarchy.depth
        assert np.all(
            outcome.confidence[below_root] >= inf.confidence_threshold
        )

    def test_threshold_zero_all_local(self, inference):
        inf, fed, data = inference
        local = HierarchicalInference(fed, confidence_threshold=0.0)
        outcome = local.run(data.test_x)
        assert np.all(outcome.deciding_level == 1)
        assert outcome.total_bytes == 0
        assert outcome.messages == []

    def test_threshold_one_all_central(self, inference):
        inf, fed, data = inference
        central = HierarchicalInference(fed, confidence_threshold=1.0)
        outcome = central.run(data.test_x)
        assert np.all(outcome.deciding_level == fed.hierarchy.depth)

    def test_max_level_caps_escalation(self, inference):
        inf, fed, data = inference
        capped = HierarchicalInference(fed, confidence_threshold=1.0)
        outcome = capped.run(data.test_x, max_level=2)
        assert outcome.deciding_level.max() <= 2

    def test_higher_threshold_more_escalation(self, inference):
        inf, fed, data = inference
        low = HierarchicalInference(fed, confidence_threshold=0.4).run(data.test_x)
        high = HierarchicalInference(fed, confidence_threshold=0.95).run(data.test_x)
        assert high.deciding_level.mean() >= low.deciding_level.mean()
        assert high.total_bytes >= low.total_bytes

    def test_start_leaves_respected(self, inference):
        inf, fed, data = inference
        leaf = fed.hierarchy.leaves()[1]
        starts = np.full(data.n_test, leaf)
        outcome = inf.run(data.test_x, start_leaves=starts)
        # Every decision lies on that leaf's path to the root.
        path = set(fed.hierarchy.path_to_root(leaf))
        assert set(outcome.deciding_node.tolist()) <= path

    def test_start_leaves_validation(self, inference):
        inf, fed, data = inference
        with pytest.raises(ValueError):
            inf.run(data.test_x, start_leaves=np.array([1]))
        bad = np.full(data.n_test, fed.root_id)
        with pytest.raises(ValueError):
            inf.run(data.test_x, start_leaves=bad)

    def test_deterministic_given_seed(self, inference):
        inf, fed, data = inference
        a = inf.run(data.test_x, seed=5)
        b = inf.run(data.test_x, seed=5)
        assert np.array_equal(a.labels, b.labels)
        assert np.array_equal(a.deciding_node, b.deciding_node)


class TestCommunication:
    def test_escalation_messages_compressed(self, inference):
        inf, fed, data = inference
        outcome = HierarchicalInference(fed, confidence_threshold=1.0).run(
            data.test_x
        )
        kinds = {m.kind for m in outcome.messages}
        assert MessageKind.COMPRESSED_QUERY in kinds
        assert MessageKind.PREDICTION in kinds

    def test_compression_reduces_bytes(self, inference):
        inf, fed, data = inference
        uncompressed = HierarchicalInference(
            fed, confidence_threshold=1.0, compression_count=1
        ).run(data.test_x)
        compressed = HierarchicalInference(
            fed, confidence_threshold=1.0, compression_count=25
        ).run(data.test_x)
        assert compressed.total_bytes < uncompressed.total_bytes

    def test_level_frequency_sums_to_one(self, inference):
        inf, fed, data = inference
        outcome = inf.run(data.test_x)
        freq = outcome.level_frequency(fed.hierarchy.depth)
        assert sum(freq.values()) == pytest.approx(1.0)


class TestEvaluate:
    def test_accuracy_above_local(self, inference):
        """Escalation should not hurt accuracy vs pure-local inference."""
        inf, fed, data = inference
        local_acc, _ = HierarchicalInference(
            fed, confidence_threshold=0.0
        ).evaluate(data.test_x, data.test_y)
        esc_acc, _ = HierarchicalInference(
            fed, confidence_threshold=0.9
        ).evaluate(data.test_x, data.test_y)
        assert esc_acc >= local_acc - 0.05

    def test_accuracy_bounds(self, inference):
        inf, fed, data = inference
        acc, outcome = inf.evaluate(data.test_x, data.test_y)
        assert 0.0 <= acc <= 1.0
        assert acc == outcome.accuracy(data.test_y)

    def test_label_shape_mismatch(self, inference):
        inf, fed, data = inference
        outcome = inf.run(data.test_x)
        with pytest.raises(ValueError):
            outcome.accuracy(data.test_y[:-1])


class TestValidation:
    def test_invalid_threshold(self, trained_federation):
        fed, _, _ = trained_federation
        with pytest.raises(ValueError):
            HierarchicalInference(fed, confidence_threshold=1.5)

    def test_invalid_compression(self, trained_federation):
        fed, _, _ = trained_federation
        with pytest.raises(ValueError):
            HierarchicalInference(fed, compression_count=0)

    def test_invalid_max_level(self, inference):
        inf, fed, data = inference
        with pytest.raises(ValueError):
            inf.run(data.test_x, max_level=0)

    def test_empty_outcome_frequency_raises(self, inference):
        inf, fed, data = inference
        outcome = inf.run(data.test_x[:1])
        outcome.labels = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            outcome.level_frequency(3)
