"""Tests for the repro.obs observability subsystem."""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.obs as obs
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import SpanRecord, TraceBuffer


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts disabled with empty registry/trace."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestCounter:
    def test_monotonic_accumulation(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        c.inc(0)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        c = Counter("x")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_float_amounts(self):
        c = Counter("x")
        c.inc(0.5)
        c.inc(0.25)
        assert c.value == pytest.approx(0.75)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge("g")
        g.set(10)
        g.add(-3)
        assert g.value == 7


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 3.0, 100.0):
            h.observe(v)
        # bounds are inclusive upper edges; 100 overflows.
        assert h.counts == [2, 1, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(106.0)
        assert h.vmin == 0.5 and h.vmax == 100.0
        assert h.mean == pytest.approx(106.0 / 5)

    def test_quantile_approximation(self):
        h = Histogram("h", bounds=tuple(float(b) for b in range(1, 11)))
        for v in range(1, 11):
            h.observe(v - 0.5)
        assert h.quantile(0.5) == pytest.approx(5.0)
        # quantiles resolve to bucket upper edges (10.0 covers the max).
        assert h.quantile(1.0) == pytest.approx(10.0)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=())
        with pytest.raises(ValueError):
            Histogram("h", bounds=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_snapshot_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h", bounds=(1.0, 2.0)).observe(1.7)
        restored = MetricsRegistry()
        restored.load_snapshot(json.loads(json.dumps(reg.snapshot())))
        assert restored.snapshot() == reg.snapshot()

    def test_render_table_lists_everything(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc()
        reg.histogram("lat", bounds=(1.0,)).observe(0.5)
        table = reg.render_table()
        assert "hits" in table and "lat" in table and "p95" in table

    def test_empty_table(self):
        assert "no metrics" in MetricsRegistry().render_table()


class TestEnableDisable:
    def test_disabled_helpers_record_nothing(self):
        obs.incr("c")
        obs.gauge_set("g", 1)
        obs.observe("h", 0.5)
        with obs.span("s"):
            pass
        assert len(obs.get_registry()) == 0
        assert len(obs.get_trace()) == 0

    def test_disabled_span_is_shared_noop(self):
        a, b = obs.span("x"), obs.span("y", n=2)
        assert a is b  # allocation-free fast path

    def test_enable_records(self):
        obs.enable()
        obs.incr("c", 2)
        obs.incr("c")
        assert obs.get_registry().counter("c").value == 3

    def test_disable_freezes_but_keeps_data(self):
        obs.enable()
        obs.incr("c")
        obs.disable()
        obs.incr("c")
        assert obs.get_registry().counter("c").value == 1


class TestSpans:
    def test_nesting_depth_and_parent(self):
        obs.enable()
        with obs.span("outer"):
            with obs.span("inner", step=1):
                pass
        records = list(obs.get_trace())
        assert [r.name for r in records] == ["inner", "outer"]  # close order
        inner, outer = records
        assert inner.depth == 1 and inner.parent == "outer"
        assert outer.depth == 0 and outer.parent is None
        assert inner.attrs == {"step": 1}
        assert 0 <= inner.duration_ns <= outer.duration_ns

    def test_span_feeds_registry_histogram(self):
        obs.enable()
        with obs.span("work"):
            pass
        hist = obs.get_registry().get("span.work.ms")
        assert hist is not None and hist.count == 1

    def test_set_attaches_attributes(self):
        obs.enable()
        with obs.span("work") as sp:
            sp.set(found=7)
        assert list(obs.get_trace())[0].attrs == {"found": 7}

    def test_traced_decorator(self):
        obs.enable()

        @obs.traced()
        def compute():
            return 42

        assert compute() == 42
        assert [r.name for r in obs.get_trace()] == ["compute"]

    def test_traced_noop_when_disabled(self):
        @obs.traced("quiet")
        def compute():
            return 1

        assert compute() == 1
        assert len(obs.get_trace()) == 0

    def test_buffer_bound_drops_oldest(self):
        buf = TraceBuffer(max_spans=2)
        for i in range(3):
            buf.add(SpanRecord(name=f"s{i}", start_ns=i, duration_ns=1, depth=0))
        assert [r.name for r in buf] == ["s1", "s2"]
        assert buf.dropped == 1


class TestJsonl:
    def test_trace_round_trip(self, tmp_path):
        obs.enable()
        with obs.span("a", n=3):
            with obs.span("b"):
                pass
        path = tmp_path / "trace.jsonl"
        assert obs.export_trace(path) == 2
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert all(isinstance(json.loads(l), dict) for l in lines)
        restored = TraceBuffer.load_jsonl(path)
        assert [r.to_dict() for r in restored] == [
            r.to_dict() for r in obs.get_trace()
        ]

    def test_stats_dump_load(self, tmp_path):
        obs.enable()
        obs.incr("c", 4)
        obs.observe("h", 1.25, bounds=(1.0, 2.0))
        path = tmp_path / "stats.json"
        obs.dump_stats(path)
        restored = obs.load_stats(path)
        assert restored.snapshot() == obs.snapshot()


class TestInstrumentedPaths:
    def test_encode_and_predict_record(self, small_split):
        from repro.core.model import EdgeHDModel

        obs.enable()
        train_x, train_y, test_x, test_y = small_split
        model = EdgeHDModel(train_x.shape[1], 3, dimension=128, seed=0)
        model.fit(train_x, train_y, retrain_epochs=2)
        model.accuracy(test_x, test_y)
        reg = obs.get_registry()
        assert reg.counter("core.encode.calls").value >= 2
        assert reg.counter("core.encode.samples").value >= len(train_x)
        assert reg.counter("core.similarity.calls").value >= 1
        assert reg.get("span.encode.ms").count >= 2
        assert reg.get("span.retrain.ms").count >= 1

    def test_hierarchy_and_network_record(self, trained_federation):
        from repro.hierarchy import HierarchicalInference
        from repro.network.medium import get_medium
        from repro.network.simulator import NetworkSimulator

        obs.enable()
        fed, report, data = trained_federation
        outcome = HierarchicalInference(fed).run(data.test_x)
        result = NetworkSimulator(
            fed.hierarchy, get_medium("wifi-802.11ac")
        ).simulate_independent(outcome.messages)
        reg = obs.get_registry()
        assert reg.counter("hierarchy.inference.queries").value == len(
            data.test_x
        )
        assert reg.get("hierarchy.confidence").count == len(data.test_x)
        assert reg.counter("network.delivered").value == result.delivered > 0
        total_gauge_bytes = sum(
            reg.get(name).value
            for name in reg.names()
            if name.startswith("network.bytes.")
        )
        assert total_gauge_bytes == result.total_bytes


class TestEnvVar:
    def test_repro_obs_env_enables(self):
        import subprocess
        import sys

        code = (
            "import repro.obs as obs; "
            "raise SystemExit(0 if obs.enabled() else 1)"
        )
        for env_value, expected in (("1", 0), ("true", 0), ("0", 1), ("", 1)):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                env={"REPRO_OBS": env_value, "PYTHONPATH": "src"},
            )
            assert proc.returncode == expected, f"REPRO_OBS={env_value!r}"


class TestLevelFrequencyValidation:
    def _outcome(self, levels):
        from repro.hierarchy.inference import InferenceOutcome

        n = len(levels)
        return InferenceOutcome(
            labels=np.zeros(n, dtype=np.int64),
            deciding_node=np.zeros(n, dtype=np.int64),
            deciding_level=np.asarray(levels, dtype=np.int64),
            confidence=np.ones(n),
        )

    def test_matching_depth_ok(self):
        freq = self._outcome([1, 2, 2, 3]).level_frequency(3)
        assert freq == {1: 0.25, 2: 0.5, 3: 0.25}
        assert sum(freq.values()) == pytest.approx(1.0)

    def test_depth_too_shallow_raises(self):
        with pytest.raises(ValueError, match="outside"):
            self._outcome([1, 2, 3]).level_frequency(2)

    def test_invalid_depth_raises(self):
        with pytest.raises(ValueError, match="depth"):
            self._outcome([1]).level_frequency(0)
