"""Unit tests for the FPGA design model (Sec. V)."""

import pytest

from repro.hardware.fpga import KC705, FPGADesign, FPGAResources


@pytest.fixture()
def central():
    """Centralized design: full feature width, D=4000."""
    return FPGADesign(n_features=312, dimension=4000, n_classes=3,
                      sparsity=0.8, n_dsp=840)


@pytest.fixture()
def node():
    """Per-node design: a PECAN-style small node."""
    return FPGADesign(n_features=25, dimension=320, n_classes=3,
                      sparsity=0.8, n_dsp=16)


class TestResources:
    def test_kc705_budget(self):
        assert KC705.n_dsp == 840
        assert KC705.bram_kbits > 16_000

    def test_central_design_fits_kc705(self, central):
        assert central.fits()

    def test_node_design_fits(self, node):
        assert node.fits()

    def test_oversized_design_rejected(self):
        tiny = FPGAResources("tiny", n_dsp=4, bram_kbits=100, luts=1000)
        design = FPGADesign(1000, 8000, 10, n_dsp=840, part=tiny)
        assert not design.fits()

    def test_weight_storage_grows_with_density(self):
        sparse = FPGADesign(100, 1000, 2, sparsity=0.9)
        dense = FPGADesign(100, 1000, 2, sparsity=0.1)
        assert sparse.weight_storage_kbits() < dense.weight_storage_kbits()

    def test_invalid_resources(self):
        with pytest.raises(ValueError):
            FPGAResources("bad", 0, 100, 100)


class TestCycles:
    def test_encoding_scales_with_samples(self, node):
        assert node.encoding_cycles(10) == pytest.approx(
            10 * node.encoding_cycles(1), rel=0.01
        )

    def test_sparsity_cuts_encoding_cycles(self):
        dense = FPGADesign(100, 1000, 2, sparsity=0.0, n_dsp=64)
        sparse = FPGADesign(100, 1000, 2, sparsity=0.8, n_dsp=64)
        assert sparse.encoding_cycles(1) < dense.encoding_cycles(1)

    def test_more_dsps_fewer_cycles(self):
        few = FPGADesign(100, 1000, 2, n_dsp=8)
        many = FPGADesign(100, 1000, 2, n_dsp=512)
        assert many.encoding_cycles(1) < few.encoding_cycles(1)

    def test_search_scales_with_classes(self):
        k2 = FPGADesign(10, 1000, 2, n_dsp=64)
        k10 = FPGADesign(10, 1000, 10, n_dsp=64)
        assert k10.search_cycles(1) > k2.search_cycles(1)

    def test_unified_update_independent_of_feedback_count(self, node):
        """Fig. 6C/E: applying residuals costs K*D regardless of how
        many feedback events were accumulated."""
        assert node.model_update_cycles(1) == node.model_update_cycles(1)

    def test_training_includes_all_stages(self, node):
        total = node.training_cycles(100, epochs=5)
        assert total > node.encoding_cycles(100)
        assert total > 5 * node.search_cycles(100)

    def test_inference_cycles(self, node):
        assert node.inference_cycles(10) == (
            node.encoding_cycles(10) + node.search_cycles(10)
        )

    def test_negative_inputs(self, node):
        with pytest.raises(ValueError):
            node.encoding_cycles(-1)
        with pytest.raises(ValueError):
            node.search_cycles(-1)
        with pytest.raises(ValueError):
            node.training_cycles(10, epochs=-1)


class TestPowerEnergy:
    def test_node_power_near_paper(self, node):
        """Per-node instance lands in the 0.28 W class (Sec. VI-D)."""
        assert 0.1 < node.power_w() < 0.6

    def test_central_power_near_paper(self, central):
        """Centralized instance lands in the 9.8 W class."""
        assert 8.0 < central.power_w() < 12.0

    def test_energy_consistent(self, node):
        cycles = node.inference_cycles(100)
        assert node.energy_j(cycles) == pytest.approx(
            node.seconds(cycles) * node.power_w()
        )

    def test_seconds_negative(self, node):
        with pytest.raises(ValueError):
            node.seconds(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            FPGADesign(0, 100, 2)
        with pytest.raises(ValueError):
            FPGADesign(10, 100, 2, sparsity=1.0)
        with pytest.raises(ValueError):
            FPGADesign(10, 100, 2, n_dsp=0)
        with pytest.raises(ValueError):
            FPGADesign(10, 100, 2, clock_hz=0)
