"""Unit tests for the serving building blocks.

Covers the bounded queue policies, the micro-batcher's two-condition
flush window (including the item-preservation guarantee across window
timeouts), workloads and arrival processes, and the result/response
containers — everything below the full runtime, which
``test_serve_runtime.py`` exercises end to end.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.serve import (
    BoundedQueue,
    MicroBatcher,
    ServeConfig,
    ServeResponse,
    ServeResult,
    ShedError,
    StageTimings,
    make_workload,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.serve.workload import ServeWorkload


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# BoundedQueue
# ----------------------------------------------------------------------
class TestBoundedQueue:
    def test_validation(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)
        with pytest.raises(ValueError):
            BoundedQueue(4, policy="drop-tail")

    def test_shed_policy_raises_when_full(self):
        async def scenario():
            q = BoundedQueue(2, policy="shed")
            await q.put("a")
            await q.put("b")
            with pytest.raises(ShedError):
                await q.put("c")
            return q

        q = run(scenario())
        assert q.stats.enqueued == 2
        assert q.stats.shed == 1
        assert q.stats.high_water == 2
        assert len(q) == 2

    def test_block_policy_waits_for_space(self):
        async def scenario():
            q = BoundedQueue(1, policy="block")
            await q.put("a")

            async def producer():
                await q.put("b")
                return "done"

            task = asyncio.ensure_future(producer())
            await asyncio.sleep(0.01)
            assert not task.done()  # blocked on the full queue
            assert await q.get() == "a"
            assert await task == "done"
            assert await q.get() == "b"
            return q

        q = run(scenario())
        assert q.stats.shed == 0
        assert q.stats.enqueued == 2

    def test_offer_counts_shed_without_raising(self):
        async def scenario():
            q = BoundedQueue(1, policy="block")
            assert q.offer("a") is True
            assert q.offer("b") is False
            return q

        q = run(scenario())
        assert q.stats.shed == 1
        assert q.stats.high_water == 1


# ----------------------------------------------------------------------
# MicroBatcher
# ----------------------------------------------------------------------
class TestMicroBatcher:
    def test_validation(self):
        async def scenario():
            q = BoundedQueue(4)
            with pytest.raises(ValueError):
                MicroBatcher(q, max_batch=0, max_wait_ms=1.0)
            with pytest.raises(ValueError):
                MicroBatcher(q, max_batch=1, max_wait_ms=-1.0)

        run(scenario())

    def test_flush_on_max_batch(self):
        async def scenario():
            q = BoundedQueue(16)
            b = MicroBatcher(q, max_batch=3, max_wait_ms=1e3)
            for i in range(5):
                await q.put(i)
            first = await b.next_batch()
            second = await b.next_batch()
            return first, second, b

        first, second, b = run(scenario())
        # Full flush at max_batch, remainder after the (short) window.
        assert first == [0, 1, 2]
        assert second == [3, 4]
        assert b.n_batches == 2
        assert b.n_items == 5
        assert b.mean_batch_size == pytest.approx(2.5)

    def test_flush_on_deadline(self):
        async def scenario():
            q = BoundedQueue(16)
            b = MicroBatcher(q, max_batch=64, max_wait_ms=10.0)
            await q.put("only")
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            batch = await b.next_batch()
            elapsed = loop.time() - t0
            return batch, elapsed

        batch, elapsed = run(scenario())
        assert batch == ["only"]
        # The lone item waited for company for ~max_wait_ms, bounded.
        assert elapsed < 0.5

    def test_no_item_lost_across_window_timeouts(self):
        """An item arriving just after a window closes is delivered in
        the next batch — the persistent-getter design cannot drop it."""

        async def scenario():
            q = BoundedQueue(16)
            b = MicroBatcher(q, max_batch=8, max_wait_ms=5.0)
            received = []

            async def consumer():
                while len(received) < 10:
                    received.extend(await b.next_batch())

            async def producer():
                for i in range(10):
                    await q.put(i)
                    # Straddle flush windows with awkward gaps.
                    await asyncio.sleep(0.004 if i % 2 else 0.007)

            await asyncio.wait_for(
                asyncio.gather(consumer(), producer()), timeout=10.0
            )
            return received, b

        received, b = run(scenario())
        assert received == list(range(10))
        assert b.n_items == 10

    def test_close_cancels_pending_getter(self):
        async def scenario():
            q = BoundedQueue(4)
            b = MicroBatcher(q, max_batch=4, max_wait_ms=1.0)
            await q.put("x")
            await b.next_batch()  # leaves a pending getter behind
            b.close()
            assert b._getter is None

        run(scenario())


# ----------------------------------------------------------------------
# Workload + arrivals
# ----------------------------------------------------------------------
class TestWorkload:
    def test_make_workload_matches_offline_seed_derivation(
        self, trained_federation
    ):
        from repro.hierarchy import HierarchicalInference

        federation, _, data = trained_federation
        inference = HierarchicalInference(federation)
        wl = make_workload(data.test_x, inference, seed=9, labels=data.test_y)
        offline = inference.run(data.test_x, seed=9)
        assert np.array_equal(wl.start_leaves, offline.start_leaf)
        assert len(wl) == data.test_x.shape[0]
        assert 0.0 <= wl.accuracy(data.test_y) <= 1.0

    def test_explicit_start_leaves_validated(self, trained_federation):
        from repro.hierarchy import HierarchicalInference

        federation, _, data = trained_federation
        inference = HierarchicalInference(federation)
        root = federation.hierarchy.root_id
        with pytest.raises(ValueError, match="non-leaf"):
            make_workload(
                data.test_x,
                inference,
                start_leaves=np.full(data.test_x.shape[0], root),
            )

    def test_workload_shape_validation(self):
        feats = np.random.default_rng(0).normal(size=(5, 3))
        with pytest.raises(ValueError):
            ServeWorkload(features=feats, start_leaves=np.zeros(4, dtype=int))
        with pytest.raises(ValueError):
            ServeWorkload(
                features=feats,
                start_leaves=np.zeros(5, dtype=int),
                labels=np.zeros(3, dtype=int),
            )
        wl = ServeWorkload(features=feats, start_leaves=np.zeros(5, dtype=int))
        with pytest.raises(ValueError, match="no ground-truth"):
            wl.accuracy(np.zeros(5))

    def test_poisson_arrivals_reproducible_and_rate_correct(self):
        a1 = poisson_arrivals(4000, rate_rps=100.0, seed=7)
        a2 = poisson_arrivals(4000, rate_rps=100.0, seed=7)
        a3 = poisson_arrivals(4000, rate_rps=100.0, seed=8)
        assert np.array_equal(a1, a2)
        assert not np.array_equal(a1, a3)
        assert np.all(np.diff(a1) >= 0)
        # Mean interarrival ~ 1/rate (law of large numbers, loose).
        assert a1[-1] / 4000 == pytest.approx(0.01, rel=0.1)

    def test_uniform_arrivals(self):
        a = uniform_arrivals(4, rate_rps=10.0)
        assert np.allclose(a, [0.1, 0.2, 0.3, 0.4])
        with pytest.raises(ValueError):
            uniform_arrivals(-1, rate_rps=10.0)
        with pytest.raises(ValueError):
            poisson_arrivals(4, rate_rps=0.0)


# ----------------------------------------------------------------------
# ServeConfig + result containers
# ----------------------------------------------------------------------
class TestConfigAndResult:
    def test_config_validation(self):
        for bad in (
            dict(max_batch=0),
            dict(max_wait_ms=-1.0),
            dict(queue_depth=0),
            dict(policy="nope"),
            dict(service_time_base_s=-1.0),
        ):
            with pytest.raises(ValueError):
                ServeConfig(**bad)

    def _response(self, index, total_ms, shed=False, node=0):
        t = StageTimings(total_ms=total_ms, queue_wait_ms=total_ms / 2)
        return ServeResponse(
            index=index,
            start_leaf=0,
            label=-1 if node < 0 else 1,
            confidence=0.9,
            deciding_node=node,
            deciding_level=1 if node >= 0 else -1,
            shed=shed,
            timings=t,
        )

    def test_result_percentiles_and_counts(self):
        responses = [self._response(i, float(i + 1)) for i in range(100)]
        responses.append(self._response(100, 0.0, shed=True, node=-1))
        result = ServeResult(
            responses=responses,
            makespan_s=2.0,
            energy_j=0.5,
            wire_bytes=1000,
            escalations={(0, 3): 10},
            n_shed_admission=1,
            n_shed_escalation=0,
            queue_high_water={0: 4},
        )
        assert result.n_total == 101
        assert result.n_answered == 100  # rejected response excluded
        assert result.n_shed == 1
        assert result.throughput_rps == pytest.approx(50.0)
        pct = result.percentiles()
        assert pct["p50"] == pytest.approx(50.5)
        assert pct["p99"] == pytest.approx(99.01)
        breakdown = result.stage_breakdown()
        assert set(breakdown) == {
            "queue_wait_ms",
            "encode_ms",
            "search_ms",
            "escalation_rtt_ms",
            "total_ms",
        }
        assert breakdown["queue_wait_ms"]["p50"] == pytest.approx(25.25)
        assert "p99" in result.summary()

    def test_result_empty_percentiles(self):
        result = ServeResult(
            responses=[],
            makespan_s=0.0,
            energy_j=0.0,
            wire_bytes=0,
            escalations={},
            n_shed_admission=0,
            n_shed_escalation=0,
            queue_high_water={},
        )
        assert result.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert result.throughput_rps == 0.0

    def test_to_outcome_refuses_shed_runs(self):
        result = ServeResult(
            responses=[self._response(0, 1.0, shed=True, node=-1)],
            makespan_s=1.0,
            energy_j=0.0,
            wire_bytes=0,
            escalations={},
            n_shed_admission=1,
            n_shed_escalation=0,
            queue_high_water={},
        )
        with pytest.raises(ValueError, match="shed"):
            result.to_outcome()

    def test_stage_timings_to_dict(self):
        t = StageTimings(queue_wait_ms=1.0, encode_ms=2.0, total_ms=3.0)
        d = t.to_dict()
        assert d["queue_wait_ms"] == 1.0
        assert d["encode_ms"] == 2.0
        assert d["total_ms"] == 3.0
