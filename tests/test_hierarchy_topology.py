"""Unit tests for hierarchy topologies and dimension allocation."""

import pytest

from repro.hierarchy.topology import (
    Hierarchy,
    build_deep_tree,
    build_pecan,
    build_star,
    build_tree,
)


class TestStar:
    def test_structure(self):
        h = build_star(5)
        assert h.depth == 2
        assert len(h.leaves()) == 5
        root = h.nodes[h.root_id]
        assert len(root.children) == 5
        assert all(h.nodes[c].is_leaf for c in root.children)

    def test_single_node_star(self):
        h = build_star(1)
        assert h.depth == 2
        assert len(h.leaves()) == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            build_star(0)


class TestTree:
    def test_three_levels(self):
        h = build_tree(4)
        assert h.depth == 3
        assert len(h.leaves()) == 4
        gateways = [n for n in h.internal_nodes() if n != h.root_id]
        assert len(gateways) == 2

    def test_leftover_leaf_attaches_to_root(self):
        """APRI-style: 5 end nodes -> two gateways of two + one direct."""
        h = build_tree(5)
        root = h.nodes[h.root_id]
        direct_leaves = [c for c in root.children if h.nodes[c].is_leaf]
        assert len(direct_leaves) == 1
        gateways = [c for c in root.children if not h.nodes[c].is_leaf]
        assert len(gateways) == 2
        for g in gateways:
            assert len(h.nodes[g].children) == 2

    def test_custom_fanout(self):
        h = build_tree(9, fanout=3)
        gateways = [n for n in h.internal_nodes() if n != h.root_id]
        assert len(gateways) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            build_tree(0)
        with pytest.raises(ValueError):
            build_tree(4, fanout=1)


class TestDeepTree:
    @pytest.mark.parametrize("depth", [3, 4, 5, 6, 7])
    def test_requested_depth(self, depth):
        h = build_deep_tree(8, depth=depth)
        assert h.depth == depth
        assert len(h.leaves()) == 8

    def test_all_leaves_at_level_one(self):
        h = build_deep_tree(6, depth=5)
        for leaf in h.leaves():
            assert h.nodes[leaf].level == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            build_deep_tree(4, depth=1)
        with pytest.raises(ValueError):
            build_deep_tree(0, depth=3)


class TestPecan:
    def test_four_levels(self):
        h = build_pecan(n_appliances=36, appliances_per_house=6, houses_per_street=3)
        assert h.depth == 4
        assert len(h.leaves()) == 36
        houses = h.nodes_at_level(2)
        streets = h.nodes_at_level(3)
        assert len(houses) == 6
        assert len(streets) == 2

    def test_default_scale(self):
        h = build_pecan()
        assert len(h.leaves()) == 312
        assert h.depth == 4
        assert len(h.nodes_at_level(2)) == 52  # houses

    def test_invalid(self):
        with pytest.raises(ValueError):
            build_pecan(n_appliances=0)
        with pytest.raises(ValueError):
            build_pecan(appliances_per_house=0)


class TestTraversal:
    @pytest.fixture()
    def tree(self):
        return build_tree(4)

    def test_postorder_children_first(self, tree):
        order = list(tree.postorder())
        position = {nid: i for i, nid in enumerate(order)}
        for node in tree.nodes.values():
            for child in node.children:
                assert position[child] < position[node.node_id]
        assert order[-1] == tree.root_id

    def test_preorder_parent_first(self, tree):
        order = list(tree.preorder())
        position = {nid: i for i, nid in enumerate(order)}
        for node in tree.nodes.values():
            for child in node.children:
                assert position[child] > position[node.node_id]
        assert order[0] == tree.root_id

    def test_subtree_leaves(self, tree):
        assert sorted(tree.subtree_leaves(tree.root_id)) == sorted(tree.leaves())
        leaf = tree.leaves()[0]
        assert tree.subtree_leaves(leaf) == [leaf]

    def test_path_to_root(self, tree):
        leaf = tree.leaves()[0]
        path = tree.path_to_root(leaf)
        assert path[0] == leaf
        assert path[-1] == tree.root_id
        assert len(path) == 3

    def test_path_unknown_node(self, tree):
        with pytest.raises(KeyError):
            tree.path_to_root(999)

    def test_leaves_ordered_by_index(self, tree):
        leaves = tree.leaves()
        indices = [tree.nodes[l].leaf_index for l in leaves]
        assert indices == sorted(indices)


class TestDimensionAllocation:
    def test_proportional(self):
        h = build_star(2)
        h.allocate_dimensions(1000, [30, 10])
        leaves = h.leaves()
        d0 = h.nodes[leaves[0]].dimension
        d1 = h.nodes[leaves[1]].dimension
        assert d0 == 750 and d1 == 250
        assert h.nodes[h.root_id].dimension == 1000

    def test_internal_is_sum_of_children(self):
        h = build_tree(4)
        h.allocate_dimensions(4000, [10, 10, 10, 10])
        for nid in h.internal_nodes():
            node = h.nodes[nid]
            assert node.dimension == sum(
                h.nodes[c].dimension for c in node.children
            )

    def test_minimum_dimension(self):
        h = build_star(2)
        h.allocate_dimensions(100, [1, 99])
        assert h.nodes[h.leaves()[0]].dimension >= 8

    def test_count_mismatch(self):
        h = build_star(3)
        with pytest.raises(ValueError):
            h.allocate_dimensions(100, [10, 10])

    def test_invalid_total(self):
        h = build_star(2)
        with pytest.raises(ValueError):
            h.allocate_dimensions(0, [5, 5])


class TestManualConstruction:
    def test_two_roots_rejected(self):
        h = Hierarchy()
        h.add_node()
        with pytest.raises(ValueError):
            h.add_node()

    def test_unknown_parent(self):
        h = Hierarchy()
        with pytest.raises(KeyError):
            h.add_node(parent=5)

    def test_finalize_without_root(self):
        with pytest.raises(ValueError):
            Hierarchy().finalize()

    def test_leaf_without_index_rejected(self):
        h = Hierarchy()
        root = h.add_node()
        h.add_node(parent=root)  # leaf with no leaf_index
        with pytest.raises(ValueError):
            h.finalize()

    def test_gapped_leaf_indices_rejected(self):
        h = Hierarchy()
        root = h.add_node()
        h.add_node(parent=root, leaf_index=0)
        h.add_node(parent=root, leaf_index=2)
        with pytest.raises(ValueError):
            h.finalize()

    def test_len(self):
        h = build_tree(4)
        assert len(h) == 7  # 4 leaves + 2 gateways + root
