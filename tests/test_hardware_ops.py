"""Unit tests for workload op counting."""

import pytest

from repro.hardware.ops import (
    OpCounts,
    compression_ops,
    dnn_inference_ops,
    dnn_training_ops,
    encoding_ops,
    hd_inference_ops,
    hd_initial_training_ops,
    hd_retrain_ops,
    projection_ops,
)


class TestOpCounts:
    def test_add(self):
        a = OpCounts(macs=1, adds=2, nonlinear=3, memory_bytes=4)
        b = OpCounts(macs=10, adds=20, nonlinear=30, memory_bytes=40)
        c = a + b
        assert (c.macs, c.adds, c.nonlinear, c.memory_bytes) == (11, 22, 33, 44)

    def test_scale(self):
        a = OpCounts(macs=2, adds=4).scale(2.5)
        assert a.macs == 5 and a.adds == 10

    def test_scale_negative(self):
        with pytest.raises(ValueError):
            OpCounts(macs=1).scale(-1)

    def test_total_ops(self):
        assert OpCounts(macs=1, adds=2, nonlinear=3).total_ops == 6


class TestEncodingOps:
    def test_dense(self):
        ops = encoding_ops(10, 20, 100)
        assert ops.macs == 10 * 20 * 100
        assert ops.nonlinear == 10 * 100

    def test_sparsity_reduces_macs(self):
        dense = encoding_ops(10, 100, 1000, sparsity=0.0)
        sparse = encoding_ops(10, 100, 1000, sparsity=0.8)
        assert sparse.macs == pytest.approx(dense.macs * 0.2)

    def test_invalid_sparsity(self):
        with pytest.raises(ValueError):
            encoding_ops(1, 1, 1, sparsity=1.5)

    def test_negative_inputs(self):
        with pytest.raises(ValueError):
            encoding_ops(-1, 10, 10)


class TestHDOps:
    def test_initial_training_adds_only(self):
        ops = hd_initial_training_ops(100, 4000)
        assert ops.macs == 0
        assert ops.adds == 400_000

    def test_retrain_scales_with_epochs(self):
        one = hd_retrain_ops(100, 1000, 5, epochs=1)
        ten = hd_retrain_ops(100, 1000, 5, epochs=10)
        assert ten.adds == pytest.approx(10 * one.adds)

    def test_inference_no_multiplies(self):
        """Sec. V-B: binary queries eliminate multiplications."""
        ops = hd_inference_ops(10, 4000, 5)
        assert ops.macs == 0
        assert ops.adds == 10 * 5 * 4000

    def test_retrain_invalid_rate(self):
        with pytest.raises(ValueError):
            hd_retrain_ops(10, 10, 2, 1, misclassification_rate=2.0)


class TestProjectionCompression:
    def test_projection_density(self):
        full = projection_ops(1, 100, 100, density=1.0)
        sparse = projection_ops(1, 100, 100, density=0.5)
        assert sparse.adds == pytest.approx(full.adds / 2)

    def test_projection_invalid_density(self):
        with pytest.raises(ValueError):
            projection_ops(1, 10, 10, density=0.0)

    def test_compression_linear_in_count(self):
        a = compression_ops(5, 1000)
        b = compression_ops(10, 1000)
        assert b.macs == 2 * a.macs


class TestDNNOps:
    def test_training_three_x_forward(self):
        fwd = dnn_inference_ops(100, 50, [64], 10)
        train = dnn_training_ops(100, 50, [64], 10, epochs=1)
        assert train.macs == pytest.approx(3 * fwd.macs)

    def test_training_scales_with_epochs(self):
        one = dnn_training_ops(10, 8, [16], 2, epochs=1)
        five = dnn_training_ops(10, 8, [16], 2, epochs=5)
        assert five.macs == pytest.approx(5 * one.macs)

    def test_dnn_heavier_than_hd_inference(self):
        """The Fig. 10 premise: HD inference is cheaper than a DNN's."""
        hd = hd_inference_ops(1000, 4000, 5) + encoding_ops(1000, 75, 4000, 0.8)
        dnn = dnn_inference_ops(1000, 75, [512, 256], 5)
        # HD does adds; DNN does MACs — compare total op counts.
        assert dnn.macs > hd.macs

    def test_invalid(self):
        with pytest.raises(ValueError):
            dnn_training_ops(-1, 8, [16], 2, 1)
