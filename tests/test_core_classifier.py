"""Unit tests for the HD classifier (training, retraining, inference)."""

import numpy as np
import pytest

from repro.core.classifier import HDClassifier, softmax_confidence
from repro.core.encoding import RBFEncoder


@pytest.fixture(scope="module")
def encoded_problem():
    """A 3-class problem already encoded into hyperspace."""
    rng = np.random.default_rng(1)
    n_per_class, n_features, dim = 60, 10, 600
    centers = rng.standard_normal((3, n_features)) * 3.0
    xs, ys = [], []
    for cls in range(3):
        xs.append(centers[cls] + rng.standard_normal((n_per_class, n_features)))
        ys.append(np.full(n_per_class, cls))
    x = np.vstack(xs)
    y = np.concatenate(ys)
    encoder = RBFEncoder(n_features, dim, gamma=0.3, seed=2)
    return encoder.encode(x), y, dim


class TestSoftmaxConfidence:
    def test_rows_sum_to_one(self):
        sims = np.array([[0.9, 0.1, 0.0], [0.2, 0.3, 0.25]])
        conf = softmax_confidence(sims)
        assert np.allclose(conf.sum(axis=1), 1.0)

    def test_sharper_margin_higher_confidence(self):
        wide = softmax_confidence(np.array([[0.9, 0.0]]), temperature=0.05)
        narrow = softmax_confidence(np.array([[0.51, 0.49]]), temperature=0.05)
        assert wide[0, 0] > narrow[0, 0]

    def test_temperature_sharpens(self):
        sims = np.array([[0.6, 0.4]])
        hot = softmax_confidence(sims, temperature=1.0)
        cold = softmax_confidence(sims, temperature=0.01)
        assert cold[0, 0] > hot[0, 0]

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            softmax_confidence(np.array([[1.0, 0.0]]), temperature=0.0)

    def test_mean_invariance(self):
        """Adding a constant to all similarities must not change output."""
        sims = np.array([[0.3, 0.1, 0.2]])
        shifted = sims + 5.0
        assert np.allclose(
            softmax_confidence(sims), softmax_confidence(shifted)
        )


class TestInitialTraining:
    def test_fit_initial_bundles_per_class(self):
        clf = HDClassifier(2, 4)
        enc = np.array([[1, 1, -1, -1], [1, -1, 1, -1], [-1, -1, 1, 1]], dtype=float)
        y = np.array([0, 0, 1])
        clf.fit_initial(enc, y)
        assert np.array_equal(clf.class_hypervectors[0], enc[0] + enc[1])
        assert np.array_equal(clf.class_hypervectors[1], enc[2])

    def test_initial_accuracy_reasonable(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        assert clf.accuracy(enc, y) > 0.8

    def test_mismatched_lengths(self):
        clf = HDClassifier(2, 8)
        with pytest.raises(ValueError):
            clf.fit_initial(np.ones((3, 8)), np.array([0, 1]))

    def test_label_out_of_range(self):
        clf = HDClassifier(2, 8)
        with pytest.raises(ValueError):
            clf.fit_initial(np.ones((2, 8)), np.array([0, 5]))

    def test_wrong_dimension(self):
        clf = HDClassifier(2, 8)
        with pytest.raises(ValueError):
            clf.fit_initial(np.ones((2, 9)), np.array([0, 1]))


class TestRetrain:
    @pytest.mark.parametrize("mode", ["batched", "online"])
    def test_retrain_improves_training_accuracy(self, encoded_problem, mode):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        initial = clf.accuracy(enc, y)
        history = clf.retrain(enc, y, epochs=10, shuffle_seed=0, mode=mode)
        assert clf.accuracy(enc, y) >= initial
        assert len(history) <= 10

    def test_retrain_early_stops_at_perfect(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        history = clf.retrain(enc, y, epochs=100, shuffle_seed=0)
        if history and history[-1] == 1.0:
            assert len(history) < 100

    def test_retrain_before_fit_raises(self):
        clf = HDClassifier(2, 8)
        with pytest.raises(RuntimeError):
            clf.retrain(np.ones((2, 8)), np.array([0, 1]))

    def test_retrain_zero_epochs_noop(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        before = clf.class_hypervectors.copy()
        assert clf.retrain(enc, y, epochs=0) == []
        assert np.array_equal(clf.class_hypervectors, before)

    def test_retrain_invalid_mode(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        with pytest.raises(ValueError):
            clf.retrain(enc, y, mode="magic")

    def test_retrain_empty_set(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        assert clf.retrain(enc[:0], y[:0], epochs=3) == []


class TestInference:
    def test_predict_shapes(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        result = clf.predict(enc[:10])
        assert result.labels.shape == (10,)
        assert result.similarities.shape == (10, 3)
        assert result.confidences.shape == (10, 3)
        assert result.top_confidence.shape == (10,)

    def test_top_confidence_is_argmax_confidence(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        result = clf.predict(enc[:5])
        for i in range(5):
            assert result.top_confidence[i] == result.confidences[i].max()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HDClassifier(2, 8).predict(np.ones((1, 8)))

    def test_accuracy_empty_raises(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        with pytest.raises(ValueError):
            clf.accuracy(enc[:0], y[:0])

    def test_similarities_are_cosine(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        sims = clf.similarities(enc[:3])
        assert np.all(sims <= 1.0 + 1e-9)
        assert np.all(sims >= -1.0 - 1e-9)


class TestModelManagement:
    def test_set_model_shape_check(self):
        clf = HDClassifier(3, 8)
        with pytest.raises(ValueError):
            clf.set_model(np.ones((2, 8)))
        with pytest.raises(ValueError):
            clf.set_model(np.ones((3, 9)))

    def test_set_model_copies(self):
        clf = HDClassifier(2, 4)
        model = np.ones((2, 4))
        clf.set_model(model)
        model[0, 0] = 99.0
        assert clf.class_hypervectors[0, 0] == 1.0

    def test_update_add_and_subtract(self):
        clf = HDClassifier(2, 4).set_model(np.zeros((2, 4)))
        delta = np.array([1.0, 2.0, 3.0, 4.0])
        clf.update(0, delta)
        assert np.array_equal(clf.class_hypervectors[0], delta)
        clf.update(0, delta, subtract=True)
        assert np.array_equal(clf.class_hypervectors[0], np.zeros(4))

    def test_update_out_of_range(self):
        clf = HDClassifier(2, 4).set_model(np.zeros((2, 4)))
        with pytest.raises(IndexError):
            clf.update(5, np.zeros(4))

    def test_update_wrong_shape(self):
        clf = HDClassifier(2, 4).set_model(np.zeros((2, 4)))
        with pytest.raises(ValueError):
            clf.update(0, np.zeros(5))

    def test_copy_is_independent(self, encoded_problem):
        enc, y, dim = encoded_problem
        clf = HDClassifier(3, dim).fit_initial(enc, y)
        clone = clf.copy()
        clone.class_hypervectors[0, 0] += 100.0
        assert clf.class_hypervectors[0, 0] != clone.class_hypervectors[0, 0]

    def test_copy_unfitted(self):
        clone = HDClassifier(2, 8).copy()
        assert clone.class_hypervectors is None

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HDClassifier(1, 8)
        with pytest.raises(ValueError):
            HDClassifier(2, 0)
        with pytest.raises(ValueError):
            HDClassifier(2, 8, confidence_temperature=0.0)
