"""Chaos tests of the fault-tolerant serving path.

Three load-bearing properties of :class:`~repro.serve.faults.FaultPlan`
plus :class:`~repro.serve.runtime.ServingRuntime`:

* **determinism** — the same workload under the same plan and seed
  produces the same semantic result (labels, deciding nodes, degraded
  flags, escalation map, retry count) across runs, even though
  wall-clock timing shifts micro-batch boundaries;
* **inert-plan transparency** — a plan with every knob at zero serves
  bit-identically to no plan at all, preserving the
  served-equals-offline invariant;
* **liveness** — under message drops plus a permanently crashed
  non-root node, every request still receives exactly one terminal
  response (answered or explicitly degraded — never hung or lost).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.hierarchy import HierarchicalInference
from repro.network.medium import get_medium
from repro.serve import (
    FaultPlan,
    ServeConfig,
    ServingRuntime,
    make_workload,
)

MEDIUM = get_medium("wired-1gbps")
CONFIG = ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512)


@pytest.fixture(scope="module")
def chaos_setup(trained_federation):
    federation, _, data = trained_federation
    inference = HierarchicalInference(federation, confidence_threshold=0.7)
    workload = make_workload(
        data.test_x, inference, seed=3, labels=data.test_y
    )
    offline = inference.run(data.test_x, seed=3)
    return inference, workload, offline


def _serve(inference, workload, plan):
    runtime = ServingRuntime(inference, MEDIUM, CONFIG, fault_plan=plan)
    return runtime.serve_open_loop(workload, rate_rps=3000.0, seed=1)


def _crashable_internal(inference):
    """A non-root internal node (the interesting crash victim)."""
    nodes = inference.federation.hierarchy.nodes
    internal = [
        nid for nid, n in nodes.items() if n.parent is not None and n.children
    ]
    assert internal, "fixture tree must have a non-root internal node"
    return internal[0]


class TestDeterminism:
    def test_same_seed_same_result(self, chaos_setup):
        """Two fresh runtimes under one plan: identical fingerprints,
        escalation maps and retry counts; confidences allclose (dense
        BLAS varies at the last ulp with batch shape)."""
        inference, workload, _ = chaos_setup
        plan = FaultPlan(
            seed=42, drop_probability=0.3, latency_jitter_s=0.001,
            dimension_loss=0.15,
        )
        first = _serve(inference, workload, plan)
        second = _serve(inference, workload, plan)
        assert first.fingerprint() == second.fingerprint()
        assert first.escalations == second.escalations
        assert first.n_retries == second.n_retries
        assert np.allclose(
            [r.confidence for r in first.responses],
            [r.confidence for r in second.responses],
        )

    def test_different_fault_seed_changes_decisions(self, chaos_setup):
        inference, workload, _ = chaos_setup
        runs = [
            _serve(inference, workload, FaultPlan(seed=s, drop_probability=0.5))
            for s in (1, 2)
        ]
        assert runs[0].n_retries != runs[1].n_retries or (
            runs[0].fingerprint() != runs[1].fingerprint()
        )

    def test_crash_run_deterministic(self, chaos_setup):
        inference, workload, _ = chaos_setup
        victim = _crashable_internal(inference)
        plan = FaultPlan(
            seed=7, drop_probability=0.2,
            crash_windows={victim: (0.0, math.inf)},
        )
        first = _serve(inference, workload, plan)
        second = _serve(inference, workload, plan)
        assert first.fingerprint() == second.fingerprint()
        assert first.n_degraded == second.n_degraded > 0


class TestInertPlanTransparency:
    def test_zero_fault_plan_equals_no_plan(self, chaos_setup):
        inference, workload, _ = chaos_setup
        plain = _serve(inference, workload, None)
        inert = _serve(inference, workload, FaultPlan(seed=99))
        assert inert.fingerprint() == plain.fingerprint()
        assert inert.escalations == plain.escalations
        assert inert.n_retries == inert.n_timeouts == 0
        assert inert.n_degraded == 0

    def test_zero_fault_plan_matches_offline(self, chaos_setup):
        """The PR 3 invariant survives an inert plan end to end."""
        inference, workload, offline = chaos_setup
        result = _serve(inference, workload, FaultPlan())
        out = result.to_outcome()
        assert np.array_equal(out.labels, offline.labels)
        assert np.array_equal(out.deciding_node, offline.deciding_node)
        assert np.array_equal(out.deciding_level, offline.deciding_level)
        assert np.allclose(out.confidence, offline.confidence)
        assert out.total_bytes == offline.total_bytes

    def test_inert_plan_is_not_active(self):
        assert FaultPlan().active is False
        assert FaultPlan(seed=123).active is False
        for active in (
            FaultPlan(drop_probability=0.1),
            FaultPlan(latency_jitter_s=0.001),
            FaultPlan(dimension_loss=0.1),
            FaultPlan(block_loss=0.1),
            FaultPlan(crash_windows={3: (0.0, 1.0)}),
        ):
            assert active.active is True


class TestLiveness:
    def test_every_request_completes_under_chaos(self, chaos_setup):
        """Drop 0.3 + one crashed non-root node: exactly one terminal
        response per request, each answered or explicitly degraded."""
        inference, workload, _ = chaos_setup
        victim = _crashable_internal(inference)
        plan = FaultPlan(
            seed=7, drop_probability=0.3,
            crash_windows={victim: (0.0, math.inf)},
        )
        result = _serve(inference, workload, plan)
        assert result.n_total == len(workload)
        indices = sorted(r.index for r in result.responses)
        assert indices == list(range(len(workload)))
        for r in result.responses:
            assert r.degraded or not r.shed
            if not r.rejected:
                assert r.deciding_node >= 0
        assert result.n_degraded > 0
        assert result.escalations.get((victim, 0), 0) == 0, (
            "nothing can escalate out of a node crashed from t=0"
        )
        with pytest.raises(ValueError, match="degraded"):
            result.to_outcome()

    def test_crashed_entry_leaf_rejects_degraded(self, chaos_setup):
        inference, workload, _ = chaos_setup
        leaves = sorted(set(int(s) for s in workload.start_leaves))
        victim = leaves[0]
        plan = FaultPlan(crash_windows={victim: (0.0, math.inf)})
        result = _serve(inference, workload, plan)
        assert result.n_total == len(workload)
        from_victim = [
            r for r in result.responses if r.start_leaf == victim
        ]
        assert from_victim
        assert all(r.degraded and r.rejected for r in from_victim)
        others = [r for r in result.responses if r.start_leaf != victim]
        assert all(not r.degraded for r in others)

    def test_degraded_rate_and_summary(self, chaos_setup):
        inference, workload, _ = chaos_setup
        victim = _crashable_internal(inference)
        plan = FaultPlan(
            seed=7, drop_probability=0.3,
            crash_windows={victim: (0.0, math.inf)},
        )
        result = _serve(inference, workload, plan)
        assert result.degraded_rate == result.n_degraded / result.n_total
        assert "degraded" in result.summary()


class TestFaultPlanValidation:
    def test_root_crash_rejected(self, chaos_setup):
        inference, _, _ = chaos_setup
        root = inference.federation.hierarchy.root_id
        plan = FaultPlan(crash_windows={root: (0.0, 1.0)})
        with pytest.raises(ValueError, match="root"):
            ServingRuntime(inference, MEDIUM, CONFIG, fault_plan=plan)

    def test_unknown_crash_node_rejected(self, chaos_setup):
        inference, _, _ = chaos_setup
        plan = FaultPlan(crash_windows={999: (0.0, 1.0)})
        with pytest.raises(ValueError, match="unknown"):
            ServingRuntime(inference, MEDIUM, CONFIG, fault_plan=plan)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_probability": 1.5},
            {"drop_probability": -0.1},
            {"dimension_loss": 2.0},
            {"block_loss": -0.5},
            {"latency_jitter_s": -1.0},
            {"block_size": 0},
            {"max_attempts": 0},
            {"timeout_s": -0.1},
            {"backoff_base_s": -0.1},
            {"backoff_factor": 0.5},
            {"hop_timeout_s": 0.0},
            {"crash_windows": {1: (2.0, 1.0)}},
            {"crash_windows": {1: (-1.0, 2.0)}},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)

    def test_crash_window_boundaries(self):
        plan = FaultPlan(crash_windows={5: (1.0, 2.0)})
        assert not plan.crashed(5, 0.5)
        assert plan.crashed(5, 1.0)
        assert plan.crashed(5, 1.5)
        assert not plan.crashed(5, 2.0)
        assert not plan.crashed(4, 1.5)

    def test_backoff_schedule(self):
        plan = FaultPlan(backoff_base_s=0.01, backoff_factor=2.0)
        assert plan.backoff_s(0) == pytest.approx(0.01)
        assert plan.backoff_s(1) == pytest.approx(0.02)
        assert plan.backoff_s(2) == pytest.approx(0.04)


class TestSampleCrashes:
    def test_deterministic_and_disjoint(self):
        candidates = [1, 2, 3, 4, 5]
        first = FaultPlan.sample_crashes(9, candidates, n_crashes=2)
        second = FaultPlan.sample_crashes(9, candidates, n_crashes=2)
        assert first == second
        assert len(first) == 2
        assert set(first) <= set(candidates)
        other = FaultPlan.sample_crashes(10, candidates, n_crashes=2)
        assert set(other) <= set(candidates)

    def test_window_parameters(self):
        windows = FaultPlan.sample_crashes(
            0, [1, 2], n_crashes=1, crash_start_s=0.5, crash_duration_s=2.0
        )
        ((_, window),) = windows.items()
        assert window == (0.5, 2.5)

    def test_too_many_crashes_rejected(self):
        with pytest.raises(ValueError, match="cannot crash"):
            FaultPlan.sample_crashes(0, [1], n_crashes=2)
