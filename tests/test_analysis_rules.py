"""Fixture tests for every repro-lint rule: one firing and one clean
case per rule, plus edge cases around each rule's documented
relaxations (f-string metric prefixes, the utils/rng.py exemption,
shape-agnostic suppressions)."""

import textwrap

import pytest

from repro.analysis import (
    DEFAULT_RULES,
    RULE_INDEX,
    LintEngine,
    default_rules,
    lint_source,
)


def findings_for(source, path="<string>"):
    return lint_source(textwrap.dedent(source), path=path)


def rule_ids(findings):
    return [f.rule_id for f in findings]


class TestRngDiscipline:
    def test_fires_on_legacy_module_call(self):
        findings = findings_for(
            """
            import numpy as np
            values = np.random.rand(10)
            """
        )
        assert rule_ids(findings) == ["REPRO101"]
        assert "legacy" in findings[0].message

    def test_fires_on_seed_call(self):
        findings = findings_for(
            """
            import numpy
            numpy.random.seed(0)
            """
        )
        assert rule_ids(findings) == ["REPRO101"]

    def test_fires_on_default_rng_outside_utils_rng(self):
        findings = findings_for(
            """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
            """,
            path="src/repro/core/widget.py",
        )
        assert rule_ids(findings) == ["REPRO101"]
        assert "derive_rng" in findings[0].autofix_hint

    def test_default_rng_allowed_inside_utils_rng(self):
        findings = findings_for(
            """
            import numpy as np

            def derive_rng(seed, tag=""):
                return np.random.default_rng(seed)
            """,
            path="src/repro/utils/rng.py",
        )
        assert findings == []

    def test_fires_on_stdlib_random_import(self):
        assert rule_ids(findings_for("import random\n")) == ["REPRO101"]
        assert rule_ids(
            findings_for("from random import choice\n")
        ) == ["REPRO101"]

    def test_clean_derive_rng_usage(self):
        findings = findings_for(
            """
            from repro.utils.rng import derive_rng

            def make(seed):
                return derive_rng(seed, "component")
            """
        )
        assert findings == []

    def test_fires_on_default_rng_in_fault_plan(self):
        """A chaos-harness jitter helper drawing from a raw generator
        (instead of derive_rng) must trip the discipline rule."""
        findings = findings_for(
            """
            import numpy as np

            def jitter_s(self, edge, index, attempt):
                rng = np.random.default_rng()
                return float(rng.uniform(0.0, self.latency_jitter_s))
            """,
            path="src/repro/serve/faults.py",
        )
        assert rule_ids(findings) == ["REPRO101"]

    def test_clean_derived_fault_stream(self):
        """The real FaultPlan idiom — a stream derived from the plan
        seed and a structural tag — is clean."""
        findings = findings_for(
            """
            from repro.utils.rng import derive_rng

            def jitter_s(self, edge, index, attempt):
                rng = derive_rng(
                    self.seed, f"jitter:{edge[0]}->{edge[1]}:{index}:{attempt}"
                )
                return float(rng.uniform(0.0, self.latency_jitter_s))
            """,
            path="src/repro/serve/faults.py",
        )
        assert findings == []

    def test_generator_annotation_is_not_a_call(self):
        findings = findings_for(
            """
            import numpy as np

            def consume(rng: np.random.Generator) -> None:
                assert isinstance(rng, np.random.Generator)
            """
        )
        assert findings == []


class TestAsyncBlocking:
    def test_fires_on_time_sleep_in_async_def(self):
        findings = findings_for(
            """
            import time

            async def handler():
                time.sleep(0.1)
            """
        )
        assert "REPRO102" in rule_ids(findings)

    def test_fires_on_open_in_async_def(self):
        findings = findings_for(
            """
            async def handler(path):
                with open(path) as fh:
                    return fh.read()
            """
        )
        assert "REPRO102" in rule_ids(findings)

    def test_fires_on_path_write_text_in_async_def(self):
        findings = findings_for(
            """
            async def handler(path):
                path.write_text("x")
            """
        )
        assert "REPRO102" in rule_ids(findings)

    def test_clean_sleep_in_sync_def_and_asyncio_sleep(self):
        findings = findings_for(
            """
            import asyncio
            import time

            def warmup():
                time.sleep(0.1)

            async def handler():
                await asyncio.sleep(0.1)
            """
        )
        assert findings == []


class TestUnawaitedCoroutine:
    def test_fires_on_bare_asyncio_sleep(self):
        findings = findings_for(
            """
            import asyncio

            async def handler():
                asyncio.sleep(1.0)
            """
        )
        assert "REPRO103" in rule_ids(findings)

    def test_fires_on_unawaited_local_coroutine(self):
        findings = findings_for(
            """
            class Server:
                async def _escalate(self, batch):
                    pass

                async def process(self, batch):
                    self._escalate(batch)
            """
        )
        assert "REPRO103" in rule_ids(findings)

    def test_clean_awaited_and_scheduled_calls(self):
        findings = findings_for(
            """
            import asyncio

            async def _escalate(batch):
                pass

            async def process(batch):
                await _escalate(batch)
                asyncio.ensure_future(_escalate(batch))
            """
        )
        assert findings == []

    def test_clean_sync_call_with_same_shape(self):
        findings = findings_for(
            """
            def close():
                pass

            def shutdown():
                close()
            """
        )
        assert findings == []


class TestPackedDtype:
    def test_fires_on_astype_float_of_words(self):
        findings = findings_for(
            """
            def leak(packed_words):
                return packed_words.astype(float)
            """
        )
        assert "REPRO104" in rule_ids(findings)

    def test_fires_on_asarray_float_of_packed(self):
        findings = findings_for(
            """
            import numpy as np

            def leak(packed):
                return np.asarray(packed, dtype=np.float64)
            """
        )
        assert "REPRO104" in rule_ids(findings)

    def test_fires_on_attribute_receiver(self):
        findings = findings_for(
            """
            import numpy as np

            def leak(model):
                return model.words.astype(np.float32)
            """
        )
        assert "REPRO104" in rule_ids(findings)

    def test_clean_unpack_then_float(self):
        findings = findings_for(
            """
            import numpy as np
            from repro.core.kernels import unpack_bits

            def ok(packed):
                dense = unpack_bits(packed)
                return dense.astype(np.float64)
            """
        )
        assert rule_ids(findings) == []

    def test_clean_uint64_view(self):
        findings = findings_for(
            """
            import numpy as np

            def ok(packed_bytes):
                return packed_bytes.view(np.uint64)
            """
        )
        assert findings == []


class TestObsLiteralNames:
    def test_fires_on_variable_metric_name(self):
        findings = findings_for(
            """
            import repro.obs as obs

            def record(name):
                obs.incr(name)
            """
        )
        assert "REPRO105" in rule_ids(findings)

    def test_fires_on_fstring_without_literal_prefix(self):
        findings = findings_for(
            """
            import repro.obs as obs

            def record(level):
                obs.incr(f"{level}.count")
            """
        )
        assert "REPRO105" in rule_ids(findings)

    def test_clean_literal_and_dotted_fstring_prefix(self):
        findings = findings_for(
            """
            import repro.obs as obs

            def record(level):
                obs.incr("serve.requests")
                obs.incr(f"serve.decided.l{level}")
            """
        )
        assert findings == []

    def test_fires_on_registry_method_with_variable(self):
        findings = findings_for(
            """
            def record(registry, name):
                registry.counter(name).inc()
            """
        )
        assert "REPRO105" in rule_ids(findings)

    def test_obs_package_itself_is_exempt(self):
        findings = findings_for(
            """
            def incr(name, amount=1):
                _registry.counter(name).inc(amount)
            """,
            path="src/repro/obs/runtime.py",
        )
        assert findings == []


class TestMutableDefault:
    def test_fires_on_list_literal_default(self):
        findings = findings_for(
            """
            def accumulate(x, acc=[]):
                acc.append(x)
                return acc
            """
        )
        assert "REPRO106" in rule_ids(findings)

    def test_fires_on_dict_call_and_kwonly_default(self):
        findings = findings_for(
            """
            def f(x, *, cache=dict()):
                return cache
            """
        )
        assert "REPRO106" in rule_ids(findings)

    def test_clean_none_default(self):
        findings = findings_for(
            """
            def accumulate(x, acc=None):
                if acc is None:
                    acc = []
                acc.append(x)
                return acc
            """
        )
        assert findings == []

    def test_clean_tuple_default(self):
        assert findings_for("def f(qs=(50, 95, 99)):\n    return qs\n") == []


class TestSilentBroadExcept:
    def test_fires_on_bare_except_pass(self):
        findings = findings_for(
            """
            def risky():
                try:
                    return 1 / 0
                except:
                    pass
            """
        )
        assert "REPRO107" in rule_ids(findings)

    def test_fires_on_except_exception_swallow(self):
        findings = findings_for(
            """
            def risky():
                try:
                    return compute()
                except Exception:
                    return None
            """
        )
        assert "REPRO107" in rule_ids(findings)

    def test_clean_when_logged_or_reraised(self):
        findings = findings_for(
            """
            import logging

            logger = logging.getLogger(__name__)

            def risky():
                try:
                    return compute()
                except Exception:
                    logger.exception("compute failed")
                    raise
            """
        )
        assert findings == []

    def test_clean_specific_exception(self):
        findings = findings_for(
            """
            def lookup(d, key):
                try:
                    return d[key]
                except KeyError:
                    return None
            """
        )
        assert findings == []


class TestUnvalidatedArrayApi:
    def test_fires_on_public_silent_coercion(self):
        findings = findings_for(
            """
            import numpy as np

            def transform(features):
                return np.asarray(features) * 2
            """
        )
        assert "REPRO108" in rule_ids(findings)

    def test_clean_with_check_helper(self):
        findings = findings_for(
            """
            import numpy as np
            from repro.utils.validation import check_matrix

            def transform(features):
                mat = check_matrix("features", features)
                return np.asarray(mat) * 2
            """
        )
        assert findings == []

    def test_clean_with_manual_raise(self):
        findings = findings_for(
            """
            import numpy as np

            def transform(features):
                arr = np.asarray(features)
                if arr.ndim != 2:
                    raise ValueError("need a matrix")
                return arr
            """
        )
        assert findings == []

    def test_private_functions_are_exempt(self):
        findings = findings_for(
            """
            import numpy as np

            def _transform(features):
                return np.asarray(features)
            """
        )
        assert findings == []

    def test_local_variables_do_not_fire(self):
        findings = findings_for(
            """
            import numpy as np

            def summarize(responses):
                values = [r.latency for r in responses]
                return np.asarray(values)
            """
        )
        assert findings == []


class TestLegacyBackendString:
    def test_fires_on_string_backend_kwarg(self):
        findings = findings_for(
            """
            from repro.core.classifier import HDClassifier
            clf = HDClassifier(3, 1024, backend="packed")
            """
        )
        assert rule_ids(findings) == ["REPRO109"]
        assert "deprecated string shim" in findings[0].message
        assert "SearchSpec" in findings[0].autofix_hint

    def test_fires_on_method_calls_too(self):
        findings = findings_for(
            """
            labels = model.predict_labels(features, backend="dense")
            """
        )
        assert rule_ids(findings) == ["REPRO109"]

    def test_spec_construction_is_the_new_api(self):
        findings = findings_for(
            """
            from dataclasses import replace
            from repro.core.search import SearchSpec

            spec = SearchSpec(backend="packed", prune="exact")
            dense = spec.with_backend("dense")
            swapped = replace(spec, backend="dense")
            """
        )
        assert findings == []

    def test_non_constant_backend_does_not_fire(self):
        findings = findings_for(
            """
            clf = HDClassifier(3, 1024, backend=args.backend)
            other = HDClassifier(3, 1024, backend=None)
            """
        )
        assert findings == []

    def test_shim_module_is_exempt(self):
        findings = findings_for(
            """
            spec = base.some_helper(backend="dense")
            """,
            path="src/repro/core/search.py",
        )
        assert findings == []


class TestProcessBoundary:
    def test_fires_on_plain_import(self):
        findings = findings_for(
            """
            import multiprocessing

            def spawn():
                return multiprocessing.Process(target=print)
            """
        )
        assert rule_ids(findings) == ["REPRO110"]
        assert "cluster" in findings[0].autofix_hint

    def test_fires_on_shared_memory_import(self):
        findings = findings_for(
            """
            from multiprocessing import shared_memory
            shm = shared_memory.SharedMemory(create=True, size=8)
            """
        )
        assert rule_ids(findings) == ["REPRO110"]

    def test_fires_on_submodule_from_import(self):
        findings = findings_for(
            """
            from multiprocessing.shared_memory import SharedMemory
            """,
            path="src/repro/serve/runtime.py",
        )
        assert rule_ids(findings) == ["REPRO110"]

    def test_cluster_module_is_allowed(self):
        findings = findings_for(
            """
            import multiprocessing
            from multiprocessing import shared_memory
            """,
            path="src/repro/serve/cluster.py",
        )
        assert findings == []

    def test_shard_and_kernels_modules_are_allowed(self):
        source = """
            from multiprocessing import shared_memory
            """
        for path in (
            "src/repro/serve/shard.py",
            "src/repro/core/kernels.py",
        ):
            assert findings_for(source, path=path) == []

    def test_unrelated_imports_do_not_fire(self):
        findings = findings_for(
            """
            import multiprocessing_utils
            from concurrent.futures import ProcessPoolExecutor
            """
        )
        assert findings == []


class TestRuleRegistry:
    def test_ten_rules_with_unique_ids(self):
        ids = [rule.rule_id for rule in DEFAULT_RULES]
        assert len(ids) == len(set(ids)) == 10
        # the index additionally knows the dataflow rules (--flow)
        from repro.analysis import FLOW_RULE_IDS

        assert set(RULE_INDEX) == set(ids) | set(FLOW_RULE_IDS)
        assert len(FLOW_RULE_IDS) == 3

    def test_every_rule_documents_itself(self):
        for rule in DEFAULT_RULES:
            assert rule.description, rule.rule_id
            assert rule.autofix_hint, rule.rule_id
            assert rule.severity in ("error", "warning")
            assert rule.node_types, rule.rule_id

    def test_default_rules_returns_fresh_instances(self):
        first, second = default_rules(), default_rules()
        assert {type(r) for r in first} == {type(r) for r in second}
        assert all(a is not b for a, b in zip(first, second))

    def test_duplicate_rule_ids_rejected(self):
        rules = default_rules()
        with pytest.raises(ValueError, match="duplicate"):
            LintEngine(rules + [type(rules[0])()])
