"""SearchSpec API contract: validation, resolution order, and the
warn-once ``backend=`` deprecation shim.

The shim's warning text is pinned verbatim here (see
``BACKEND_DEPRECATION`` in :mod:`repro.core.search`) so it cannot
silently drift or disappear while call sites still depend on it.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.classifier import HDClassifier
from repro.core.hypervector import random_bipolar
from repro.core.model import EdgeHDModel
from repro.core.predictor import SearchAwarePredictor
from repro.core.search import (
    BACKEND_DEPRECATION,
    BACKENDS,
    PRUNE_MODES,
    SearchSpec,
    get_default_search,
    reset_backend_warnings,
    resolve_search,
    set_default_search,
)


@pytest.fixture(autouse=True)
def _isolate_search_state():
    """Each test sees a fresh warn-once set and the stock default."""
    reset_backend_warnings()
    previous = set_default_search(SearchSpec())
    yield
    set_default_search(previous)
    reset_backend_warnings()


class TestSearchSpecValidation:
    def test_default_is_dense_unpruned(self):
        spec = SearchSpec()
        assert spec.backend == "dense"
        assert spec.prune == "off"
        assert not spec.is_pruned

    def test_constants(self):
        assert BACKENDS == ("dense", "packed")
        assert PRUNE_MODES == ("off", "exact", "approx")

    @pytest.mark.parametrize("backend", ["gpu", "", "DENSE"])
    def test_rejects_unknown_backend(self, backend):
        with pytest.raises(ValueError, match="backend must be one of"):
            SearchSpec(backend=backend)

    def test_rejects_unknown_prune(self):
        with pytest.raises(ValueError, match="prune must be one of"):
            SearchSpec(backend="packed", prune="fast")

    @pytest.mark.parametrize("prune", ["exact", "approx"])
    def test_prune_requires_packed_backend(self, prune):
        with pytest.raises(ValueError, match="requires the packed backend"):
            SearchSpec(backend="dense", prune=prune)

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_rejects_bad_prefix_fraction(self, fraction):
        with pytest.raises(ValueError, match="prefix_fraction"):
            SearchSpec(backend="packed", prefix_fraction=fraction)

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError, match="margin_threshold"):
            SearchSpec(backend="packed", margin_threshold=-0.01)

    def test_frozen(self):
        spec = SearchSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.backend = "packed"

    def test_with_backend_revalidates(self):
        pruned = SearchSpec(backend="packed", prune="exact")
        with pytest.raises(ValueError, match="requires the packed backend"):
            pruned.with_backend("dense")
        assert pruned.with_backend("packed") == pruned

    def test_describe_forms(self):
        assert SearchSpec().describe() == "dense"
        assert SearchSpec(backend="packed").describe() == "packed"
        pruned = SearchSpec(
            backend="packed", prune="approx",
            prefix_fraction=0.25, margin_threshold=0.1,
        )
        assert pruned.describe() == "packed/approx(prefix=0.25, margin=0.1)"

    def test_to_metadata_roundtrips(self):
        spec = SearchSpec(backend="packed", prune="exact")
        meta = spec.to_metadata()
        assert SearchSpec(**meta) == spec
        assert set(meta) == {
            "backend", "prune", "prefix_fraction", "margin_threshold"
        }


class TestResolveSearch:
    def test_spec_wins_outright(self):
        spec = SearchSpec(backend="packed", prune="exact")
        assert resolve_search(spec) is spec

    def test_falls_back_to_default_argument(self):
        default = SearchSpec(backend="packed")
        assert resolve_search(None, None, default=default) is default

    def test_falls_back_to_process_default(self):
        assert resolve_search() is get_default_search()
        installed = SearchSpec(backend="packed", prune="approx")
        set_default_search(installed)
        assert resolve_search() is installed

    def test_both_given_is_ambiguous(self):
        with pytest.raises(ValueError, match="not both"):
            resolve_search(SearchSpec(), "packed", owner="X")

    def test_rejects_non_spec_search(self):
        with pytest.raises(TypeError, match="must be a SearchSpec"):
            resolve_search(42)  # type: ignore[arg-type]

    def test_legacy_backend_warns_with_pinned_text(self):
        with pytest.warns(DeprecationWarning) as record:
            spec = resolve_search(None, "packed", owner="X")
        assert spec.backend == "packed"
        assert str(record[0].message) == f"X: {BACKEND_DEPRECATION}"

    def test_string_search_treated_as_legacy_backend(self):
        with pytest.warns(DeprecationWarning, match="deprecated"):
            spec = resolve_search("packed", owner="X")
        assert spec == SearchSpec(backend="packed")

    def test_warns_once_per_owner(self, recwarn):
        resolve_search(None, "packed", owner="A")
        resolve_search(None, "packed", owner="A")
        resolve_search(None, "dense", owner="B")
        messages = [str(w.message) for w in recwarn.list]
        assert messages == [
            f"A: {BACKEND_DEPRECATION}",
            f"B: {BACKEND_DEPRECATION}",
        ]

    def test_reset_backend_warnings_rearms(self):
        with pytest.warns(DeprecationWarning):
            resolve_search(None, "packed", owner="A")
        reset_backend_warnings()
        with pytest.warns(DeprecationWarning):
            resolve_search(None, "packed", owner="A")

    def test_legacy_backend_rejects_unknown_string(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="backend must be one of"):
                resolve_search(None, "gpu")

    def test_legacy_backend_keeps_default_knobs(self):
        default = SearchSpec(
            backend="dense", prefix_fraction=0.5, margin_threshold=0.2
        )
        with pytest.warns(DeprecationWarning):
            spec = resolve_search(None, "packed", default=default)
        assert spec.backend == "packed"
        assert spec.prefix_fraction == 0.5
        assert spec.margin_threshold == 0.2

    def test_legacy_dense_drops_pruning_from_packed_default(self):
        default = SearchSpec(backend="packed", prune="approx")
        with pytest.warns(DeprecationWarning):
            spec = resolve_search(None, "dense", default=default)
        assert spec == SearchSpec(backend="dense")


class TestProcessDefault:
    def test_set_returns_previous(self):
        stock = get_default_search()
        installed = SearchSpec(backend="packed")
        assert set_default_search(installed) == stock
        assert get_default_search() is installed

    def test_set_rejects_non_spec(self):
        with pytest.raises(TypeError, match="must be a SearchSpec"):
            set_default_search("packed")  # type: ignore[arg-type]


class TestObjectIntegration:
    def _fitted(self, dimension=256, n_classes=4, **kwargs):
        clf = HDClassifier(n_classes, dimension, **kwargs)
        clf.set_model(
            random_bipolar(
                dimension, count=n_classes, seed=3
            ).astype(float)
        )
        return clf

    def test_classifier_backend_kwarg_warns_once(self, recwarn):
        clf = self._fitted(backend="packed")
        assert clf.search == SearchSpec(backend="packed")
        self._fitted(backend="packed")
        owners = [str(w.message).split(":")[0] for w in recwarn.list]
        assert owners == ["HDClassifier"]

    def test_classifier_backend_property_round_trip(self):
        clf = self._fitted()
        assert clf.backend == "dense"
        with pytest.warns(DeprecationWarning, match="HDClassifier.backend"):
            clf.backend = "packed"
        assert clf.search.backend == "packed"

    def test_classifier_resolution_order_per_call_wins(self):
        clf = self._fitted(search=SearchSpec(backend="dense"))
        queries = random_bipolar(256, count=8, seed=9).astype(float)
        per_call = SearchSpec(backend="packed", prune="exact")
        sims = clf.similarities(queries, search=per_call)
        assert clf.last_search_stats is not None
        assert clf.last_search_stats.mode == "exact"
        packed = clf.similarities(queries, search=SearchSpec(backend="packed"))
        np.testing.assert_array_equal(
            np.argmax(sims, axis=1), np.argmax(packed, axis=1)
        )

    def test_classifier_built_from_process_default(self):
        set_default_search(SearchSpec(backend="packed", prune="exact"))
        clf = self._fitted()
        assert clf.search == SearchSpec(backend="packed", prune="exact")

    def test_model_conforms_to_search_aware_protocol(self):
        model = EdgeHDModel(n_features=8, n_classes=3, dimension=128, seed=1)
        assert isinstance(model, SearchAwarePredictor)
        assert model.search == SearchSpec()
        with pytest.raises(TypeError, match="SearchSpec"):
            model.search = "packed"  # type: ignore[assignment]
        model.search = SearchSpec(backend="packed")
        assert model.classifier.search.backend == "packed"

    def test_copy_preserves_search(self):
        clf = self._fitted(search=SearchSpec(backend="packed", prune="exact"))
        assert clf.copy().search == clf.search
