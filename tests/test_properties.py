"""Property-based tests (hypothesis) on core HD invariants.

These check the mathematical contracts the system's correctness rests
on, across randomly generated shapes and values rather than fixed
examples: bind algebra, bundle similarity, projection geometry,
compression decode bias, dimension allocation, and batch grouping.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.classifier import softmax_confidence
from repro.core.compression import PositionCodebook
from repro.core.hypervector import (
    bind,
    bundle,
    cosine,
    permute,
    random_bipolar,
    sign_binarize,
)
from repro.core.projection import TernaryProjection, concatenate_hypervectors
from repro.hierarchy.federation import batch_groups
from repro.hierarchy.topology import build_deep_tree, build_star, build_tree
from repro.network.failure import drop_dimensions
from repro.utils.rng import spawn_seeds

dims = st.integers(min_value=16, max_value=512)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def bipolar_pair(draw):
    dim = draw(dims)
    s1, s2 = draw(seeds), draw(seeds)
    return (
        random_bipolar(dim, seed=s1, tag="a").astype(float),
        random_bipolar(dim, seed=s2, tag="b").astype(float),
    )


class TestBindProperties:
    @given(bipolar_pair())
    @settings(max_examples=30, deadline=None)
    def test_bind_self_inverse(self, pair):
        a, b = pair
        assert np.array_equal(bind(bind(a, b), b), a)

    @given(bipolar_pair())
    @settings(max_examples=30, deadline=None)
    def test_bind_preserves_bipolarity(self, pair):
        a, b = pair
        assert set(np.unique(bind(a, b))) <= {-1.0, 1.0}

    @given(bipolar_pair(), seeds)
    @settings(max_examples=20, deadline=None)
    def test_bind_distributes_over_bundle(self, pair, seed):
        a, b = pair
        c = random_bipolar(len(a), seed=seed, tag="c").astype(float)
        left = bind(c, a + b)
        right = bind(c, a) + bind(c, b)
        assert np.allclose(left, right)


class TestBundleProperties:
    @given(st.integers(min_value=2, max_value=20), seeds)
    @settings(max_examples=20, deadline=None)
    def test_bundle_similar_to_members(self, count, seed):
        stack = random_bipolar(4096, count=count, seed=seed).astype(float)
        total = bundle(stack)
        sims = [cosine(total, row) for row in stack]
        # Expected similarity ~ 1/sqrt(count); allow generous slack.
        assert min(sims) > 1.0 / np.sqrt(count) - 0.3

    @given(st.permutations(list(range(6))), seeds)
    @settings(max_examples=20, deadline=None)
    def test_bundle_order_invariant(self, perm, seed):
        stack = random_bipolar(128, count=6, seed=seed).astype(float)
        assert np.allclose(bundle(stack), bundle(stack[list(perm)]))


class TestPermuteProperties:
    @given(dims, st.integers(min_value=-64, max_value=64), seeds)
    @settings(max_examples=30, deadline=None)
    def test_permute_preserves_multiset(self, dim, shift, seed):
        hv = random_bipolar(dim, seed=seed)
        assert sorted(permute(hv, shift)) == sorted(hv)

    @given(dims, st.integers(min_value=0, max_value=32), seeds)
    @settings(max_examples=30, deadline=None)
    def test_permute_invertible(self, dim, shift, seed):
        hv = random_bipolar(dim, seed=seed)
        assert np.array_equal(permute(permute(hv, shift), -shift), hv)


class TestSignProperties:
    @given(
        arrays(
            np.float64,
            st.integers(min_value=1, max_value=64),
            elements=st.floats(-100, 100, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_sign_idempotent(self, values):
        once = sign_binarize(values)
        twice = sign_binarize(once.astype(float))
        assert np.array_equal(once, twice)

    @given(
        arrays(
            np.float64,
            st.integers(min_value=1, max_value=64),
            elements=st.floats(0.01, 100, allow_nan=False),
        ),
        st.floats(0.01, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_sign_scale_invariant(self, values, scale):
        assert np.array_equal(
            sign_binarize(values), sign_binarize(values * scale)
        )


class TestSoftmaxProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(
                st.integers(min_value=1, max_value=8),
                st.integers(min_value=2, max_value=10),
            ),
            elements=st.floats(-1, 1, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_are_distributions(self, sims):
        conf = softmax_confidence(sims)
        assert np.allclose(conf.sum(axis=1), 1.0)
        assert np.all(conf >= 0.0)

    @given(
        arrays(
            np.float64, (3, 4), elements=st.floats(-1, 1, allow_nan=False)
        ),
        st.floats(-5, 5, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_shift_invariance(self, sims, shift):
        assert np.allclose(
            softmax_confidence(sims), softmax_confidence(sims + shift)
        )


class TestProjectionProperties:
    @given(
        st.integers(min_value=64, max_value=256),
        st.integers(min_value=64, max_value=256),
        seeds,
    )
    @settings(max_examples=15, deadline=None)
    def test_projection_linear(self, in_dim, out_dim, seed):
        proj = TernaryProjection(in_dim, out_dim, seed=seed, binarize=False)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal(in_dim)
        b = rng.standard_normal(in_dim)
        assert np.allclose(
            proj.project(a + b), proj.project(a) + proj.project(b)
        )

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_projection_roughly_preserves_norm_ratio(self, seed):
        """JL flavour: relative norms survive the projection."""
        proj = TernaryProjection(2048, 2048, seed=seed, binarize=False)
        rng = np.random.default_rng(seed)
        small = rng.standard_normal(2048)
        big = 10.0 * rng.standard_normal(2048)
        ratio = np.linalg.norm(proj.project(big)) / np.linalg.norm(
            proj.project(small)
        )
        assert 5.0 < ratio < 20.0

    @given(
        st.lists(
            st.integers(min_value=4, max_value=64), min_size=1, max_size=5
        ),
        seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_concat_length(self, sizes, seed):
        parts = [
            random_bipolar(s, seed=seed + i, tag=f"p{i}").astype(float)
            for i, s in enumerate(sizes)
        ]
        assert concatenate_hypervectors(parts).shape == (sum(sizes),)


class TestCompressionProperties:
    @given(
        st.integers(min_value=1, max_value=12),
        seeds,
    )
    @settings(max_examples=15, deadline=None)
    def test_decode_biased_toward_original(self, count, seed):
        dim = 4096
        book = PositionCodebook(dim, count, seed=seed)
        vectors = random_bipolar(dim, count=count, seed=seed, tag="v").astype(float)
        decoded = book.decompress(book.compress(vectors), binarize=False)
        # Per Eq. 4: E[decoded * original] = 1 per element.
        bias = np.mean(decoded * vectors)
        assert bias == pytest.approx(1.0, abs=0.2)

    @given(st.integers(min_value=2, max_value=10), seeds)
    @settings(max_examples=15, deadline=None)
    def test_compression_linear_additive(self, count, seed):
        dim = 256
        book = PositionCodebook(dim, count, seed=seed)
        vectors = random_bipolar(dim, count=count, seed=seed, tag="w").astype(float)
        bundle_all = book.compress(vectors).bundle
        manual = sum(
            book.positions[i].astype(float) * vectors[i] for i in range(count)
        )
        assert np.allclose(bundle_all, manual)


class TestFailureProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=32, max_value=512),
        seeds,
    )
    @settings(max_examples=30, deadline=None)
    def test_drop_count_exact(self, fraction, dim, seed):
        hv = random_bipolar(dim, seed=seed).astype(float)
        damaged = drop_dimensions(hv, fraction, seed=seed)
        assert np.sum(damaged == 0.0) == round(fraction * dim)


class TestTopologyProperties:
    @given(st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_star_and_tree_leaf_counts(self, n):
        assert len(build_star(n).leaves()) == n
        assert len(build_tree(n).leaves()) == n

    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=20, deadline=None)
    def test_deep_tree_depth_and_leaves(self, n, depth):
        h = build_deep_tree(n, depth=depth)
        assert h.depth == depth
        assert len(h.leaves()) == n

    @given(
        st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=8),
        st.integers(min_value=100, max_value=10_000),
    )
    @settings(max_examples=20, deadline=None)
    def test_dimension_allocation_sums(self, counts, total):
        h = build_star(len(counts))
        h.allocate_dimensions(total, counts)
        root_dim = h.nodes[h.root_id].dimension
        leaf_sum = sum(h.nodes[l].dimension for l in h.leaves())
        assert root_dim == leaf_sum
        # Rounding + the 8-dim floor keep the root near the target D.
        assert abs(root_dim - total) <= 8 * len(counts)


class TestBatchGroupProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=100),
        st.integers(min_value=1, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_of_indices(self, labels, batch_size):
        y = np.array(labels)
        groups = batch_groups(y, batch_size)
        seen = np.concatenate([idx for _, idx in groups]) if groups else np.array([])
        assert sorted(seen.tolist()) == list(range(len(labels)))
        for cls, idx in groups:
            assert len(idx) <= batch_size
            assert np.all(y[idx] == cls)


class TestRngProperties:
    @given(seeds, st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_spawned_seeds_unique(self, seed, count):
        spawned = spawn_seeds(seed, count)
        assert len(set(spawned)) == count
