"""Unit tests for the wire protocol (framing + serialization)."""

import numpy as np
import pytest

from repro.core.hypervector import random_bipolar
from repro.network.message import MessageKind
from repro.network.protocol import (
    Frame,
    ProtocolError,
    decode_frame,
    encode_frame,
)


class TestRoundtrip:
    def test_query_frame(self):
        queries = random_bipolar(512, count=7, seed=1)
        frame = decode_frame(encode_frame(MessageKind.QUERY, queries))
        assert frame.kind == MessageKind.QUERY
        assert frame.rows == 7 and frame.dimension == 512
        assert np.array_equal(frame.data, queries)

    def test_single_vector_promoted(self):
        hv = random_bipolar(64, seed=2)
        frame = decode_frame(encode_frame(MessageKind.QUERY, hv))
        assert frame.data.shape == (1, 64)

    def test_class_model_frame_floats(self):
        model = np.random.default_rng(3).standard_normal((5, 128)) * 100
        frame = decode_frame(encode_frame(MessageKind.CLASS_MODEL, model))
        assert frame.kind == MessageKind.CLASS_MODEL
        assert np.allclose(frame.data, model, rtol=1e-5)

    def test_compressed_query_narrow_ints(self):
        rng = np.random.default_rng(4)
        bundle = rng.integers(-25, 26, size=(2, 4000)).astype(float)
        blob = encode_frame(MessageKind.COMPRESSED_QUERY, bundle, aux=25)
        frame = decode_frame(blob)
        assert frame.aux == 25
        assert np.array_equal(frame.data, bundle)

    def test_residual_frame(self):
        residuals = np.random.default_rng(5).standard_normal((3, 32))
        frame = decode_frame(encode_frame(MessageKind.RESIDUALS, residuals))
        assert np.allclose(frame.data, residuals, atol=1e-5)


class TestWireEfficiency:
    def test_query_frames_pack_to_bits(self):
        queries = random_bipolar(4000, count=10, seed=6)
        blob = encode_frame(MessageKind.QUERY, queries)
        # 10 rows x 500 bytes + small header.
        assert len(blob) < 10 * 500 + 64

    def test_compressed_bundle_smaller_than_queries(self):
        queries = random_bipolar(4000, count=25, seed=7).astype(float)
        raw = encode_frame(MessageKind.QUERY, queries)
        bundle = queries.sum(axis=0)
        packed = encode_frame(
            MessageKind.COMPRESSED_QUERY, bundle, aux=25
        )
        assert len(packed) < len(raw) / 3


class TestCorruptionDetection:
    @pytest.fixture()
    def blob(self):
        return encode_frame(
            MessageKind.QUERY, random_bipolar(256, count=3, seed=8)
        )

    def test_payload_flip_detected(self, blob):
        corrupted = bytearray(blob)
        corrupted[-1] ^= 0xFF
        with pytest.raises(ProtocolError, match="checksum"):
            decode_frame(bytes(corrupted))

    def test_truncation_detected(self, blob):
        with pytest.raises(ProtocolError):
            decode_frame(blob[:-5])

    def test_bad_magic(self, blob):
        corrupted = b"XX" + blob[2:]
        with pytest.raises(ProtocolError, match="magic"):
            decode_frame(corrupted)

    def test_bad_version(self, blob):
        corrupted = blob[:2] + b"\x7f" + blob[3:]
        with pytest.raises(ProtocolError, match="version"):
            decode_frame(corrupted)

    def test_short_frame(self):
        with pytest.raises(ProtocolError, match="short"):
            decode_frame(b"\xed\x9d\x01")

    def test_unknown_kind(self, blob):
        corrupted = blob[:3] + b"\xfa" + blob[4:]
        with pytest.raises(ProtocolError):
            decode_frame(corrupted)


class TestValidation:
    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            encode_frame(MessageKind.QUERY, np.empty((1, 0)))

    def test_aux_out_of_range(self):
        with pytest.raises(ValueError):
            encode_frame(MessageKind.QUERY, np.ones(4), aux=-1)

    def test_frame_dataclass_properties(self):
        frame = Frame(kind=MessageKind.QUERY, data=np.ones((2, 8)))
        assert frame.rows == 2
        assert frame.dimension == 8
