"""Tests for the REPRO_SAN dynamic race sanitizer."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.hierarchy import HierarchicalInference
from repro.network.medium import get_medium
from repro.serve import ServeConfig, ServingRuntime, make_workload, sanitizer
from repro.serve.batcher import MicroBatcher
from repro.serve.queueing import BoundedQueue
from repro.serve.request import ServeRequest
from repro.serve.sanitizer import (
    GuardedList,
    OwnershipGuard,
    RaceError,
    SanitizedServeRequest,
)


@pytest.fixture()
def san():
    sanitizer.enable(True)
    yield sanitizer
    sanitizer.enable(False)


def _request(index=0):
    return SanitizedServeRequest(
        index=index, features=np.zeros(4), start_leaf=0
    )


class TestOwnershipGuard:
    def test_creator_may_mutate_freely(self):
        guard = OwnershipGuard("x")
        guard.on_mutate("set")
        guard.on_mutate("append")
        assert guard.generation == 2

    def test_mutation_while_enqueued_raises(self):
        guard = OwnershipGuard("x")
        guard.publish()
        with pytest.raises(RaceError, match="while it is enqueued"):
            guard.on_mutate("append")

    def test_acquire_then_mutate_is_allowed(self):
        guard = OwnershipGuard("x")
        guard.publish()
        guard.acquire()
        guard.on_mutate("set")  # no loop -> owner is None, allowed

    def test_acquire_detects_generation_drift(self):
        guard = OwnershipGuard("x")
        guard.publish()
        guard.generation += 1  # a mutation path that bypassed proxies
        with pytest.raises(RaceError, match="changed while enqueued"):
            guard.acquire()

    def test_foreign_task_mutation_raises(self):
        async def main():
            guard = OwnershipGuard("x")
            guard.publish()
            guard.acquire()  # owned by this task

            async def intruder():
                guard.on_mutate("append")

            task = asyncio.ensure_future(intruder())
            with pytest.raises(RaceError, match="owned by"):
                await task

        asyncio.run(main())


class TestGuardedList:
    def test_all_mutators_are_guarded(self):
        guard = OwnershipGuard("req")
        items = GuardedList([1, 2, 3], guard)
        guard.publish()
        for op in (
            lambda: items.append(4),
            lambda: items.extend([4]),
            lambda: items.insert(0, 4),
            lambda: items.remove(1),
            lambda: items.pop(),
            lambda: items.clear(),
            lambda: items.sort(),
            lambda: items.reverse(),
            lambda: items.__setitem__(0, 9),
            lambda: items.__delitem__(0),
            lambda: items.__iadd__([4]),
        ):
            with pytest.raises(RaceError):
                op()
        assert list(items) == [1, 2, 3]  # nothing went through

    def test_reads_are_never_guarded(self):
        guard = OwnershipGuard("req")
        items = GuardedList([1, 2], guard)
        guard.publish()
        assert items[0] == 1 and len(items) == 2 and list(items) == [1, 2]


class TestSanitizedRequest:
    def test_request_class_dispatch(self, san):
        assert sanitizer.request_class() is SanitizedServeRequest
        sanitizer.enable(False)
        assert sanitizer.request_class() is ServeRequest

    def test_setattr_is_guarded_after_publish(self):
        req = _request()
        req.decided = (1, 0.5, 0, 0)  # creator mutation: fine
        req._san_guard.publish()
        with pytest.raises(RaceError, match="set .decided"):
            req.decided = None

    def test_charged_path_is_guarded(self):
        req = _request()
        req.charged_path.append((1, 0))
        req._san_guard.publish()
        with pytest.raises(RaceError, match="append"):
            req.charged_path.append((2, 1))

    def test_timings_stay_unguarded(self):
        # delivery tasks legitimately update nested timing accumulators
        req = _request()
        req._san_guard.publish()
        req.timings.total_ms = 4.2
        assert req.timings.total_ms == 4.2


class TestQueueIntegration:
    def test_prefix_forward_interleaving_is_caught(self, san):
        """The PR-8 defect, replayed against the real queue/batcher:
        append after a successful ``put`` raises at the mutation."""

        async def main():
            queue = BoundedQueue(maxsize=8, policy="block")
            req = _request()
            await queue.put(req)
            with pytest.raises(RaceError, match="mutate before the handoff"):
                req.charged_path.append((1, 0))

        asyncio.run(main())

    def test_failed_put_leaves_ownership_with_producer(self, san):
        """Shed raises before the enqueue — the undo append/pop of the
        fixed ``_forward`` must stay legal."""
        from repro.serve.queueing import ShedError

        async def main():
            queue = BoundedQueue(maxsize=1, policy="shed")
            blocker = _request(0)
            await queue.put(blocker)
            req = _request(1)
            req.charged_path.append((1, 0))
            with pytest.raises(ShedError):
                await queue.put(req)
            req.charged_path.pop()  # producer still owns it

        asyncio.run(main())

    def test_batcher_transfers_ownership_to_consumer(self, san):
        async def main():
            queue = BoundedQueue(maxsize=8, policy="block")
            batcher = MicroBatcher(queue, max_batch=4, max_wait_ms=1.0)
            req = _request()
            await queue.put(req)
            (got,) = await batcher.next_batch()
            got.charged_path.append((1, 0))  # consumer owns it now
            got.decided = (1, 0.9, 0, 0)
            batcher.close()

        asyncio.run(main())

    def test_offer_also_publishes(self, san):
        async def main():
            queue = BoundedQueue(maxsize=8, policy="block")
            req = _request()
            assert queue.offer(req)
            with pytest.raises(RaceError):
                req.decided = (1, 0.5, 0, 0)

        asyncio.run(main())


class TestRuntimeUnderSanitizer:
    def test_full_serve_run_is_race_free(self, san, trained_federation):
        """The fixed runtime must complete a faulty+escalating workload
        with the sanitizer armed — zero false positives, answers equal
        to the offline walk."""
        federation, _, data = trained_federation
        inference = HierarchicalInference(
            federation, confidence_threshold=0.7
        )
        workload = make_workload(
            data.test_x[:64], inference, seed=3, labels=data.test_y[:64]
        )
        runtime = ServingRuntime(
            inference,
            get_medium("wired-1gbps"),
            ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=512),
        )
        result = runtime.serve_open_loop(workload, rate_rps=3000.0, seed=1)
        assert result.n_answered == len(workload)
        offline = inference.run(data.test_x[:64], seed=3)
        out = result.to_outcome()
        assert np.array_equal(out.labels, offline.labels)
        assert np.array_equal(out.deciding_node, offline.deciding_node)

    @pytest.mark.parametrize(
        "value,expect", [("", "False"), ("0", "False"), ("1", "True")]
    )
    def test_env_var_arms_the_sanitizer(self, value, expect):
        import os
        import subprocess
        import sys

        env = dict(os.environ, REPRO_SAN=value)
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.serve import sanitizer; print(sanitizer.enabled())",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == expect
