"""Direct unit tests for repro.utils.validation, including error paths."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_fitted,
    check_labels,
    check_matrix,
    check_positive,
    check_probability,
    check_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 2.5) == 2.5

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive("x", 0)

    def test_allow_zero(self):
        assert check_positive("x", 0, allow_zero=True) == 0
        with pytest.raises(ValueError, match="must be >= 0"):
            check_positive("x", -1, allow_zero=True)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="got -3"):
            check_positive("x", -3)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValueError, match="must be finite"):
            check_positive("x", bad)


class TestCheckProbability:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, ok):
        assert check_probability("p", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01, float("nan")])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            check_probability("p", bad)

    def test_returns_float(self):
        out = check_probability("p", 1)
        assert isinstance(out, float)


class TestCheckVector:
    def test_coerces_list_to_float64(self):
        out = check_vector("v", [1, 2, 3])
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_rejects_matrix(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            check_vector("v", [[1, 2], [3, 4]])

    def test_rejects_scalar(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            check_vector("v", 5.0)

    def test_length_check(self):
        assert check_vector("v", [1.0, 2.0], length=2).shape == (2,)
        with pytest.raises(ValueError, match="must have length 3, got 2"):
            check_vector("v", [1.0, 2.0], length=3)


class TestCheckMatrix:
    def test_promotes_vector_to_single_row(self):
        out = check_matrix("m", [1, 2, 3])
        assert out.shape == (1, 3)
        assert out.dtype == np.float64

    def test_passes_matrix_through(self):
        out = check_matrix("m", np.zeros((4, 2)))
        assert out.shape == (4, 2)

    def test_rejects_3d(self):
        with pytest.raises(ValueError, match="must be 2-D"):
            check_matrix("m", np.zeros((2, 2, 2)))

    def test_cols_check(self):
        assert check_matrix("m", np.zeros((3, 5)), cols=5).shape == (3, 5)
        with pytest.raises(ValueError, match="must have 4 columns, got 5"):
            check_matrix("m", np.zeros((3, 5)), cols=4)


class TestCheckFitted:
    class _Model:
        weights = None

    def test_raises_when_attr_is_none(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            check_fitted(self._Model(), "weights")

    def test_raises_when_attr_missing(self):
        with pytest.raises(RuntimeError, match="call fit"):
            check_fitted(self._Model(), "no_such_attr")

    def test_passes_when_set(self):
        model = self._Model()
        model.weights = np.ones(3)
        check_fitted(model, "weights")


class TestCheckLabels:
    def test_coerces_to_int64(self):
        out = check_labels("y", [0, 1, 2])
        assert out.dtype == np.int64

    def test_accepts_integer_valued_floats(self):
        out = check_labels("y", [0.0, 2.0])
        assert out.tolist() == [0, 2]

    def test_rejects_fractional_floats(self):
        with pytest.raises(ValueError, match="integer class indices"):
            check_labels("y", [0.5, 1.0])

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_labels("y", [0, -1])

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="must be 1-D"):
            check_labels("y", [[0, 1]])

    def test_n_classes_bound(self):
        assert check_labels("y", [0, 1], n_classes=2).tolist() == [0, 1]
        with pytest.raises(ValueError, match="label 2 >= n_classes=2"):
            check_labels("y", [0, 2], n_classes=2)

    def test_empty_labels_ok(self):
        out = check_labels("y", [])
        assert out.shape == (0,)
        assert out.dtype == np.int64
