"""Tier-1 smoke for the observability overhead guard (its --smoke mode).

Loads ``benchmarks/bench_obs_overhead.py`` and runs its scaled-down
checks: instrumentation must stay under the 5% budget on the encode hot
loop with observability disabled, and the per-request trace-guard cost
on the serving hot path must stay under 5% of disabled-mode serving
cost — the promise that leaving tracing compiled in never taxes a
production-shaped run.
"""

import importlib.util
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

_THRESHOLD = 0.05


def _load_bench_module():
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        "bench_obs_overhead_smoke", BENCH_DIR / "bench_obs_overhead.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_smoke_mode():
    bench = _load_bench_module()
    evidence = bench.run_smoke()
    assert evidence["encode_overhead"] < _THRESHOLD
    assert evidence["guard_overhead"] < _THRESHOLD
    # enabled-mode tracing is reported, and must not multiply cost
    assert evidence["enabled_overhead"] < 1.0


def test_bench_smoke_cli_entrypoint(capsys):
    bench = _load_bench_module()
    bench.main(["--smoke"])
    assert "obs overhead smoke OK" in capsys.readouterr().out
