"""Unit tests for the elastic topology control plane.

Pins the control plane's core contracts:

* **join bit-exactness** — a runtime-joined end node (and every refit
  ancestor) is bit-identical to a federation constructed at build time
  with the same grown topology and partition;
* **refit minimality** — untouched subtrees are not rebuilt or
  retrained by a mutation;
* **drain** — columns redistribute, emptied gateways cascade away, ids
  are never reused;
* **checkpoint/restore** — full controller state (models, residuals,
  propagation counter) round-trips bit-exactly;
* **fail/detect/respawn** — a crashed node is detected by lease
  expiry and recovers bit-exactly from checkpoint + journal replay;
* **fingerprint determinism** — same construction, same hash.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import make_classification
from repro.data.partition import FeaturePartition, partition_features
from repro.hierarchy import (
    EdgeHDFederation,
    HierarchicalInference,
    NodeLeaseMonitor,
    NodeState,
    OnlineLearner,
    TopologyController,
    build_deep_tree,
    build_tree,
)

N_FEATURES = 16
N_CLASSES = 3


def _config(**overrides):
    base = dict(
        dimension=512, batch_size=10, retrain_epochs=4, seed=17,
        confidence_threshold=0.3,
    )
    base.update(overrides)
    return EdgeHDConfig(**base)


@pytest.fixture(scope="module")
def data():
    x, y = make_classification(
        n_samples=240, n_features=N_FEATURES, n_classes=N_CLASSES,
        seed=11, name="ctl-fixture",
    )
    return x, y


def make_controller(data, *, with_learner=True, n_leaves=4, builder=None):
    x, y = data
    config = _config()
    hierarchy = (builder or build_tree)(n_leaves)
    partition = partition_features(N_FEATURES, len(hierarchy.leaves()))
    hierarchy.allocate_dimensions(config.dimension, partition.feature_counts())
    federation = EdgeHDFederation(hierarchy, partition, N_CLASSES, config)
    learner = OnlineLearner(federation) if with_learner else None
    controller = TopologyController(federation, x, y, learner=learner)
    controller.fit()
    return controller


def build_time_twin(controller, data, graft_under=None):
    """A federation trained from scratch on the controller's topology."""
    x, y = data
    fed = controller.federation
    hierarchy = build_tree(4)
    if graft_under == "root":
        hierarchy.graft_leaf(hierarchy.root_id)
    partition = FeaturePartition(slices=fed.partition.slices)
    hierarchy.allocate_dimensions(
        fed.config.dimension, partition.feature_counts()
    )
    twin = EdgeHDFederation(hierarchy, partition, N_CLASSES, fed.config)
    twin.fit_offline(x, y)
    return twin


def assert_models_equal(a: EdgeHDFederation, b: EdgeHDFederation) -> None:
    assert set(a.classifiers) == set(b.classifiers)
    for nid in a.classifiers:
        ma = a.classifiers[nid].class_hypervectors
        mb = b.classifiers[nid].class_hypervectors
        assert ma.shape == mb.shape, f"node {nid} shape"
        assert np.array_equal(ma, mb), f"node {nid} model differs"


class TestJoin:
    def test_joined_node_bit_exact_vs_build_time(self, data):
        controller = make_controller(data)
        result = controller.join(controller.federation.hierarchy.root_id)
        twin = build_time_twin(controller, data, graft_under="root")
        assert_models_equal(controller.federation, twin)
        assert result.node_id in controller.federation.hierarchy.leaves()

    def test_joined_node_served_answers_bit_identical(self, data):
        controller = make_controller(data)
        join = controller.join(controller.federation.hierarchy.root_id)
        twin = build_time_twin(controller, data, graft_under="root")
        x, _ = data
        start = np.full(50, join.node_id, dtype=np.int64)
        grown = HierarchicalInference(controller.federation).run(
            x[:50], start_leaves=start
        )
        built = HierarchicalInference(twin).run(x[:50], start_leaves=start)
        assert np.array_equal(grown.labels, built.labels)
        assert np.array_equal(grown.deciding_node, built.deciding_node)
        assert np.array_equal(grown.confidence, built.confidence)

    def test_untouched_subtree_not_refit(self, data):
        controller = make_controller(data)
        fed = controller.federation
        hierarchy = fed.hierarchy
        # Donate from the default donor; the other gateway's subtree
        # must keep its encoder *objects* (rebuild would replace them).
        donor_default = max(
            hierarchy.leaves(),
            key=lambda l: len(fed.partition.slices[hierarchy.nodes[l].leaf_index]),
        )
        untouched = [
            l for l in hierarchy.leaves()
            if hierarchy.nodes[l].parent != hierarchy.nodes[donor_default].parent
        ]
        before = {l: fed.encoders[l] for l in untouched}
        models = {
            l: fed.classifiers[l].class_hypervectors.copy() for l in untouched
        }
        result = controller.join(hierarchy.root_id)
        assert result.donors == (donor_default,)
        for l in untouched:
            assert l not in result.refit_nodes
            assert fed.encoders[l] is before[l]
            assert np.array_equal(
                fed.classifiers[l].class_hypervectors, models[l]
            )

    def test_explicit_columns(self, data):
        controller = make_controller(data)
        fed = controller.federation
        taken = fed.partition.slices[0][-1:] + fed.partition.slices[1][-1:]
        result = controller.join(
            fed.hierarchy.root_id, columns=taken
        )
        assert result.columns == tuple(sorted(taken))
        assert len(result.donors) == 2
        fed.partition.validate()

    def test_join_rejects_bad_inputs(self, data):
        controller = make_controller(data)
        fed = controller.federation
        leaf = fed.hierarchy.leaves()[0]
        with pytest.raises(KeyError):
            controller.join(999)
        with pytest.raises(ValueError, match="end node"):
            controller.join(leaf)
        with pytest.raises(ValueError, match="not part of"):
            controller.join(fed.hierarchy.root_id, columns=[N_FEATURES + 5])
        with pytest.raises(ValueError, match="duplicate"):
            controller.join(fed.hierarchy.root_id, columns=[0, 0])
        with pytest.raises(ValueError, match="without columns"):
            controller.join(
                fed.hierarchy.root_id, columns=list(fed.partition.slices[0])
            )

    def test_join_requires_trained_controller(self, data):
        x, y = data
        config = _config()
        hierarchy = build_tree(4)
        partition = partition_features(N_FEATURES, 4)
        hierarchy.allocate_dimensions(
            config.dimension, partition.feature_counts()
        )
        fed = EdgeHDFederation(hierarchy, partition, N_CLASSES, config)
        controller = TopologyController(fed, x, y)
        with pytest.raises(RuntimeError, match="fit"):
            controller.join(hierarchy.root_id)


class TestDrain:
    def test_drain_redistributes_columns(self, data):
        controller = make_controller(data)
        fed = controller.federation
        victim = fed.hierarchy.leaves()[0]
        n_before = fed.partition.n_features
        result = controller.drain(victim)
        assert victim in result.removed_nodes
        assert victim not in fed.hierarchy.nodes
        assert fed.partition.n_features == n_before
        fed.partition.validate()
        x, _ = data
        outcome = HierarchicalInference(fed).run(x[:20])
        assert outcome.labels.shape == (20,)

    def test_drain_cascades_empty_gateways(self, data):
        controller = make_controller(data)
        fed = controller.federation
        gateway = [
            nid for nid, node in fed.hierarchy.nodes.items()
            if node.level == 2
        ][0]
        a, b = fed.hierarchy.nodes[gateway].children
        controller.drain(a)
        result = controller.drain(b)
        assert set(result.removed_nodes) == {b, gateway}
        assert gateway not in fed.hierarchy.nodes
        assert gateway not in fed.classifiers

    def test_drain_then_join_never_reuses_ids(self, data):
        controller = make_controller(data)
        fed = controller.federation
        victim = fed.hierarchy.leaves()[0]
        controller.drain(victim)
        result = controller.join(fed.hierarchy.root_id)
        assert result.node_id != victim
        assert result.node_id > max(
            nid for nid in fed.hierarchy.nodes if nid != result.node_id
        )

    def test_drain_rejects_bad_inputs(self, data):
        controller = make_controller(data)
        fed = controller.federation
        with pytest.raises(KeyError):
            controller.drain(999)
        with pytest.raises(ValueError, match="not an end node"):
            controller.drain(fed.hierarchy.root_id)
        leaves = list(fed.hierarchy.leaves())
        for leaf in leaves[:-1]:
            controller.drain(leaf)
        with pytest.raises(ValueError, match="last end node"):
            controller.drain(fed.hierarchy.leaves()[0])

    def test_drain_deep_tree(self, data):
        controller = make_controller(
            data, n_leaves=4, builder=lambda n: build_deep_tree(n, depth=4)
        )
        fed = controller.federation
        victim = fed.hierarchy.leaves()[-1]
        controller.drain(victim)
        fed.partition.validate()
        assert victim not in fed.hierarchy.nodes


class TestCheckpointRestore:
    def test_round_trip_bit_exact(self, data, tmp_path):
        controller = make_controller(data)
        path = tmp_path / "topo.npz"
        controller.checkpoint(path)
        restored = TopologyController.restore(path, *data)
        assert_models_equal(controller.federation, restored.federation)
        assert restored.states == controller.states

    def test_round_trip_preserves_online_state(self, data, tmp_path):
        controller = make_controller(data)
        fed = controller.federation
        x, _ = data
        enc = fed.encode_all(x[:6])
        leaf = fed.hierarchy.leaves()[0]
        controller.record_feedback(
            leaf, enc[leaf][0].astype(np.float64), 0, 1
        )
        controller.learner.propagate()
        controller.record_feedback(
            leaf, enc[leaf][1].astype(np.float64), 1, 2
        )
        path = tmp_path / "topo.npz"
        controller.checkpoint(path)
        restored = TopologyController.restore(path, *data)
        assert restored.learner is not None
        assert (
            restored.learner._propagations
            == controller.learner._propagations
        )
        assert (
            restored.learner.pending_feedback()
            == controller.learner.pending_feedback()
        )
        for nid in controller.learner.residuals:
            a = controller.learner.residuals[nid]
            b = restored.learner.residuals[nid]
            assert np.array_equal(a.negative, b.negative)
            assert np.array_equal(a.positive, b.positive)
            assert np.array_equal(a.negative_counts, b.negative_counts)
            assert np.array_equal(a.positive_counts, b.positive_counts)
            assert a.feedback_count == b.feedback_count
        # ...and the next propagation is bit-identical on both sides.
        controller.learner.propagate()
        restored.learner.propagate()
        assert_models_equal(controller.federation, restored.federation)

    def test_checkpoint_after_mutation_round_trips(self, data, tmp_path):
        controller = make_controller(data)
        controller.join(controller.federation.hierarchy.root_id)
        controller.drain(controller.federation.hierarchy.leaves()[0])
        path = tmp_path / "topo.npz"
        controller.checkpoint(path)
        restored = TopologyController.restore(path, *data)
        assert_models_equal(controller.federation, restored.federation)
        assert (
            restored.federation.hierarchy.spec()
            == controller.federation.hierarchy.spec()
        )


class TestFailRespawn:
    def test_fail_wipes_and_respawn_restores_bit_exact(self, data, tmp_path):
        controller = make_controller(data)
        fed = controller.federation
        victim = fed.hierarchy.leaves()[0]
        path = tmp_path / "topo.npz"
        controller.heartbeat_active(0.0)
        controller.checkpoint(path)
        before = fed.classifiers[victim].class_hypervectors.copy()
        controller.fail(victim, now=0.1)
        assert controller.states[victim] is NodeState.CRASHED
        assert fed.classifiers[victim].class_hypervectors is None
        replayed = controller.respawn(victim, path, now=0.2)
        assert replayed == 0
        assert controller.states[victim] is NodeState.ACTIVE
        assert np.array_equal(
            fed.classifiers[victim].class_hypervectors, before
        )

    def test_journal_replay_covers_lost_and_buffered_feedback(
        self, data, tmp_path
    ):
        controller = make_controller(data)
        fed = controller.federation
        x, _ = data
        victim = fed.hierarchy.leaves()[0]
        enc = fed.encode_all(x[:8])
        path = tmp_path / "topo.npz"
        controller.checkpoint(path)
        hv = lambda i: enc[victim][i].astype(np.float64)
        applied = controller.record_feedback(victim, hv(0), 0, 1)
        assert applied
        controller.fail(victim)
        assert controller.learner.residuals[victim].feedback_count == 0
        buffered = controller.record_feedback(victim, hv(1), 1, 2)
        assert not buffered  # node down: journaled, not applied
        assert controller.learner.residuals[victim].feedback_count == 0
        replayed = controller.respawn(victim, path)
        assert replayed == 2  # the lost event and the buffered one
        assert controller.learner.residuals[victim].feedback_count == 2

    def test_respawned_node_matches_never_crashed_twin(self, data, tmp_path):
        crashed = make_controller(data)
        clean = make_controller(data)
        x, _ = data
        victim = crashed.federation.hierarchy.leaves()[0]
        enc = crashed.federation.encode_all(x[:8])
        path = tmp_path / "topo.npz"
        crashed.checkpoint(path)
        events = [
            (victim, enc[victim][i].astype(np.float64), i % N_CLASSES,
             (i + 1) % N_CLASSES)
            for i in range(4)
        ]
        for ctl in (crashed, clean):
            for e in events[:2]:
                ctl.record_feedback(*e)
        crashed.fail(victim)
        for ctl in (crashed, clean):
            for e in events[2:]:
                ctl.record_feedback(*e)
        crashed.respawn(victim, path)
        crashed.learner.propagate()
        clean.learner.propagate()
        assert_models_equal(crashed.federation, clean.federation)

    def test_detection_via_lease_expiry(self, data):
        controller = make_controller(data, with_learner=False)
        victim = controller.federation.hierarchy.leaves()[0]
        controller.heartbeat_active(0.0)
        controller.fail(victim, now=0.1)
        controller.heartbeat_active(0.5)
        assert controller.detect_failures(0.5) == []
        controller.heartbeat_active(1.0)  # victim stays silent
        detected = controller.detect_failures(1.2)
        assert detected == [victim]
        # reported exactly once
        controller.heartbeat_active(1.5)
        assert controller.detect_failures(1.6) == []

    def test_fail_rejects_root_and_double_crash(self, data):
        controller = make_controller(data, with_learner=False)
        fed = controller.federation
        with pytest.raises(ValueError, match="central node"):
            controller.fail(fed.hierarchy.root_id)
        victim = fed.hierarchy.leaves()[0]
        controller.fail(victim)
        with pytest.raises(ValueError, match="already crashed"):
            controller.fail(victim)
        with pytest.raises(ValueError, match="crashed"):
            controller.drain(victim)

    def test_respawn_requires_crashed_state(self, data, tmp_path):
        controller = make_controller(data)
        path = tmp_path / "topo.npz"
        controller.checkpoint(path)
        with pytest.raises(ValueError, match="not crashed"):
            controller.respawn(
                controller.federation.hierarchy.leaves()[0], path
            )


class TestFingerprint:
    def test_deterministic_across_constructions(self, data):
        a = make_controller(data)
        b = make_controller(data)
        assert a.fingerprint() == b.fingerprint()

    def test_changes_after_mutation(self, data):
        controller = make_controller(data)
        before = controller.fingerprint()
        controller.join(controller.federation.hierarchy.root_id)
        assert controller.fingerprint() != before


class TestLeaseMonitor:
    def test_track_beat_expire_release(self):
        monitor = NodeLeaseMonitor(lease_timeout_s=1.0)
        monitor.track(3, level=1, now=0.0)
        monitor.track(4, level=2, now=0.0)
        monitor.beat(3, 0.8)
        assert monitor.expired(1.5) == [4]
        assert monitor.expired(1.5) == []  # reported once
        assert monitor.lease_remaining(3, 1.0) == pytest.approx(0.8)
        monitor.release(3)
        assert monitor.expired(10.0) == []  # released: never reported
