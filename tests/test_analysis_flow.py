"""Tests for the dataflow engine and the REPRO111-113 analyses."""

import ast
import json

from repro.analysis import FLOW_RULE_IDS, lint_paths, select_rules
from repro.analysis.engine import LintEngine
from repro.analysis.fixtures import FIXTURES, PREFIX_FORWARD, run_fixtures
from repro.analysis.flow import (
    BACK,
    EXCEPTION,
    NORMAL,
    build_cfg,
    compute_handoff_summaries,
    flow_rules,
)
from repro.analysis.reporters import render_json

SERVE_PATH = "src/repro/serve/module.py"


def _cfg_of(source):
    func = ast.parse(source).body[0]
    return build_cfg(func)


def _lint(source, path=SERVE_PATH, rule_id=None):
    rules = flow_rules()
    if rule_id is not None:
        rules = [r for r in rules if r.rule_id == rule_id]
    return LintEngine(rules).lint_source(source, path=path)


class TestCFG:
    def test_linear_body_is_one_block(self):
        cfg = _cfg_of("def f(x):\n    a = x\n    b = a + 1\n    return b\n")
        populated = [b for b in cfg.blocks if b.statements]
        assert len(populated) == 1
        assert len(populated[0].statements) == 3

    def test_await_statement_gets_its_own_block(self):
        cfg = _cfg_of(
            "async def f(q, x):\n"
            "    a = x\n"
            "    await q.put(a)\n"
            "    b = a\n"
            "    return b\n"
        )
        await_blocks = [b for b in cfg.blocks if b.has_await]
        assert len(await_blocks) == 1
        assert len(await_blocks[0].statements) == 1
        # the await block has a normal successor carrying the tail
        kinds = {kind for _, kind in await_blocks[0].successors}
        assert NORMAL in kinds

    def test_if_branches_rejoin(self):
        cfg = _cfg_of(
            "def f(x):\n"
            "    if x:\n"
            "        y = 1\n"
            "    else:\n"
            "        y = 2\n"
            "    return y\n"
        )
        # both arms must reach the exit block
        reachable = set()
        stack = [cfg.entry]
        while stack:
            i = stack.pop()
            if i in reachable:
                continue
            reachable.add(i)
            stack.extend(s for s, _ in cfg.blocks[i].successors)
        assert cfg.exit in reachable

    def test_while_creates_back_edge(self):
        cfg = _cfg_of("def f(n):\n    while n:\n        n -= 1\n    return n\n")
        kinds = {
            kind for b in cfg.blocks for _, kind in b.successors
        }
        assert BACK in kinds

    def test_try_body_edges_into_handler(self):
        cfg = _cfg_of(
            "def f(q):\n"
            "    try:\n"
            "        x = q.pop()\n"
            "    except IndexError:\n"
            "        x = None\n"
            "    return x\n"
        )
        kinds = {kind for b in cfg.blocks for _, kind in b.successors}
        assert EXCEPTION in kinds


class TestAwaitBoundaryRace:
    def test_prefix_forward_fixture_is_flagged(self):
        findings = _lint(PREFIX_FORWARD, rule_id="REPRO111")
        assert len(findings) == 1
        (f,) = findings
        assert "charged_path.append" in f.message
        assert "queue.put" in f.message

    def test_witness_names_handoff_consumer_and_mutation(self):
        (f,) = _lint(PREFIX_FORWARD, rule_id="REPRO111")
        witness = f.extra["witness"]
        assert [w["step"] for w in witness] == [1, 2, 3]
        assert "queue.put(req" in witness[0]["event"]
        assert witness[1]["task"] == "the queue consumer"
        assert witness[2]["line"] == f.line
        assert "charged_path.append" in witness[2]["event"]

    def test_mutate_before_await_is_clean(self):
        src = (
            "async def f(q, req, edge):\n"
            "    req.charged_path.append(edge)\n"
            "    await q.put(req)\n"
        )
        assert _lint(src, rule_id="REPRO111") == []

    def test_pop_on_exception_edge_is_clean(self):
        # the PR-8 fix: a failed put never surrendered the item, so the
        # undo in the except arm is not a race
        src = (
            "async def f(q, req, edge):\n"
            "    req.charged_path.append(edge)\n"
            "    try:\n"
            "        await q.put(req)\n"
            "    except Exception:\n"
            "        req.charged_path.pop()\n"
            "        raise\n"
        )
        assert _lint(src, rule_id="REPRO111") == []

    def test_ensure_future_argument_escapes(self):
        src = (
            "import asyncio\n"
            "async def f(worker, batch):\n"
            "    asyncio.ensure_future(worker(batch))\n"
            "    await asyncio.sleep(0)\n"
            "    batch.append(1)\n"
        )
        findings = _lint(src, rule_id="REPRO111")
        assert [f.line for f in findings] == [5]

    def test_receiver_of_spawned_call_does_not_escape(self):
        src = (
            "import asyncio\n"
            "async def f(self, x):\n"
            "    asyncio.ensure_future(self.deliver(x))\n"
            "    await asyncio.sleep(0)\n"
            "    self.count += 1\n"
        )
        assert _lint(src, rule_id="REPRO111") == []

    def test_interprocedural_handoff_summary(self):
        src = (
            "async def hand_off(q, item):\n"
            "    await q.put(item)\n"
            "\n"
            "async def caller(q, req):\n"
            "    await hand_off(q, req)\n"
            "    req.decided = 1\n"
        )
        findings = _lint(src, rule_id="REPRO111")
        assert [f.line for f in findings] == [6]

    def test_only_serve_package_is_analyzed(self):
        findings = _lint(
            PREFIX_FORWARD,
            path="src/repro/core/module.py",
            rule_id="REPRO111",
        )
        assert findings == []

    def test_sync_functions_are_not_analyzed(self):
        src = (
            "def f(q, req, edge):\n"
            "    q.put_nowait(req)\n"
            "    req.charged_path.append(edge)\n"
        )
        assert _lint(src, rule_id="REPRO111") == []

    def test_loop_rebinding_kills_the_fact(self):
        # each iteration's req is a fresh object; the append at the top
        # of the next iteration must not be charged to the previous put
        src = (
            "async def f(q, cohort, edge):\n"
            "    for req in cohort:\n"
            "        req.charged_path.append(edge)\n"
            "        await q.put(req)\n"
        )
        assert _lint(src, rule_id="REPRO111") == []

    def test_suppression_spans_multiline_statement(self):
        src = (
            "async def f(q, req):\n"
            "    await q.put(req)\n"
            "    req.charged_path.append(  # repro-lint: disable=REPRO111\n"
            "        (1, 0)\n"
            "    )\n"
        )
        assert _lint(src, rule_id="REPRO111") == []

    def test_summaries_find_escaping_parameters(self):
        source = (
            "async def hand_off(q, item):\n"
            "    await q.put(item)\n"
        )
        ctxs = []
        engine = LintEngine([])
        findings, ctx = engine._lint_one(source, SERVE_PATH)
        assert findings == [] and ctx is not None
        summaries = compute_handoff_summaries([ctx])
        assert summaries["hand_off"].escaping == {"item": "whole"}


class TestSharedMemoryWrite:
    def test_subscript_store_through_attach_view(self):
        src = (
            "from repro.serve.shard import SharedModelStore\n"
            "def f(name, layout):\n"
            "    model, normalized, packed = SharedModelStore.attach(name, layout)\n"
            "    model[0] = 1.0\n"
        )
        findings = _lint(src, rule_id="REPRO112")
        assert [f.line for f in findings] == [4]

    def test_copy_then_write_is_clean(self):
        src = (
            "from repro.serve.shard import SharedModelStore\n"
            "def f(name, layout):\n"
            "    model, normalized, packed = SharedModelStore.attach(name, layout)\n"
            "    local = model.copy()\n"
            "    local[0] = 1.0\n"
            "    return local\n"
        )
        assert _lint(src, rule_id="REPRO112") == []

    def test_writeable_cast_is_flagged(self):
        src = (
            "def f(store, node):\n"
            "    view = store.node_views(node)\n"
            "    view.flags.writeable = True\n"
        )
        findings = _lint(src, rule_id="REPRO112")
        assert [f.line for f in findings] == [3]
        assert "read-only guard" in findings[0].message

    def test_numpy_copyto_into_view_is_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(store, node, fresh):\n"
            "    view = store.node_views(node)\n"
            "    np.copyto(view, fresh)\n"
        )
        findings = _lint(src, rule_id="REPRO112")
        assert [f.line for f in findings] == [4]

    def test_queue_put_is_not_numpy_put(self):
        src = (
            "def f(queue, store, node):\n"
            "    view = store.node_views(node)\n"
            "    queue.put(view)\n"
        )
        assert _lint(src, rule_id="REPRO112") == []

    def test_training_call_after_attach_model(self):
        src = (
            "def f(clf, model, normalized, packed, x, y):\n"
            "    clf.attach_model(model, normalized, packed)\n"
            "    clf.retrain(x, y)\n"
        )
        findings = _lint(src, rule_id="REPRO112")
        assert [f.line for f in findings] == [3]
        assert "retrain" in findings[0].message

    def test_inference_after_attach_model_is_clean(self):
        src = (
            "def f(clf, model, normalized, packed, x):\n"
            "    clf.attach_model(model, normalized, packed)\n"
            "    return clf.predict(x)\n"
        )
        assert _lint(src, rule_id="REPRO112") == []


class TestRngTagCollision:
    def test_duplicate_literals_flag_both_sites(self):
        src = (
            "from repro.utils.rng import derive_rng\n"
            "def a(seed):\n"
            "    return derive_rng(seed, 'faults')\n"
            "def b(seed):\n"
            "    return derive_rng(seed, tag='faults')\n"
        )
        findings = _lint(src, rule_id="REPRO113")
        assert sorted(f.line for f in findings) == [3, 5]
        assert all("collides_with" in f.extra for f in findings)

    def test_collision_extra_names_partner_site(self):
        src = (
            "from repro.utils.rng import derive_rng\n"
            "def a(seed):\n"
            "    return derive_rng(seed, 'faults')\n"
            "def b(seed):\n"
            "    return derive_rng(seed, 'faults')\n"
        )
        findings = _lint(src, rule_id="REPRO113")
        first = next(f for f in findings if f.line == 3)
        assert first.extra["collides_with"] == [f"{SERVE_PATH}:5"]

    def test_distinct_literals_are_clean(self):
        src = (
            "from repro.utils.rng import derive_rng\n"
            "def a(seed):\n"
            "    return derive_rng(seed, 'faults')\n"
            "def b(seed):\n"
            "    return derive_rng(seed, 'workload')\n"
        )
        assert _lint(src, rule_id="REPRO113") == []

    def test_literal_matching_fstring_skeleton(self):
        src = (
            "from repro.utils.rng import derive_rng\n"
            "def a(seed, node):\n"
            "    return derive_rng(seed, f'node-{node}')\n"
            "def b(seed):\n"
            "    return derive_rng(seed, 'node-7')\n"
        )
        findings = _lint(src, rule_id="REPRO113")
        assert [f.line for f in findings] == [5]
        assert "producible" in findings[0].message

    def test_adjacent_holes_are_flagged(self):
        src = (
            "from repro.utils.rng import derive_rng\n"
            "def a(seed, level, node):\n"
            "    return derive_rng(seed, f'n{level}{node}')\n"
        )
        findings = _lint(src, rule_id="REPRO113")
        assert [f.line for f in findings] == [3]
        assert "no separator" in findings[0].message

    def test_dynamic_tags_are_ignored(self):
        src = (
            "from repro.utils.rng import derive_rng\n"
            "def a(seed, tag):\n"
            "    return derive_rng(seed, tag)\n"
            "def b(seed, tag):\n"
            "    return derive_rng(seed, tag)\n"
        )
        assert _lint(src, rule_id="REPRO113") == []

    def test_collision_across_files(self):
        engine = LintEngine(
            [r for r in flow_rules() if r.rule_id == "REPRO113"]
        )
        src_a = "from repro.utils.rng import derive_rng\nr = derive_rng(1, 'x')\n"
        src_b = "from repro.utils.rng import derive_rng\nr = derive_rng(2, 'x')\n"
        _, ctx_a = engine._lint_one(src_a, "src/repro/a.py")
        _, ctx_b = engine._lint_one(src_b, "src/repro/b.py")
        findings = engine._project_findings([ctx_a, ctx_b])
        assert sorted(f.path for f in findings) == [
            "src/repro/a.py",
            "src/repro/b.py",
        ]


class TestFixturesAndWiring:
    def test_all_fixtures_hold(self):
        results = run_fixtures()
        assert len(results) == len(FIXTURES)
        failed = [case.name for case, _, ok in results if not ok]
        assert failed == []

    def test_flow_rules_are_not_in_defaults(self):
        default_ids = {r.rule_id for r in select_rules()}
        assert default_ids.isdisjoint(FLOW_RULE_IDS)

    def test_flow_flag_enables_dataflow_rules(self):
        ids = {r.rule_id for r in select_rules(flow=True)}
        assert set(FLOW_RULE_IDS) <= ids

    def test_selecting_a_flow_rule_enables_it_without_the_flag(self):
        rules = select_rules(select=["REPRO113"])
        assert [r.rule_id for r in rules] == ["REPRO113"]

    def test_lint_paths_flow_over_fixture_file(self, tmp_path):
        pkg = tmp_path / "src" / "repro" / "serve"
        pkg.mkdir(parents=True)
        target = pkg / "bad.py"
        target.write_text(PREFIX_FORWARD)
        findings = lint_paths([str(tmp_path)], flow=True)
        assert [f.rule_id for f in findings] == ["REPRO111"]

    def test_json_report_carries_the_witness(self):
        findings = _lint(PREFIX_FORWARD, rule_id="REPRO111")
        payload = json.loads(render_json(findings))
        assert payload["version"] == 2
        entry = payload["findings"][0]
        assert entry["extra"]["witness"][0]["step"] == 1
        assert entry["end_line"] >= entry["line"]
