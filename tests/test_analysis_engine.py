"""Engine mechanics: suppression comments, rule selection, parse
errors, reporters, and the ``repro lint`` CLI surface."""

import json
import textwrap

import pytest

import repro.cli as cli
from repro.analysis import (
    PARSE_ERROR_ID,
    Finding,
    LintEngine,
    default_rules,
    lint_source,
    render_json,
    render_text,
    select_rules,
    summarize,
)


def findings_for(source, path="<string>"):
    return lint_source(textwrap.dedent(source), path=path)


class TestSuppression:
    def test_line_suppression(self):
        findings = findings_for(
            """
            import numpy as np
            a = np.random.rand(3)  # repro-lint: disable=REPRO101
            b = np.random.rand(3)
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO101"]
        assert findings[0].line == 4

    def test_line_suppression_multiple_rules(self):
        findings = findings_for(
            """
            import numpy as np

            async def f(packed):
                open("x")  # repro-lint: disable=REPRO102, REPRO103
            """
        )
        assert findings == []

    def test_multiline_statement_suppressed_on_first_line(self):
        findings = findings_for(
            """
            import numpy as np
            a = np.random.rand(  # repro-lint: disable=REPRO101
                3,
                4,
            )
            """
        )
        assert findings == []

    def test_multiline_statement_suppressed_on_inner_line(self):
        # the offending call starts on the assignment line but the
        # comment sits two lines later, still inside the statement span
        findings = findings_for(
            """
            import numpy as np
            a = np.random.rand(
                3,
                4,  # repro-lint: disable=REPRO101
            )
            """
        )
        assert findings == []

    def test_multiline_suppression_does_not_leak_past_statement(self):
        findings = findings_for(
            """
            import numpy as np
            a = np.random.rand(
                3,  # repro-lint: disable=REPRO101
            )
            b = np.random.rand(3)
            """
        )
        assert [f.line for f in findings] == [6]

    def test_finding_span_covers_multiline_statement(self):
        findings = findings_for(
            """
            import numpy as np
            a = np.random.rand(
                3,
                4,
            )
            """
        )
        (f,) = findings
        assert f.span() == (3, 6)

    def test_file_level_suppression_in_header(self):
        findings = findings_for(
            """
            # Fixture module exercising legacy RNG on purpose.
            # repro-lint: disable=REPRO101
            import numpy as np

            a = np.random.rand(3)
            b = np.random.rand(3)
            """
        )
        assert findings == []

    def test_disable_all(self):
        findings = findings_for(
            """
            import numpy as np
            a = np.random.rand(3)  # repro-lint: disable=all
            """
        )
        assert findings == []

    def test_suppression_is_rule_specific(self):
        findings = findings_for(
            """
            import numpy as np
            a = np.random.rand(3)  # repro-lint: disable=REPRO104
            """
        )
        assert [f.rule_id for f in findings] == ["REPRO101"]


class TestEngineBasics:
    def test_parse_error_becomes_finding(self):
        findings = lint_source("def broken(:\n", path="bad.py")
        assert len(findings) == 1
        assert findings[0].rule_id == PARSE_ERROR_ID
        assert findings[0].severity == "error"

    def test_findings_sorted_by_position(self):
        findings = findings_for(
            """
            import numpy as np

            def late(acc=[]):
                return np.random.rand(3)

            a = np.random.rand(3)
            """
        )
        positions = [(f.line, f.col, f.rule_id) for f in findings]
        assert positions == sorted(positions)

    def test_lint_paths_missing_path_raises(self, tmp_path):
        engine = LintEngine(default_rules())
        with pytest.raises(FileNotFoundError):
            engine.lint_paths([str(tmp_path / "nope")])

    def test_lint_paths_walks_directories(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "good.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "bad.py").write_text("import random\n")
        (tmp_path / "pkg" / "notes.txt").write_text("import random\n")
        engine = LintEngine(default_rules())
        findings = engine.lint_paths([str(tmp_path)])
        assert [f.rule_id for f in findings] == ["REPRO101"]
        assert findings[0].path.endswith("bad.py")


class TestSelection:
    def test_select_restricts_rules(self):
        rules = select_rules(select=["REPRO101"])
        assert [r.rule_id for r in rules] == ["REPRO101"]

    def test_ignore_removes_rules(self):
        rules = select_rules(ignore=["repro108"])
        assert "REPRO108" not in {r.rule_id for r in rules}
        assert len(rules) == len(default_rules()) - 1

    def test_unknown_rule_id_raises(self):
        with pytest.raises(ValueError, match="REPRO999"):
            select_rules(select=["REPRO999"])
        with pytest.raises(ValueError, match="unknown"):
            select_rules(ignore=["nope"])

    def test_selected_engine_only_reports_selected(self):
        source = textwrap.dedent(
            """
            import numpy as np

            def f(acc=[]):
                return np.random.rand(3)
            """
        )
        engine = LintEngine(select_rules(select=["REPRO106"]))
        findings = engine.lint_source(source, path="<string>")
        assert [f.rule_id for f in findings] == ["REPRO106"]


class TestReporters:
    def _sample(self):
        return [
            Finding(
                path="src/x.py",
                line=3,
                col=5,
                rule_id="REPRO101",
                severity="error",
                message="legacy RNG",
                autofix_hint="use derive_rng",
            ),
            Finding(
                path="src/y.py",
                line=9,
                col=1,
                rule_id="REPRO108",
                severity="warning",
                message="unvalidated input",
            ),
        ]

    def test_summarize(self):
        summary = summarize(self._sample())
        assert summary["total"] == 2
        assert summary["by_severity"] == {"error": 1, "warning": 1}
        assert summary["by_rule"] == {"REPRO101": 1, "REPRO108": 1}

    def test_render_text_lists_each_finding(self):
        text = render_text(self._sample())
        assert "src/x.py:3:5: REPRO101 [error] legacy RNG" in text
        assert "(fix: use derive_rng)" in text
        assert "2 finding(s)" in text

    def test_render_text_clean(self):
        assert "no findings" in render_text([])

    def test_render_json_schema(self):
        payload = json.loads(render_json(self._sample()))
        assert payload["version"] == 2
        assert payload["summary"]["total"] == 2
        assert payload["findings"][0] == {
            "path": "src/x.py",
            "line": 3,
            "col": 5,
            "rule": "REPRO101",
            "severity": "error",
            "message": "legacy RNG",
            "autofix_hint": "use derive_rng",
            "end_line": 3,
        }


class TestCli:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        rc = cli.main(["lint", str(target)])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_lint_dirty_file_exits_one(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import random\n")
        rc = cli.main(["lint", str(target)])
        assert rc == 1
        assert "REPRO101" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import random\n")
        rc = cli.main(["lint", str(target), "--format", "json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["by_rule"] == {"REPRO101": 1}

    def test_lint_ignore_flag(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import random\n")
        assert cli.main(["lint", str(target), "--ignore", "REPRO101"]) == 0

    def test_lint_select_flag(self, tmp_path):
        target = tmp_path / "dirty.py"
        target.write_text("import random\ndef f(acc=[]):\n    return acc\n")
        assert cli.main(["lint", str(target), "--select", "REPRO106"]) == 1

    def test_lint_unknown_rule_exits_two(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        rc = cli.main(["lint", str(target), "--select", "REPRO999"])
        assert rc == 2
        assert "REPRO999" in capsys.readouterr().err

    def test_lint_missing_path_exits_two(self, tmp_path, capsys):
        rc = cli.main(["lint", str(tmp_path / "missing")])
        assert rc == 2
        assert "missing" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = cli.main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for rule in default_rules():
            assert rule.rule_id in out
        for rule_id in ("REPRO111", "REPRO112", "REPRO113"):
            assert rule_id in out

    def test_flow_flag_runs_dataflow_rules(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "serve"
        pkg.mkdir(parents=True)
        target = pkg / "bad.py"
        target.write_text(
            "async def f(q, req, edge):\n"
            "    await q.put(req)\n"
            "    req.charged_path.append(edge)\n"
        )
        assert cli.main(["lint", str(tmp_path)]) == 0  # default: off
        capsys.readouterr()
        rc = cli.main(["lint", str(tmp_path), "--flow"])
        assert rc == 1
        assert "REPRO111" in capsys.readouterr().out

    def test_flow_json_includes_witness(self, tmp_path, capsys):
        pkg = tmp_path / "src" / "repro" / "serve"
        pkg.mkdir(parents=True)
        (pkg / "bad.py").write_text(
            "async def f(q, req, edge):\n"
            "    await q.put(req)\n"
            "    req.charged_path.append(edge)\n"
        )
        rc = cli.main(
            ["lint", str(tmp_path), "--flow", "--format", "json"]
        )
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["extra"]["witness"][1]["task"]

    def test_selecting_flow_rule_without_flag(self, tmp_path):
        target = tmp_path / "tags.py"
        target.write_text(
            "from repro.utils.rng import derive_rng\n"
            "a = derive_rng(1, 'x')\n"
            "b = derive_rng(2, 'x')\n"
        )
        assert cli.main(["lint", str(target), "--select", "REPRO113"]) == 1

    def test_fixtures_self_test_passes(self, capsys):
        rc = cli.main(["lint", "--fixtures"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "all pinned behaviours hold" in out
        assert "REPRO111 prefix-forward-race" in out
