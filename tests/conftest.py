"""Shared fixtures: small datasets and trained federations.

Fixtures are deliberately small (hundreds of samples, D in the low
hundreds) so the full suite stays fast; the benchmarks exercise
paper-scale parameters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import load_dataset, make_classification, partition_features
from repro.hierarchy import EdgeHDFederation, build_tree


@pytest.fixture(scope="session")
def small_data():
    """A small non-linearly separable dataset (features, labels)."""
    return make_classification(
        n_samples=400, n_features=20, n_classes=3, seed=11, name="fixture"
    )


@pytest.fixture(scope="session")
def small_split(small_data):
    """(train_x, train_y, test_x, test_y) split of small_data."""
    x, y = small_data
    return x[:300], y[:300], x[300:], y[300:]


@pytest.fixture(scope="session")
def apri_small():
    """Scaled-down APRI stand-in (36 features, 2 classes, 3 end nodes)."""
    return load_dataset("APRI", scale=0.1, max_train=900, max_test=300, seed=5)


@pytest.fixture(scope="session")
def small_config():
    return EdgeHDConfig(
        dimension=1024, batch_size=10, retrain_epochs=8, seed=17
    )


@pytest.fixture(scope="session")
def trained_federation(apri_small, small_config):
    """A 3-end-node TREE federation trained on the APRI stand-in."""
    partition = partition_features(apri_small.n_features, 3)
    hierarchy = build_tree(3)
    federation = EdgeHDFederation(
        hierarchy, partition, apri_small.n_classes, small_config
    )
    report = federation.fit_offline(apri_small.train_x, apri_small.train_y)
    return federation, report, apri_small


@pytest.fixture()
def rng():
    return np.random.default_rng(123)
