"""Tier-1 smoke for the lint ratchet benchmark.

Loads ``benchmarks/bench_lint.py`` and runs its timing-independent
checks: the src/ tree must be clean under ``repro lint --flow`` and
every pinned defect fixture must still be detected — the guard that a
refactor of the analyses can never silently blunt them.
"""

import importlib.util
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module():
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        "bench_lint_smoke", BENCH_DIR / "bench_lint.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_tree_is_clean_and_counts_are_shaped():
    bench = _load_bench_module()
    tree = bench._lint_tree()
    assert tree["findings_total"] == 0
    assert set(tree["flow_rules"]) == {"REPRO111", "REPRO112", "REPRO113"}
    assert len(tree["findings_by_rule"]) == 13
    assert tree["files"] > 50


def test_fixture_detectors_stay_sharp():
    bench = _load_bench_module()
    fixtures = bench._fixture_results()
    assert fixtures["passed"] == fixtures["total"] > 0
    case = fixtures["cases"]["prefix-forward-race"]
    assert case["ok"] and case["flagged_lines"] == case["expected_lines"]
