"""Property-based tests for the v2 topology checkpoint format.

Hypothesis generates random topologies (STAR / TREE / deep trees),
off-word dimensions, and model value families (dense floats, binarized
signs and their packed words, quantize-roundtripped values), and checks
the format's two contracts:

* **bit-exact round trip** — every model array, residual stack, count
  vector, lifecycle state and learner parameter survives
  ``save_topology_state`` → ``load_topology_state`` unchanged;
* **no silent corruption** — truncated archives, flipped format
  versions, missing arrays and garbage files all raise
  :class:`CheckpointError`, never a half-loaded federation.

Models are installed directly (``set_model``) rather than trained —
the format must round-trip any valid model stack, and this keeps each
Hypothesis example cheap.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EdgeHDConfig
from repro.core.hypervector import sign_binarize
from repro.core.quantize import dequantize_model, quantize_model
from repro.data.partition import partition_features
from repro.hierarchy.checkpoint import (
    CheckpointError,
    load_topology_state,
    save_topology_state,
)
from repro.hierarchy.federation import EdgeHDFederation
from repro.hierarchy.online import OnlineLearner
from repro.hierarchy.topology import build_deep_tree, build_star, build_tree
from repro.utils.rng import derive_rng

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def _build(layout: str, n_leaves: int):
    if layout == "star":
        return build_star(n_leaves)
    if layout == "tree":
        return build_tree(n_leaves)
    return build_deep_tree(n_leaves, depth=3)


@st.composite
def federation_with_models(draw):
    """A federation with directly-installed models of a drawn family."""
    layout = draw(st.sampled_from(["star", "tree", "deep"]))
    n_leaves = draw(st.integers(min_value=2, max_value=5))
    n_classes = draw(st.integers(min_value=2, max_value=4))
    n_features = draw(st.integers(min_value=n_leaves, max_value=20))
    # deliberately includes dimensions that are not multiples of 64
    # (off-word): the packed/binarized paths must not round them.
    dimension = draw(st.integers(min_value=65, max_value=300))
    kind = draw(st.sampled_from(["dense", "binarized", "quantized"]))
    seed = draw(seeds)
    hierarchy = _build(layout, n_leaves)
    partition = partition_features(n_features, n_leaves)
    config = EdgeHDConfig(
        dimension=dimension, batch_size=10, retrain_epochs=1, seed=seed
    )
    hierarchy.allocate_dimensions(dimension, partition.feature_counts())
    federation = EdgeHDFederation(hierarchy, partition, n_classes, config)
    for offset, nid in enumerate(sorted(hierarchy.nodes)):
        node = hierarchy.nodes[nid]
        rng = derive_rng(seed + offset, "ckpt-prop-model")
        model = rng.normal(size=(n_classes, node.dimension))
        if kind == "binarized":
            model = sign_binarize(model)
        elif kind == "quantized":
            model = dequantize_model(quantize_model(model))
        federation.classifiers[nid].set_model(model.astype(np.float64))
    return federation, kind, seed


def _fill_learner(federation: EdgeHDFederation, seed: int) -> OnlineLearner:
    learner = OnlineLearner(federation)
    learner._propagations = seed % 7
    for offset, (nid, acc) in enumerate(sorted(learner.residuals.items())):
        rng = derive_rng(seed + offset, "ckpt-prop-residual")
        acc.negative = rng.normal(size=acc.negative.shape)
        acc.positive = rng.normal(size=acc.positive.shape)
        acc.negative_counts = rng.integers(
            0, 5, size=acc.negative_counts.shape
        ).astype(np.int64)
        acc.positive_counts = rng.integers(
            0, 5, size=acc.positive_counts.shape
        ).astype(np.int64)
        acc.feedback_count = int(acc.negative_counts.sum())
    return learner


class TestRoundTripProperties:
    @given(setup=federation_with_models())
    @settings(max_examples=15, deadline=None)
    def test_models_round_trip_bit_exact(self, setup, tmp_path_factory):
        federation, kind, _ = setup
        path = tmp_path_factory.mktemp("ckpt") / "topo.npz"
        save_topology_state(federation, path)
        ckpt = load_topology_state(path)
        restored = ckpt.federation
        assert restored is not None
        assert set(restored.classifiers) == set(federation.classifiers)
        for nid, clf in federation.classifiers.items():
            original = clf.class_hypervectors
            loaded = restored.classifiers[nid].class_hypervectors
            assert loaded.dtype == original.dtype
            assert np.array_equal(loaded, original), f"node {nid} ({kind})"

    @given(setup=federation_with_models())
    @settings(max_examples=10, deadline=None)
    def test_packed_words_round_trip_bit_exact(self, setup, tmp_path_factory):
        from repro.core.kernels import pack_bits

        federation, _, _ = setup
        # force a sign model so packing is exact (off-word dims stay)
        for clf in federation.classifiers.values():
            clf.set_model(sign_binarize(clf.class_hypervectors))
        path = tmp_path_factory.mktemp("ckpt") / "topo.npz"
        save_topology_state(federation, path)
        restored = load_topology_state(path).federation
        for nid, clf in federation.classifiers.items():
            before = pack_bits(clf.class_hypervectors)
            after = pack_bits(restored.classifiers[nid].class_hypervectors)
            assert before.dimension == after.dimension
            assert np.array_equal(before.words, after.words)

    @given(setup=federation_with_models())
    @settings(max_examples=10, deadline=None)
    def test_online_state_round_trips_bit_exact(
        self, setup, tmp_path_factory
    ):
        federation, _, seed = setup
        learner = _fill_learner(federation, seed)
        path = tmp_path_factory.mktemp("ckpt") / "topo.npz"
        states = {nid: "active" for nid in federation.hierarchy.nodes}
        victim = federation.hierarchy.leaves()[0]
        states[victim] = "crashed"
        save_topology_state(
            federation, path, learner=learner,
            node_states=states, journal_seq=seed % 13,
        )
        ckpt = load_topology_state(path)
        assert ckpt.journal_seq == seed % 13
        assert ckpt.node_states == states
        restored = ckpt.build_learner()
        assert restored is not None
        assert restored._propagations == learner._propagations
        assert set(restored.residuals) == set(learner.residuals)
        for nid, acc in learner.residuals.items():
            loaded = restored.residuals[nid]
            assert np.array_equal(loaded.negative, acc.negative)
            assert np.array_equal(loaded.positive, acc.positive)
            assert np.array_equal(
                loaded.negative_counts, acc.negative_counts
            )
            assert np.array_equal(
                loaded.positive_counts, acc.positive_counts
            )
            assert loaded.feedback_count == acc.feedback_count

    @given(setup=federation_with_models())
    @settings(max_examples=10, deadline=None)
    def test_hierarchy_spec_round_trips(self, setup, tmp_path_factory):
        federation, _, _ = setup
        path = tmp_path_factory.mktemp("ckpt") / "topo.npz"
        save_topology_state(federation, path)
        restored = load_topology_state(path).federation
        assert restored.hierarchy.spec() == federation.hierarchy.spec()
        assert restored.partition.slices == federation.partition.slices
        assert restored.config == federation.config


@pytest.fixture(scope="module")
def saved_checkpoint(tmp_path_factory):
    hierarchy = build_tree(3)
    partition = partition_features(12, 3)
    config = EdgeHDConfig(dimension=130, batch_size=10, seed=3)
    hierarchy.allocate_dimensions(config.dimension, partition.feature_counts())
    federation = EdgeHDFederation(hierarchy, partition, 3, config)
    rng = np.random.default_rng(0)
    for nid, node in hierarchy.nodes.items():
        federation.classifiers[nid].set_model(
            rng.normal(size=(3, node.dimension))
        )
    path = tmp_path_factory.mktemp("corrupt") / "topo.npz"
    save_topology_state(federation, path)
    return path


class TestCorruptionDetection:
    @given(percent=st.integers(min_value=1, max_value=95))
    @settings(max_examples=15, deadline=None)
    def test_truncated_archive_raises(
        self, percent, saved_checkpoint, tmp_path_factory
    ):
        raw = saved_checkpoint.read_bytes()
        cut = max(1, len(raw) * percent // 100)
        target = tmp_path_factory.mktemp("trunc") / "topo.npz"
        target.write_bytes(raw[:cut])
        with pytest.raises(CheckpointError, match=str(target)):
            load_topology_state(target)

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a numpy archive at all")
        with pytest.raises(CheckpointError, match="not a readable"):
            load_topology_state(path)

    def test_version_mismatch_raises(self, saved_checkpoint, tmp_path):
        import json

        data = dict(np.load(saved_checkpoint, allow_pickle=False))
        meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        meta["format_version"] = 99
        data["meta"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        )
        target = tmp_path / "vers.npz"
        np.savez_compressed(str(target), **data)
        with pytest.raises(CheckpointError, match="version"):
            load_topology_state(target)

    def test_missing_model_array_raises(self, saved_checkpoint, tmp_path):
        data = dict(np.load(saved_checkpoint, allow_pickle=False))
        del data["model_0"]
        target = tmp_path / "missing.npz"
        np.savez_compressed(str(target), **data)
        with pytest.raises(
            CheckpointError, match="missing model for node 0"
        ):
            load_topology_state(target)

    def test_missing_meta_raises(self, saved_checkpoint, tmp_path):
        data = dict(np.load(saved_checkpoint, allow_pickle=False))
        del data["meta"]
        target = tmp_path / "nometa.npz"
        np.savez_compressed(str(target), **data)
        with pytest.raises(CheckpointError, match="metadata"):
            load_topology_state(target)
