"""Labeled metrics, registry merge, OpenMetrics, telemetry, flight recorder.

The observability surfaces added for the serving stack: series-key
labeled instruments and :meth:`MetricsRegistry.merge` (what ``repro
stats --merge`` folds per-worker dumps with), the OpenMetrics text
round trip, the :class:`TelemetrySampler` time-series path and the
:class:`FlightRecorder` fault ring. Trace-context propagation through
the serving runtime itself lives in ``test_serve_tracing``.
"""

from __future__ import annotations

import asyncio
import json
import math

import pytest

import repro.obs as obs
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    TelemetryLog,
    TelemetrySampler,
    format_series_key,
    parse_openmetrics,
    parse_series_key,
    render_openmetrics,
)
from repro.obs.telemetry import FlightEvent


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test starts and ends with observability off and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestSeriesKeys:
    def test_plain_name_unchanged(self):
        assert format_series_key("serve.queue") == "serve.queue"
        assert parse_series_key("serve.queue") == ("serve.queue", {})

    def test_labels_sorted_and_stringified(self):
        key = format_series_key("q.depth", {"node": 3, "az": "west"})
        assert key == 'q.depth{az="west",node="3"}'

    def test_parse_inverts_format(self):
        labels = {"node": "7", "stage": "encode"}
        name, parsed = parse_series_key(format_series_key("m.x", labels))
        assert name == "m.x"
        assert parsed == labels

    def test_label_order_is_canonical(self):
        a = format_series_key("m", {"b": 1, "a": 2})
        b = format_series_key("m", {"a": 2, "b": 1})
        assert a == b


class TestLabeledRegistry:
    def test_label_sets_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits", labels={"node": 0}).inc(2)
        reg.counter("hits", labels={"node": 1}).inc(5)
        reg.counter("hits").inc(1)
        assert len(reg) == 3
        assert reg.counter("hits", labels={"node": 0}).value == 2
        assert reg.counter("hits", labels={"node": 1}).value == 5
        assert reg.counter("hits").value == 1

    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        first = reg.gauge("depth", labels={"node": 2, "kind": "q"})
        second = reg.gauge("depth", labels={"kind": "q", "node": 2})
        assert first is second

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("m", labels={"node": 1})
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("m", labels={"node": 1})

    def test_snapshot_round_trips_labels(self):
        reg = MetricsRegistry()
        reg.counter("c", labels={"node": 4}).inc(9)
        reg.gauge("g", labels={"node": 4}).set(1.5)
        reg.histogram("h", bounds=(1.0, 2.0), labels={"node": 4}).observe(1.2)
        restored = MetricsRegistry()
        restored.load_snapshot(reg.snapshot())
        assert restored.snapshot() == reg.snapshot()
        assert restored.counter("c", labels={"node": 4}).value == 9

    def test_fast_path_helpers_accept_labels(self):
        obs.enable()
        obs.incr("f.hits", labels={"node": 5})
        obs.gauge_set("f.depth", 3, labels={"node": 5})
        obs.observe("f.ms", 0.5, bounds=(1.0,), labels={"node": 5})
        reg = obs.get_registry()
        assert 'f.hits{node="5"}' in reg
        assert 'f.depth{node="5"}' in reg
        assert 'f.ms{node="5"}' in reg


class TestRegistryMerge:
    def test_counters_add(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n", labels={"node": 1}).inc(3)
        b.counter("n", labels={"node": 1}).inc(4)
        assert a.merge(b) is a
        assert a.counter("n", labels={"node": 1}).value == 7

    def test_gauges_last_writer_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").set(10)
        b.gauge("depth").set(2)
        a.merge(b)
        assert a.gauge("depth").value == 2

    def test_histogram_buckets_sum(self):
        bounds = (1.0, 2.0, 4.0)
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (0.5, 1.5):
            a.histogram("lat", bounds=bounds).observe(value)
        for value in (3.0, 9.0):
            b.histogram("lat", bounds=bounds).observe(value)
        a.merge(b)
        merged = a.histogram("lat", bounds=bounds)
        assert merged.count == 4
        assert merged.total == pytest.approx(14.0)
        assert merged.counts == [1, 1, 1, 1]
        assert merged.vmin == 0.5
        assert merged.vmax == 9.0

    def test_disjoint_keys_are_copied_independently(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("only.b").inc(5)
        a.merge(b)
        a.counter("only.b").inc(1)
        assert a.counter("only.b").value == 6
        assert b.counter("only.b").value == 5

    def test_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("m")
        b.gauge("m")
        with pytest.raises(TypeError, match="cannot merge"):
            a.merge(b)

    def test_bounds_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=(1.0, 2.0))
        b.histogram("h", bounds=(1.0, 3.0))
        with pytest.raises(ValueError, match="bucket bounds"):
            a.merge(b)


class TestOpenMetrics:
    def test_counter_gets_total_suffix(self):
        reg = MetricsRegistry()
        reg.counter("serve.requests", labels={"node": 2}).inc(7)
        text = render_openmetrics(reg)
        assert "# TYPE serve_requests counter" in text
        assert "# HELP serve_requests source metric serve.requests" in text
        assert 'serve_requests_total{node="2"} 7' in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat.ms", bounds=(1.0, 2.0))
        for value in (0.5, 0.7, 1.5, 9.0):
            hist.observe(value)
        families = parse_openmetrics(render_openmetrics(reg))
        samples = {
            (name, labels.get("le")): value
            for name, labels, value in families["lat_ms"]["samples"]
        }
        assert samples[("lat_ms_bucket", "1.0")] == 2
        assert samples[("lat_ms_bucket", "2.0")] == 3
        assert samples[("lat_ms_bucket", "+Inf")] == 4
        assert samples[("lat_ms_count", None)] == 4
        assert samples[("lat_ms_sum", None)] == pytest.approx(11.7)

    def test_round_trip_preserves_families_and_labels(self):
        reg = MetricsRegistry()
        reg.counter("a.count", labels={"node": 1}).inc(2)
        reg.counter("a.count", labels={"node": 2}).inc(3)
        reg.gauge("b.depth", labels={"node": 1}).set(4.5)
        reg.histogram("c.ms", bounds=(1.0,)).observe(0.5)
        families = parse_openmetrics(render_openmetrics(reg))
        assert set(families) == {"a_count", "b_depth", "c_ms"}
        assert families["a_count"]["type"] == "counter"
        assert families["b_depth"]["type"] == "gauge"
        assert families["c_ms"]["type"] == "histogram"
        counter_samples = families["a_count"]["samples"]
        assert ("a_count_total", {"node": "1"}, 2.0) in counter_samples
        assert ("a_count_total", {"node": "2"}, 3.0) in counter_samples

    def test_label_value_escaping_round_trips(self):
        reg = MetricsRegistry()
        tricky = 'quote " slash \\ newline \n end'
        reg.gauge("g", labels={"path": tricky}).set(1)
        families = parse_openmetrics(render_openmetrics(reg))
        ((_, labels, _),) = families["g"]["samples"]
        assert labels["path"] == tricky

    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            parse_openmetrics("# TYPE x gauge\nx 1\n")

    def test_content_after_eof_rejected(self):
        with pytest.raises(ValueError, match="after # EOF"):
            parse_openmetrics("# EOF\nx 1\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_openmetrics("# TYPE x gauge\n??? nope\n# EOF\n")

    def test_infinities_render_and_parse(self):
        reg = MetricsRegistry()
        reg.gauge("inf.up").set(math.inf)
        families = parse_openmetrics(render_openmetrics(reg))
        ((_, _, value),) = families["inf_up"]["samples"]
        assert value == math.inf


class TestTelemetryLog:
    def test_series_filters_by_name_and_labels(self):
        log = TelemetryLog()
        log.record("q.depth", 3.0, t_s=0.1, labels={"node": 0})
        log.record("q.depth", 5.0, t_s=0.2, labels={"node": 1})
        log.record("q.depth", 4.0, t_s=0.3, labels={"node": 0})
        log.record("inflight", 9.0, t_s=0.3)
        assert log.names() == ["inflight", "q.depth"]
        assert log.series("q.depth", node=0) == [(0.1, 3.0), (0.3, 4.0)]
        assert log.series("q.depth") == [(0.1, 3.0), (0.2, 5.0), (0.3, 4.0)]

    def test_ring_drops_oldest_and_counts(self):
        log = TelemetryLog(max_samples=2)
        for i in range(5):
            log.record("m", float(i), t_s=float(i))
        assert len(log) == 2
        assert log.dropped == 3
        assert [s.value for s in log] == [3.0, 4.0]

    def test_jsonl_round_trip(self, tmp_path):
        log = TelemetryLog()
        log.record("q.depth", 3.0, t_s=0.5, labels={"node": 2})
        path = tmp_path / "telemetry.jsonl"
        assert log.export_jsonl(path) == 1
        restored = TelemetryLog.load_jsonl(path)
        assert [s.to_dict() for s in restored] == [s.to_dict() for s in log]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_samples"):
            TelemetryLog(max_samples=0)


class TestTelemetrySampler:
    def _probe(self):
        return [
            ("t.depth", {"node": 0}, 3.0),
            ("t.depth", {"node": 1}, 7.0),
            ("t.inflight", {}, 2.0),
        ]

    def test_sample_once_records_log_and_registry(self):
        reg = MetricsRegistry()
        sampler = TelemetrySampler(self._probe, registry=reg, clock=lambda: 1.25)
        assert sampler.sample_once() == 3
        assert sampler.n_ticks == 1
        assert sampler.log.series("t.depth", node=1) == [(1.25, 7.0)]
        assert reg.gauge("t.depth", labels={"node": 1}).value == 7.0
        assert reg.gauge("t.inflight").value == 2.0

    def test_explicit_timestamp_overrides_clock(self):
        sampler = TelemetrySampler(self._probe, registry=MetricsRegistry())
        sampler.sample_once(t_s=9.0)
        assert sampler.log.series("t.inflight") == [(9.0, 2.0)]

    def test_run_loop_ticks_until_cancelled(self):
        sampler = TelemetrySampler(
            self._probe, interval_s=0.002, registry=MetricsRegistry()
        )

        async def drive():
            task = asyncio.ensure_future(sampler.run())
            await asyncio.sleep(0.02)
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass

        asyncio.run(drive())
        assert sampler.n_ticks >= 2
        assert len(sampler.log) == 3 * sampler.n_ticks

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError, match="interval_s"):
            TelemetrySampler(self._probe, interval_s=0.0)


class TestFlightRecorder:
    def test_records_carry_causal_request_ids(self):
        rec = FlightRecorder()
        rec.record("drop", t_s=0.1, node=2, request_id=7, edge="2->0")
        rec.record("timeout", t_s=0.2, node=2, request_id=7)
        rec.record("degraded", t_s=0.3, node=1, request_id=9)
        assert [e.kind for e in rec.for_request(7)] == ["drop", "timeout"]
        assert rec.by_kind() == {"drop": 1, "timeout": 1, "degraded": 1}

    def test_ring_drops_oldest_and_counts(self):
        rec = FlightRecorder(max_events=2)
        for i in range(4):
            rec.record("drop", t_s=float(i), request_id=i)
        assert len(rec) == 2
        assert rec.dropped == 2
        assert [e.request_id for e in rec] == [2, 3]

    def test_summary_names_kinds_and_requests(self):
        rec = FlightRecorder()
        assert "no fault events" in rec.summary()
        rec.record("drop", t_s=0.1, request_id=3)
        rec.record("drop", t_s=0.2, request_id=4)
        text = rec.summary()
        assert "drop x2" in text
        assert "2 requests" in text

    def test_jsonl_round_trip(self, tmp_path):
        rec = FlightRecorder()
        rec.record("corrupt", t_s=0.5, node=1, request_id=11, lost_dims=4)
        path = tmp_path / "flight.jsonl"
        assert rec.export_jsonl(path) == 1
        restored = FlightRecorder.load_jsonl(path)
        assert len(restored) == 1
        assert isinstance(restored[0], FlightEvent)
        assert restored[0].to_dict() == rec.events()[0].to_dict()
        raw = json.loads(path.read_text())
        assert raw["request"] == 11

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="max_events"):
            FlightRecorder(max_events=0)
