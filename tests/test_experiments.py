"""Integration tests: every experiment runs at quick scale and
preserves the paper's qualitative claims."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    format_ablation,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_figure11,
    format_figure12,
    format_figure13,
    format_table2,
    run_batch_size_ablation,
    run_compression_ablation,
    run_encoder_ablation,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
    run_figure12,
    run_figure13,
    run_table2,
)

TINY = ExperimentScale(
    name="tiny", data_scale=0.03, max_train=500, max_test=200,
    dimension=512, retrain_epochs=4, batch_size=10,
)


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure7(datasets=("APRI", "PDP"), scale=TINY)

    def test_all_algorithms_present(self, result):
        for per_ds in result.accuracy.values():
            assert set(per_ds) == {"EdgeHD", "DNN", "SVM", "AdaBoost", "BaselineHD"}

    def test_accuracies_in_range(self, result):
        for per_ds in result.accuracy.values():
            for acc in per_ds.values():
                assert 0.0 <= acc <= 1.0

    def test_edgehd_beats_chance(self, result):
        assert result.mean_accuracy("EdgeHD") > 0.6

    def test_format(self, result):
        text = format_figure7(result)
        assert "Fig. 7" in text and "MEAN" in text

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            run_figure7(datasets=("NOPE",), scale=TINY)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(datasets=("APRI", "PDP"), scale=TINY)

    def test_levels_present(self, result):
        for levels in result.by_level.values():
            assert set(levels) == {1, 2, 3}

    def test_hierarchy_gain(self, result):
        for levels in result.by_level.values():
            assert levels[3] > levels[1] - 0.05

    def test_format(self, result):
        assert "Table II" in format_table2(result)

    def test_non_hierarchy_dataset_rejected(self):
        with pytest.raises(ValueError):
            run_table2(datasets=("MNIST",), scale=TINY)


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure8(scale=TINY, n_steps=2)

    def test_metrics_length(self, result):
        assert len(result.metrics) == 3

    def test_series_access(self, result):
        for which in ("accuracy", "confidence", "frequency"):
            series = result.series(which, result.depth)
            assert len(series) == 3

    def test_format(self, result):
        text = format_figure8(result)
        assert "Fig. 8(a)" in text and "Fig. 8(c)" in text

    def test_invalid_offline_fraction(self):
        with pytest.raises(ValueError):
            run_figure8(scale=TINY, offline_fraction=1.5)


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure9(datasets=("PDP",), n_steps=2, scale=TINY)

    def test_trajectory_length(self, result):
        assert len(result.trajectories["PDP"]) == 3

    def test_improvement_finite(self, result):
        assert np.isfinite(result.improvement("PDP"))

    def test_format(self, result):
        assert "Fig. 9" in format_figure9(result)


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure10(datasets=("APRI", "PDP"))

    def test_grid_complete(self, result):
        for phase in ("train", "infer"):
            for topo in ("star", "tree"):
                for config in ("dnn-gpu", "hd-gpu", "hd-fpga", "edgehd"):
                    for ds in ("APRI", "PDP"):
                        assert (phase, topo, config, ds) in result.costs

    def test_edgehd_cheapest_energy(self, result):
        assert result.energy_gain("train", "edgehd", "hd-gpu") > 1.0
        assert result.energy_gain("train", "edgehd", "dnn-gpu") > 1.0

    def test_hd_beats_dnn(self, result):
        assert result.speedup("train", "hd-gpu", "dnn-gpu") > 1.0

    def test_tree_more_comm_than_star(self, result):
        tree = result.mean_cost("train", "tree", "hd-gpu")
        star = result.mean_cost("train", "star", "hd-gpu")
        assert tree.comm_time_s > star.comm_time_s

    def test_comm_savings(self, result):
        assert result.communication_saving("train", "edgehd", "hd-fpga") > 0.5

    def test_format(self, result):
        assert "Fig. 10" in format_figure10(result)


class TestFigure11:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure11(datasets=("PDP",))

    def test_bandwidth_trend(self, result):
        assert result.mean_speedup("bluetooth-4.0") > result.mean_speedup(
            "wired-1gbps"
        )

    def test_level_trend(self, result):
        for medium in result.media:
            assert result.speedup[(medium, 1)] > result.speedup[(medium, 3)]

    def test_format(self, result):
        assert "Fig. 11" in format_figure11(result)

    def test_unknown_medium(self):
        with pytest.raises(KeyError):
            run_figure11(datasets=("PDP",), media=("carrier-pigeon",))


class TestFigure12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure12(datasets=("PDP",), losses=(0.0, 0.8), scale=TINY)

    def test_systems_present(self, result):
        assert set(result.accuracy) == {
            "EdgeHD-holographic", "EdgeHD-concat", "DNN",
        }

    def test_loss_degrades(self, result):
        for per_ds in result.accuracy.values():
            for per_loss in per_ds.values():
                assert per_loss[0.8] <= per_loss[0.0] + 0.05

    def test_format(self, result):
        assert "Fig. 12" in format_figure12(result)


class TestFigure13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure13(
            dataset="PDP", depths=(3, 5), scale=TINY, measure_accuracy=True
        )

    def test_speedups_positive(self, result):
        for value in result.speedup.values():
            assert value > 0.0

    def test_accuracy_recorded(self, result):
        assert set(result.accuracy) == {3, 5}

    def test_format(self, result):
        assert "Fig. 13" in format_figure13(result)


class TestAblations:
    def test_encoder_ablation(self):
        result = run_encoder_ablation(
            dataset="PDP", encoders=("rbf", "linear"), scale=TINY
        )
        acc = dict(zip(result.column("Encoder"), result.column("Accuracy")))
        assert set(acc) == {"rbf", "linear"}
        assert "Ablation" in format_ablation(result)

    def test_batch_size_ablation(self):
        result = run_batch_size_ablation(
            dataset="PDP", batch_sizes=(5, 50), scale=TINY
        )
        kb = result.column("Training KB")
        assert kb[0] > kb[1]

    def test_compression_ablation(self):
        result = run_compression_ablation(counts=(1, 25), dimension=1024)
        fidelity = result.column("Decode hamming")
        assert fidelity[0] >= fidelity[1]
        assert fidelity[0] == pytest.approx(1.0)
