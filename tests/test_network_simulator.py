"""Unit tests for the discrete-event network simulator."""

import pytest

from repro.hierarchy.topology import build_star, build_tree
from repro.network.failure import FailureModel
from repro.network.medium import MEDIA, Medium
from repro.network.message import Message, MessageKind
from repro.network.simulator import NetworkSimulator, SimulationResult


FAST = Medium("fast", 1e9, 0.0, 1e-9, 1e-9)
SLOW = Medium("slow", 1e6, 0.0, 1e-9, 1e-9)


def leaf_messages(hierarchy, payload=1000, kind=MessageKind.QUERY):
    return [
        Message(leaf, hierarchy.nodes[leaf].parent, kind, payload)
        for leaf in hierarchy.leaves()
    ]


class TestIndependentScheduling:
    def test_parallel_links_dont_serialize(self):
        h = build_star(4)
        sim = NetworkSimulator(h, FAST)
        result = sim.simulate_independent(leaf_messages(h))
        # STAR: four distinct links, all transfers overlap.
        single = FAST.transfer_time(1000)
        assert result.makespan_s == pytest.approx(single)
        assert result.busy_time_s == pytest.approx(4 * single)

    def test_shared_link_serializes(self):
        h = build_star(2)
        sim = NetworkSimulator(h, FAST)
        leaf = h.leaves()[0]
        messages = [
            Message(leaf, h.root_id, MessageKind.QUERY, 1000),
            Message(leaf, h.root_id, MessageKind.QUERY, 1000),
        ]
        result = sim.simulate_independent(messages)
        assert result.makespan_s == pytest.approx(2 * FAST.transfer_time(1000))

    def test_energy_accumulates(self):
        h = build_star(3)
        sim = NetworkSimulator(h, FAST)
        result = sim.simulate_independent(leaf_messages(h))
        assert result.energy_j == pytest.approx(3 * FAST.transfer_energy(1000))

    def test_bytes_by_kind(self):
        h = build_star(2)
        sim = NetworkSimulator(h, FAST)
        messages = leaf_messages(h, kind=MessageKind.QUERY) + leaf_messages(
            h, payload=500, kind=MessageKind.RESIDUALS
        )
        result = sim.simulate_independent(messages)
        assert result.bytes_by_kind[MessageKind.QUERY] == 2000
        assert result.bytes_by_kind[MessageKind.RESIDUALS] == 1000
        assert result.total_bytes == 3000

    def test_unknown_node_rejected(self):
        h = build_star(2)
        sim = NetworkSimulator(h, FAST)
        with pytest.raises(KeyError):
            sim.simulate_independent(
                [Message(99, h.root_id, MessageKind.QUERY, 10)]
            )

    def test_non_adjacent_nodes_rejected(self):
        h = build_tree(4)
        leaves = h.leaves()
        sim = NetworkSimulator(h, FAST)
        with pytest.raises(ValueError):
            # Leaf to leaf: no link in the hierarchy.
            sim.simulate_independent(
                [Message(leaves[0], leaves[1], MessageKind.QUERY, 10)]
            )

    def test_downward_messages_allowed(self):
        h = build_star(2)
        sim = NetworkSimulator(h, FAST)
        leaf = h.leaves()[0]
        result = sim.simulate_independent(
            [Message(h.root_id, leaf, MessageKind.PREDICTION, 4)]
        )
        assert result.delivered == 1


class TestUpwardPass:
    def test_gateway_waits_for_children(self):
        h = build_tree(4)
        sim = NetworkSimulator(h, FAST)
        messages = []
        for nid in h.postorder():
            node = h.nodes[nid]
            if node.parent is not None:
                messages.append(
                    Message(nid, node.parent, MessageKind.CLASS_MODEL, 1000)
                )
        result = sim.simulate_upward_pass(messages)
        t = FAST.transfer_time(1000)
        # Each leaf has its own link to its gateway, so leaves overlap;
        # gateways then forward after their children's arrivals:
        # makespan = leaf hop + gateway hop = 2 transfer times.
        assert result.makespan_s == pytest.approx(2 * t)

    def test_compute_time_delays_sends(self):
        h = build_star(2)
        sim = NetworkSimulator(h, FAST)
        messages = leaf_messages(h)
        compute = {leaf: 1.0 for leaf in h.leaves()}
        result = sim.simulate_upward_pass(messages, compute_time=compute)
        assert result.makespan_s >= 1.0 + FAST.transfer_time(1000)

    def test_root_compute_extends_makespan(self):
        h = build_star(2)
        sim = NetworkSimulator(h, FAST)
        result = sim.simulate_upward_pass(
            leaf_messages(h), compute_time={h.root_id: 5.0}
        )
        assert result.makespan_s >= 5.0

    def test_no_messages_just_compute(self):
        h = build_star(2)
        sim = NetworkSimulator(h, FAST)
        result = sim.simulate_upward_pass([], compute_time={h.root_id: 2.0})
        assert result.makespan_s == pytest.approx(2.0)
        assert result.delivered == 0


class TestMediaSelection:
    def test_media_by_level(self):
        h = build_tree(4)
        sim = NetworkSimulator(h, FAST, media_by_level={1: SLOW})
        leaf_msg = leaf_messages(h)[:1]
        result = sim.simulate_independent(leaf_msg)
        assert result.makespan_s == pytest.approx(SLOW.transfer_time(1000))

    def test_default_medium_above(self):
        h = build_tree(4)
        sim = NetworkSimulator(h, FAST, media_by_level={1: SLOW})
        gateway = [n for n in h.internal_nodes() if n != h.root_id][0]
        result = sim.simulate_independent(
            [Message(gateway, h.root_id, MessageKind.CLASS_MODEL, 1000)]
        )
        assert result.makespan_s == pytest.approx(FAST.transfer_time(1000))

    def test_slow_medium_slower_end_to_end(self):
        h = build_tree(4)
        messages = leaf_messages(h)
        fast = NetworkSimulator(h, MEDIA["wired-1gbps"]).simulate_independent(messages)
        slow = NetworkSimulator(h, MEDIA["bluetooth-4.0"]).simulate_independent(messages)
        assert slow.makespan_s > fast.makespan_s


class TestFailures:
    def test_drops_cause_retransmissions(self):
        h = build_star(40)
        sim = NetworkSimulator(
            h, FAST, failure_model=FailureModel(0.5, seed=1), max_retries=20
        )
        result = sim.simulate_independent(leaf_messages(h))
        assert result.retransmissions > 0
        assert result.delivered == 40

    def test_exhausted_retries_drop(self):
        h = build_star(10)
        sim = NetworkSimulator(
            h, FAST, failure_model=FailureModel(0.95, seed=2), max_retries=1
        )
        result = sim.simulate_independent(leaf_messages(h))
        assert result.dropped > 0
        assert result.delivered + result.dropped == 10

    def test_retransmission_charges_time_and_energy(self):
        h = build_star(1)
        clean = NetworkSimulator(h, FAST).simulate_independent(leaf_messages(h))
        lossy = NetworkSimulator(
            h, FAST, failure_model=FailureModel(0.9, seed=3), max_retries=50
        ).simulate_independent(leaf_messages(h))
        assert lossy.busy_time_s > clean.busy_time_s
        assert lossy.energy_j > clean.energy_j

    def test_invalid_retries(self):
        h = build_star(1)
        with pytest.raises(ValueError):
            NetworkSimulator(h, FAST, max_retries=-1)


class TestSimulationResult:
    def test_merge(self):
        a = SimulationResult(1.0, 2.0, 3.0, 100, 1, 0, 0,
                             {MessageKind.QUERY: 100})
        b = SimulationResult(0.5, 1.0, 1.5, 50, 2, 1, 3,
                             {MessageKind.QUERY: 30, MessageKind.RAW_DATA: 20})
        merged = a.merge(b)
        assert merged.makespan_s == 1.5
        assert merged.total_bytes == 150
        assert merged.delivered == 3
        assert merged.dropped == 1
        assert merged.retransmissions == 3
        assert merged.bytes_by_kind[MessageKind.QUERY] == 130
        assert merged.bytes_by_kind[MessageKind.RAW_DATA] == 20


class TestLatencyPercentiles:
    def test_latencies_recorded_per_delivered_message(self):
        h = build_star(4)
        sim = NetworkSimulator(h, FAST)
        result = sim.simulate_independent(leaf_messages(h))
        single = FAST.transfer_time(1000)
        assert len(result.latencies_s) == 4
        for latency in result.latencies_s:
            assert latency == pytest.approx(single)
        pct = result.latency_percentiles()
        assert pct["p50"] == pytest.approx(single * 1e3)
        assert pct["p99"] == pytest.approx(single * 1e3)

    def test_queueing_on_shared_link_raises_tail(self):
        h = build_star(2)
        sim = NetworkSimulator(h, FAST)
        leaf = h.leaves()[0]
        messages = [
            Message(leaf, h.root_id, MessageKind.QUERY, 1000)
            for _ in range(10)
        ]
        result = sim.simulate_independent(messages)
        single = FAST.transfer_time(1000)
        pct = result.latency_percentiles()
        # The first message pays one transfer; the last pays ten.
        assert min(result.latencies_s) == pytest.approx(single)
        assert max(result.latencies_s) == pytest.approx(10 * single)
        assert pct["p99"] > pct["p50"]

    def test_dropped_messages_record_no_latency(self):
        h = build_star(1)
        sim = NetworkSimulator(
            h, FAST, failure_model=FailureModel(1.0, seed=3), max_retries=2
        )
        result = sim.simulate_independent(leaf_messages(h))
        assert result.dropped == 1
        assert result.latencies_s == []
        assert result.latency_percentiles() == {
            "p50": 0.0, "p95": 0.0, "p99": 0.0
        }

    def test_merge_concatenates_latencies(self):
        a = SimulationResult(1.0, 1.0, 1.0, 10, 1, 0, 0, latencies_s=[0.1])
        b = SimulationResult(1.0, 1.0, 1.0, 10, 2, 0, 0,
                             latencies_s=[0.2, 0.3])
        merged = a.merge(b)
        assert merged.latencies_s == [0.1, 0.2, 0.3]
        assert merged.latency_percentiles(qs=(50,))["p50"] == pytest.approx(200.0)

    def test_custom_quantiles(self):
        h = build_star(4)
        result = NetworkSimulator(h, FAST).simulate_independent(
            leaf_messages(h)
        )
        pct = result.latency_percentiles(qs=(10, 90))
        assert set(pct) == {"p10", "p90"}
