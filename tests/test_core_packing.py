"""Unit tests for bit-level hypervector packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypervector import random_bipolar
from repro.core.packing import (
    bits_for_cap,
    pack_bipolar,
    pack_floats,
    pack_narrow_ints,
    unpack_bipolar,
    unpack_floats,
    unpack_narrow_ints,
)


class TestBipolarPacking:
    @pytest.mark.parametrize("dim", [1, 7, 8, 9, 64, 4000, 4001])
    def test_roundtrip(self, dim):
        hv = random_bipolar(dim, seed=dim)
        assert np.array_equal(unpack_bipolar(pack_bipolar(hv), dim), hv)

    def test_one_bit_per_element(self):
        hv = random_bipolar(4000, seed=1)
        assert len(pack_bipolar(hv)) == 500

    def test_zero_element_rejected(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.array([1.0, 0.0, -1.0]))

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.ones((2, 3, 4)))

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.empty((2, 0)))

    def test_wrong_length_rejected(self):
        hv = random_bipolar(64, seed=2)
        with pytest.raises(ValueError):
            unpack_bipolar(pack_bipolar(hv), 128)

    def test_float_bipolar_accepted(self):
        hv = random_bipolar(32, seed=3).astype(np.float64) * 2.5
        # Any sign-definite values pack by sign.
        unpacked = unpack_bipolar(pack_bipolar(hv), 32)
        assert np.array_equal(unpacked, np.sign(hv).astype(np.int8))


class TestBipolarBatchPacking:
    """2-D (n_samples, dimension) batches pack row-aligned."""

    @pytest.mark.parametrize("dim", [1, 7, 8, 9, 63, 64, 65, 100])
    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_roundtrip(self, n, dim):
        batch = random_bipolar(dim, count=n, seed=dim * 31 + n)
        payload = pack_bipolar(batch)
        assert np.array_equal(
            unpack_bipolar(payload, dim, n_samples=n), batch
        )

    def test_row_aligned_layout(self):
        """Batch payload == concatenation of per-row payloads."""
        batch = random_bipolar(13, count=4, seed=9)
        assert pack_bipolar(batch) == b"".join(
            pack_bipolar(row) for row in batch
        )

    def test_batch_size_charged(self):
        batch = random_bipolar(4000, count=6, seed=10)
        assert len(pack_bipolar(batch)) == 6 * 500

    def test_empty_batch(self):
        payload = pack_bipolar(np.empty((0, 16)))
        assert payload == b""
        assert unpack_bipolar(payload, 16, n_samples=0).shape == (0, 16)

    def test_wrong_batch_length_rejected(self):
        batch = random_bipolar(16, count=3, seed=11)
        with pytest.raises(ValueError):
            unpack_bipolar(pack_bipolar(batch), 16, n_samples=4)

    def test_negative_n_samples_rejected(self):
        with pytest.raises(ValueError):
            unpack_bipolar(b"", 16, n_samples=-1)

    def test_zero_element_rejected(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.array([[1.0, 0.0], [1.0, -1.0]]))

    # Property tests: round-trip holds for every (n, D), in particular
    # dimensions that are not multiples of 8 or 64.
    @settings(deadline=None, max_examples=60)
    @given(
        n=st.integers(min_value=0, max_value=7),
        dim=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip_property(self, n, dim, seed):
        batch = random_bipolar(dim, count=n, seed=seed)
        recovered = unpack_bipolar(pack_bipolar(batch), dim, n_samples=n)
        assert np.array_equal(recovered, batch)

    @settings(deadline=None, max_examples=30)
    @given(
        dim=st.one_of(
            st.integers(min_value=1, max_value=7),  # < one byte
            st.sampled_from([9, 15, 33, 63, 65, 127, 129]),  # off-word
        ),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_roundtrip_property_1d_odd_dims(self, dim, seed):
        hv = random_bipolar(dim, seed=seed)
        assert np.array_equal(unpack_bipolar(pack_bipolar(hv), dim), hv)


class TestNarrowIntPacking:
    def test_bits_for_cap(self):
        assert bits_for_cap(1) == 2  # 3 states
        assert bits_for_cap(25) == 6  # 51 states
        assert bits_for_cap(127) == 8

    def test_bits_for_cap_invalid(self):
        with pytest.raises(ValueError):
            bits_for_cap(0)

    @pytest.mark.parametrize("cap", [1, 3, 25, 100])
    def test_roundtrip(self, cap):
        rng = np.random.default_rng(cap)
        values = rng.integers(-cap, cap + 1, size=777)
        payload = pack_narrow_ints(values, cap)
        assert np.array_equal(unpack_narrow_ints(payload, 777, cap), values)

    def test_extremes_roundtrip(self):
        values = np.array([-25, 25, 0, -1, 1])
        payload = pack_narrow_ints(values, 25)
        assert np.array_equal(unpack_narrow_ints(payload, 5, 25), values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_narrow_ints(np.array([30]), cap=25)

    def test_non_integers_rejected(self):
        with pytest.raises(ValueError):
            pack_narrow_ints(np.array([0.5]), cap=25)

    def test_smaller_than_float32(self):
        values = np.zeros(4000, dtype=np.int64)
        assert len(pack_narrow_ints(values, 25)) < 4000 * 4 / 4

    def test_wrong_payload_length(self):
        payload = pack_narrow_ints(np.zeros(10, dtype=int), 3)
        with pytest.raises(ValueError):
            unpack_narrow_ints(payload, 11, 3)


class TestFloatPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        values = rng.standard_normal(321)
        payload = pack_floats(values)
        recovered = unpack_floats(payload, 321)
        assert np.allclose(recovered, values, atol=1e-6)

    def test_four_bytes_per_element(self):
        assert len(pack_floats(np.zeros(100))) == 400

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            unpack_floats(b"\x00" * 10, 4)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            pack_floats(np.zeros((2, 2)))
