"""Unit tests for bit-level hypervector packing."""

import numpy as np
import pytest

from repro.core.hypervector import random_bipolar
from repro.core.packing import (
    bits_for_cap,
    pack_bipolar,
    pack_floats,
    pack_narrow_ints,
    unpack_bipolar,
    unpack_floats,
    unpack_narrow_ints,
)


class TestBipolarPacking:
    @pytest.mark.parametrize("dim", [1, 7, 8, 9, 64, 4000, 4001])
    def test_roundtrip(self, dim):
        hv = random_bipolar(dim, seed=dim)
        assert np.array_equal(unpack_bipolar(pack_bipolar(hv), dim), hv)

    def test_one_bit_per_element(self):
        hv = random_bipolar(4000, seed=1)
        assert len(pack_bipolar(hv)) == 500

    def test_zero_element_rejected(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.array([1.0, 0.0, -1.0]))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            pack_bipolar(np.ones((2, 4)))

    def test_wrong_length_rejected(self):
        hv = random_bipolar(64, seed=2)
        with pytest.raises(ValueError):
            unpack_bipolar(pack_bipolar(hv), 128)

    def test_float_bipolar_accepted(self):
        hv = random_bipolar(32, seed=3).astype(np.float64) * 2.5
        # Any sign-definite values pack by sign.
        unpacked = unpack_bipolar(pack_bipolar(hv), 32)
        assert np.array_equal(unpacked, np.sign(hv).astype(np.int8))


class TestNarrowIntPacking:
    def test_bits_for_cap(self):
        assert bits_for_cap(1) == 2  # 3 states
        assert bits_for_cap(25) == 6  # 51 states
        assert bits_for_cap(127) == 8

    def test_bits_for_cap_invalid(self):
        with pytest.raises(ValueError):
            bits_for_cap(0)

    @pytest.mark.parametrize("cap", [1, 3, 25, 100])
    def test_roundtrip(self, cap):
        rng = np.random.default_rng(cap)
        values = rng.integers(-cap, cap + 1, size=777)
        payload = pack_narrow_ints(values, cap)
        assert np.array_equal(unpack_narrow_ints(payload, 777, cap), values)

    def test_extremes_roundtrip(self):
        values = np.array([-25, 25, 0, -1, 1])
        payload = pack_narrow_ints(values, 25)
        assert np.array_equal(unpack_narrow_ints(payload, 5, 25), values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_narrow_ints(np.array([30]), cap=25)

    def test_non_integers_rejected(self):
        with pytest.raises(ValueError):
            pack_narrow_ints(np.array([0.5]), cap=25)

    def test_smaller_than_float32(self):
        values = np.zeros(4000, dtype=np.int64)
        assert len(pack_narrow_ints(values, 25)) < 4000 * 4 / 4

    def test_wrong_payload_length(self):
        payload = pack_narrow_ints(np.zeros(10, dtype=int), 3)
        with pytest.raises(ValueError):
            unpack_narrow_ints(payload, 11, 3)


class TestFloatPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(5)
        values = rng.standard_normal(321)
        payload = pack_floats(values)
        recovered = unpack_floats(payload, 321)
        assert np.allclose(recovered, values, atol=1e-6)

    def test_four_bytes_per_element(self):
        assert len(pack_floats(np.zeros(100))) == 400

    def test_wrong_length(self):
        with pytest.raises(ValueError):
            unpack_floats(b"\x00" * 10, 4)

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            pack_floats(np.zeros((2, 2)))
