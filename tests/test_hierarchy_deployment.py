"""Integration tests: federated training through real wire frames."""

import numpy as np
import pytest

from repro.config import EdgeHDConfig
from repro.data import load_dataset, partition_features
from repro.hierarchy.deployment import SimulatedDeployment
from repro.hierarchy.federation import EdgeHDFederation
from repro.hierarchy.topology import build_tree
from repro.network.failure import FailureModel
from repro.network.medium import MEDIA


@pytest.fixture(scope="module")
def setup():
    data = load_dataset("PDP", scale=0.05, max_train=700, max_test=250, seed=9)
    partition = partition_features(data.n_features, 5)
    config = EdgeHDConfig(
        dimension=1024, batch_size=10, retrain_epochs=5, seed=13
    )
    return data, partition, config


def fresh_federation(setup):
    data, partition, config = setup
    return EdgeHDFederation(build_tree(5), partition, data.n_classes, config)


class TestCleanDeployment:
    def test_matches_in_memory_training(self, setup):
        """Wire-level training must reproduce in-memory federated
        training exactly when the network is clean (float32 rounding
        of class models is the only difference)."""
        data, partition, config = setup
        in_memory = fresh_federation(setup)
        in_memory.fit_offline(data.train_x, data.train_y)

        deployed_fed = fresh_federation(setup)
        deployment = SimulatedDeployment(deployed_fed, MEDIA["wired-1gbps"])
        deployment.train(data.train_x, data.train_y)

        acc_mem = in_memory.accuracy_at(
            in_memory.root_id, data.test_x, data.test_y
        )
        acc_wire = deployed_fed.accuracy_at(
            deployed_fed.root_id, data.test_x, data.test_y
        )
        assert acc_wire == pytest.approx(acc_mem, abs=0.02)

    def test_report_contents(self, setup):
        data, partition, config = setup
        fed = fresh_federation(setup)
        deployment = SimulatedDeployment(fed, MEDIA["wired-1gbps"])
        report = deployment.train(data.train_x, data.train_y)
        # Two frames (model + batches) per non-root node.
        non_root = len(fed.hierarchy.nodes) - 1
        assert report.frames_sent == 2 * non_root
        assert report.frames_corrupted == 0
        assert report.bytes_on_wire > 0
        assert report.simulation.makespan_s > 0
        assert len(report.node_train_accuracy) > 0

    def test_wire_bytes_close_to_accounting(self, setup):
        """Actual frame bytes should be close to the analytic charge
        (headers add a little)."""
        data, partition, config = setup
        fed = fresh_federation(setup)
        analytic = fresh_federation(setup)
        analytic_report = analytic.fit_offline(data.train_x, data.train_y)
        deployment = SimulatedDeployment(fed, MEDIA["wired-1gbps"])
        report = deployment.train(data.train_x, data.train_y)
        ratio = report.bytes_on_wire / analytic_report.total_bytes
        assert 0.8 < ratio < 1.3


class TestLossyDeployment:
    def test_corruption_detected_and_counted(self, setup):
        data, partition, config = setup
        fed = fresh_federation(setup)
        deployment = SimulatedDeployment(
            fed, MEDIA["wifi-802.11n"], corrupt_bits=1.0, seed=3
        )
        report = deployment.train(data.train_x, data.train_y)
        assert report.frames_corrupted == report.frames_sent

    def test_training_survives_partial_corruption(self, setup):
        """Losing some children's frames degrades but does not break
        the central model (robustness story, Sec. VI-F)."""
        data, partition, config = setup
        fed = fresh_federation(setup)
        deployment = SimulatedDeployment(
            fed, MEDIA["wifi-802.11n"], corrupt_bits=0.3, seed=4
        )
        report = deployment.train(data.train_x, data.train_y)
        assert 0 < report.frames_corrupted < report.frames_sent
        acc = fed.accuracy_at(fed.root_id, data.test_x, data.test_y)
        assert acc > 1.0 / data.n_classes  # still better than chance

    def test_drops_charge_retransmissions(self, setup):
        data, partition, config = setup
        fed = fresh_federation(setup)
        deployment = SimulatedDeployment(
            fed, MEDIA["wifi-802.11n"],
            failure_model=FailureModel(0.4, seed=5), max_retries=10,
        )
        report = deployment.train(data.train_x, data.train_y)
        assert report.simulation.retransmissions > 0

    def test_invalid_corrupt_bits(self, setup):
        fed = fresh_federation(setup)
        with pytest.raises(ValueError):
            SimulatedDeployment(fed, MEDIA["wired-1gbps"], corrupt_bits=1.5)


class TestAdaptiveUpdater:
    def test_adaptive_updates_fix_drifted_model(self, setup):
        from repro.core.adaptive import AdaptiveOnlineUpdater
        from repro.core.hypervector import normalize_rows
        from repro.core.model import EdgeHDModel

        data, partition, config = setup
        model = EdgeHDModel(
            data.n_features, data.n_classes, dimension=1024, seed=1
        )
        half = data.n_train // 2
        model.fit(data.train_x[:half], data.train_y[:half], retrain_epochs=0)
        model.classifier.set_model(
            normalize_rows(model.class_hypervectors)
        )
        drift = np.full(data.n_features, 1.0)
        stream_x = data.train_x[half:] + drift
        test_x = data.test_x + drift
        before = model.accuracy(test_x, data.test_y)
        updater = AdaptiveOnlineUpdater(model.classifier, learning_rate=0.3)
        encoded = model.encode(stream_x).astype(float)
        encoded /= np.linalg.norm(encoded, axis=1, keepdims=True)
        updater.update_batch(encoded, data.train_y[half:])
        after = model.accuracy(test_x, data.test_y)
        assert after >= before - 0.02
        assert updater.updates_applied > 0

    def test_correct_sample_no_update(self):
        from repro.core.adaptive import AdaptiveOnlineUpdater
        from repro.core.classifier import HDClassifier
        from repro.core.hypervector import random_bipolar

        dim = 256
        model = random_bipolar(dim, count=2, seed=6).astype(float)
        clf = HDClassifier(2, dim).set_model(model)
        updater = AdaptiveOnlineUpdater(clf)
        before = clf.class_hypervectors.copy()
        assert updater.update_one(model[0], true_class=0)
        assert np.array_equal(clf.class_hypervectors, before)

    def test_mirroring_to_residuals(self):
        from repro.core.adaptive import AdaptiveOnlineUpdater
        from repro.core.classifier import HDClassifier
        from repro.core.hypervector import random_bipolar
        from repro.core.online import ResidualAccumulator

        dim = 256
        model = random_bipolar(dim, count=2, seed=7).astype(float)
        clf = HDClassifier(2, dim).set_model(model)
        acc = ResidualAccumulator(2, dim)
        updater = AdaptiveOnlineUpdater(clf, mirror_to=acc)
        # Force a mistake: present class-1's prototype labelled 0.
        updater.update_one(model[1], true_class=0)
        assert acc.feedback_count == 1

    def test_unfitted_rejected(self):
        from repro.core.adaptive import AdaptiveOnlineUpdater
        from repro.core.classifier import HDClassifier

        with pytest.raises(RuntimeError):
            AdaptiveOnlineUpdater(HDClassifier(2, 8))
