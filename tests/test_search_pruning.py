"""Prefix-pruned associative search: exactness and approximation.

The property suite drives :func:`repro.core.kernels.packed_search`
across random dimensionalities (including off-byte and off-word
widths), class counts and prefix fractions, asserting the exact
branch-and-bound argmax is bit-identical to the full packed search —
the guarantee ``SearchSpec(prune="exact")`` rests on. The smoke test
pins the approximate mode's accuracy cost on the seed dataset at
<= 0.5%, the acceptance bar from the issue.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hypervector import random_bipolar
from repro.core.kernels import (
    WORD_BITS,
    PackedBits,
    calibrate_margin_threshold,
    pack_bits,
    packed_dot,
    packed_search,
    prefix_word_count,
    words_per_row,
)
from repro.core.model import EdgeHDModel
from repro.core.search import SearchSpec


def make_problem(dimension, n_classes, n_queries, noise, seed):
    """Class prototypes plus noisy class-member queries, both packed.

    Queries are prototypes with a ``noise`` fraction of elements
    flipped — the regime pruning targets (pure random queries carry no
    margin for the bound to exploit, but remain a valid exactness
    input and the strategy includes noise up to 0.6 to cover it).
    """
    rng = np.random.default_rng(seed)
    protos = random_bipolar(dimension, count=n_classes, seed=seed).astype(
        np.int8
    )
    members = protos[rng.integers(0, n_classes, size=n_queries)]
    flips = rng.random((n_queries, dimension)) < noise
    queries = np.where(flips, -members, members)
    return pack_bits(queries), pack_bits(protos)


class TestPrefixWordCount:
    @pytest.mark.parametrize(
        "dim,fraction,expected",
        [
            (64, 0.125, 1),     # floor of one word
            (640, 0.125, 2),    # ceil(10 * 0.125)
            (10000, 0.125, 20),  # ceil(157 * 0.125)
            (129, 1.0, 3),      # full width
            (1, 0.01, 1),
        ],
    )
    def test_values(self, dim, fraction, expected):
        assert prefix_word_count(dim, fraction) == expected

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.01])
    def test_invalid_fraction(self, fraction):
        with pytest.raises(ValueError, match="prefix_fraction"):
            prefix_word_count(100, fraction)


class TestExactPruneEquivalence:
    @given(
        dimension=st.integers(min_value=3, max_value=700),
        n_classes=st.integers(min_value=1, max_value=13),
        n_queries=st.integers(min_value=1, max_value=24),
        noise=st.floats(min_value=0.0, max_value=0.6),
        prefix_fraction=st.sampled_from([0.05, 0.125, 0.3, 1.0]),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_argmax_bit_identical_to_full_search(
        self, dimension, n_classes, n_queries, noise, prefix_fraction, seed
    ):
        queries, refs = make_problem(
            dimension, n_classes, n_queries, noise, seed
        )
        full = packed_dot(queries, refs)
        expected = np.argmax(full, axis=1)
        result = packed_search(
            queries, refs, prune="exact", prefix_fraction=prefix_fraction
        )
        np.testing.assert_array_equal(result.labels, expected)
        # Proxy similarities of pruned classes must not disturb the
        # argmax either — confidence code reads the similarity matrix.
        np.testing.assert_array_equal(
            np.argmax(result.similarities, axis=1), expected
        )
        # The winner's similarity is always exact (it was refined).
        rows = np.arange(n_queries)
        np.testing.assert_allclose(
            result.similarities[rows, expected],
            full[rows, expected] / dimension,
        )

    @pytest.mark.parametrize("dimension", [63, 64, 65, 127, 129, 1000])
    def test_off_word_dimensions_fixed_examples(self, dimension):
        queries, refs = make_problem(dimension, 5, 20, 0.1, seed=dimension)
        expected = np.argmax(packed_dot(queries, refs), axis=1)
        for prefix_words in (1, max(1, words_per_row(dimension) // 2)):
            result = packed_search(
                queries, refs, prune="exact", prefix_words=prefix_words
            )
            np.testing.assert_array_equal(result.labels, expected)

    def test_prune_off_matches_full_kernel_exactly(self):
        queries, refs = make_problem(500, 6, 30, 0.2, seed=1)
        result = packed_search(queries, refs, prune="off")
        np.testing.assert_allclose(
            result.similarities, packed_dot(queries, refs) / 500.0
        )
        assert result.stats.mode == "off"
        assert result.stats.n_pruned == 0

    def test_stats_account_for_every_pair(self):
        n_queries, n_classes = 40, 8
        queries, refs = make_problem(640, n_classes, n_queries, 0.05, seed=2)
        stats = packed_search(queries, refs, prune="exact").stats
        assert stats.mode == "exact"
        assert stats.prefix_words == prefix_word_count(640, 0.125)
        assert stats.n_pruned + stats.n_refined == n_queries * n_classes
        # Low noise leaves wide margins: the bound must prune *something*.
        assert stats.n_pruned > 0
        assert stats.total_ms == (
            stats.prefix_ms + stats.bound_ms + stats.refine_ms
        )
        assert set(stats.to_dict()) >= {
            "mode", "prefix_ms", "bound_ms", "refine_ms", "n_pruned"
        }

    def test_rejects_bad_arguments(self):
        queries, refs = make_problem(128, 3, 4, 0.1, seed=3)
        with pytest.raises(ValueError, match="prune must be"):
            packed_search(queries, refs, prune="fast")
        with pytest.raises(ValueError, match="prefix_words"):
            packed_search(queries, refs, prefix_words=0)
        with pytest.raises(ValueError, match="prefix_words"):
            packed_search(queries, refs, prefix_words=99)
        other = pack_bits(random_bipolar(64, count=2, seed=4))
        with pytest.raises(ValueError, match="dimension mismatch"):
            packed_search(queries, other)
        no_refs = PackedBits(
            words=np.empty((0, 2), dtype=np.uint64), dimension=128
        )
        with pytest.raises(ValueError, match="at least one row"):
            packed_search(queries, no_refs)


class TestApproxMode:
    def test_infinite_threshold_degenerates_to_exact(self):
        queries, refs = make_problem(512, 6, 50, 0.3, seed=7)
        exact = packed_search(queries, refs, prune="exact")
        approx = packed_search(
            queries, refs, prune="approx", margin_threshold=float("inf")
        )
        np.testing.assert_array_equal(approx.labels, exact.labels)
        assert approx.stats.n_prefix_accepted == 0

    def test_zero_threshold_accepts_every_query(self):
        queries, refs = make_problem(512, 6, 50, 0.05, seed=8)
        result = packed_search(
            queries, refs, prune="approx", margin_threshold=0.0
        )
        assert result.stats.n_prefix_accepted == 50
        # Prefix argmax at low noise still recovers the true labels.
        expected = np.argmax(packed_dot(queries, refs), axis=1)
        assert np.mean(result.labels == expected) >= 0.95

    def test_single_class_accepts_everything(self):
        queries, refs = make_problem(256, 1, 10, 0.4, seed=9)
        result = packed_search(
            queries, refs, prune="approx", margin_threshold=10.0
        )
        np.testing.assert_array_equal(result.labels, np.zeros(10))
        assert result.stats.n_prefix_accepted == 10

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_non_accepted_rows_are_exact(self, seed):
        queries, refs = make_problem(448, 7, 30, 0.25, seed=seed)
        result = packed_search(
            queries, refs, prune="approx", margin_threshold=0.15
        )
        expected = np.argmax(packed_dot(queries, refs), axis=1)
        k = prefix_word_count(448, 0.125)
        prefix_bits = min(k * WORD_BITS, 448)
        q_pref = PackedBits(
            words=queries.words[:, :k].copy(), dimension=prefix_bits
        )
        r_pref = PackedBits(
            words=refs.words[:, :k].copy(), dimension=prefix_bits
        )
        prefix_labels = np.argmax(packed_dot(q_pref, r_pref), axis=1)
        accepted = result.labels == prefix_labels
        # Every row the margin gate did NOT accept must be exact.
        mism = result.labels != expected
        assert not np.any(mism & ~accepted)


class TestCalibration:
    def test_threshold_meets_target_on_calibration_set(self):
        queries, refs = make_problem(640, 8, 200, 0.2, seed=11)
        threshold = calibrate_margin_threshold(
            queries, refs, target_agreement=0.99
        )
        assert np.isfinite(threshold)
        result = packed_search(
            queries, refs, prune="approx", margin_threshold=threshold
        )
        expected = np.argmax(packed_dot(queries, refs), axis=1)
        assert np.mean(result.labels == expected) >= 0.99

    def test_trivial_cases_return_zero(self):
        queries, refs = make_problem(128, 1, 10, 0.1, seed=12)
        assert calibrate_margin_threshold(queries, refs) == 0.0
        queries, refs = make_problem(64, 4, 10, 0.1, seed=13)
        assert calibrate_margin_threshold(
            queries, refs, prefix_fraction=1.0
        ) == 0.0

    def test_validation_errors(self):
        queries, refs = make_problem(128, 3, 10, 0.1, seed=14)
        with pytest.raises(ValueError, match="target_agreement"):
            calibrate_margin_threshold(queries, refs, target_agreement=0.0)
        with pytest.raises(ValueError, match="at least one query"):
            calibrate_margin_threshold(
                PackedBits(words=queries.words[:0], dimension=128), refs
            )
        with pytest.raises(ValueError, match="prefix_words"):
            calibrate_margin_threshold(queries, refs, prefix_words=50)


class TestApproxAccuracySmoke:
    """Seed-dataset accuracy cost of the approximate mode (<= 0.5%)."""

    @pytest.fixture(scope="class")
    def trained(self, small_split):
        train_x, train_y, test_x, test_y = small_split
        model = EdgeHDModel(
            n_features=train_x.shape[1], n_classes=3,
            dimension=2048, seed=23,
        )
        model.fit(train_x, train_y, retrain_epochs=10)
        model.classifier.binarize_model()
        return model, train_x, test_x, test_y

    def test_accuracy_delta_within_half_percent(self, trained):
        model, train_x, test_x, test_y = trained
        exact_acc = model.accuracy(
            test_x, test_y, search=SearchSpec(backend="packed")
        )
        spec = model.classifier.calibrate_search(
            model.encode(train_x), target_agreement=0.995
        )
        assert spec.prune == "approx"
        approx_acc = model.accuracy(test_x, test_y, search=spec)
        assert approx_acc >= exact_acc - 0.005

    def test_pruned_serving_stats_exposed(self, trained):
        model, _, test_x, _ = trained
        model.predict(
            test_x,
            search=SearchSpec(backend="packed", prune="exact"),
        )
        stats = model.classifier.last_search_stats
        assert stats is not None and stats.mode == "exact"
        assert stats.n_queries == len(test_x)
        assert stats.n_pruned + stats.n_refined == (
            stats.n_queries * stats.n_classes
        )
