"""Unit tests for platform cost models and their paper calibration."""

import pytest

from repro.hardware.ops import (
    OpCounts,
    encoding_ops,
    hd_inference_ops,
    hd_retrain_ops,
)
from repro.hardware.platforms import (
    FPGA_KINTEX7_CENTRAL,
    FPGA_NODE,
    GPU_GTX1080TI,
    PLATFORMS,
    RASPBERRY_PI_3B,
    Platform,
)


def hd_training_workload(n=10_000, feats=75, dim=4000, k=5):
    return (
        encoding_ops(n, feats, dim, sparsity=0.8)
        + hd_retrain_ops(n, dim, k, epochs=20)
    )


class TestPlatform:
    def test_execution_time_positive(self):
        ops = OpCounts(macs=1e9, adds=1e9, nonlinear=1e6, memory_bytes=1e6)
        for platform in PLATFORMS.values():
            assert platform.execution_time(ops) > 0

    def test_energy_is_time_times_power(self):
        ops = OpCounts(macs=1e9)
        t = GPU_GTX1080TI.execution_time(ops)
        assert GPU_GTX1080TI.energy(ops) == pytest.approx(t * 250.0)

    def test_roofline_memory_bound(self):
        """Huge memory traffic with few ops hits the bandwidth roof."""
        ops = OpCounts(macs=1.0, memory_bytes=1e12)
        p = GPU_GTX1080TI
        assert p.execution_time(ops) == pytest.approx(1e12 / p.memory_bandwidth)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Platform("bad", 0.0, 1.0, 1.0, 1.0, 1.0)


class TestPaperCalibration:
    def test_gpu_faster_than_central_fpga_on_hd(self):
        """Sec. VI-D: HD-FPGA is slower than HD-GPU."""
        ops = hd_training_workload()
        assert GPU_GTX1080TI.execution_time(ops) < FPGA_KINTEX7_CENTRAL.execution_time(ops)

    def test_central_fpga_about_3x_energy_efficient_vs_gpu(self):
        """Sec. VI-D: ~3.0x energy saving of HD-FPGA over HD-GPU
        (direction and order of magnitude)."""
        ops = hd_training_workload()
        ratio = GPU_GTX1080TI.energy(ops) / FPGA_KINTEX7_CENTRAL.energy(ops)
        assert 1.5 < ratio < 12.0

    def test_node_fpga_power(self):
        """Sec. VI-D: per-node FPGA draws ~0.28 W."""
        assert FPGA_NODE.power_w == pytest.approx(0.28)

    def test_central_fpga_power(self):
        """Sec. VI-D: centralized FPGA draws ~9.8 W."""
        assert FPGA_KINTEX7_CENTRAL.power_w == pytest.approx(9.8)

    def test_node_fpga_lowest_power(self):
        assert FPGA_NODE.power_w == min(p.power_w for p in PLATFORMS.values())

    def test_node_fpga_beats_rpi_on_energy_for_hd(self):
        """The FPGA accelerator is the efficient choice per node."""
        ops = hd_inference_ops(1000, 400, 5) + encoding_ops(1000, 25, 400, 0.8)
        assert FPGA_NODE.energy(ops) < RASPBERRY_PI_3B.energy(ops)

    def test_registry_names(self):
        assert set(PLATFORMS) == {
            "gpu-gtx1080ti",
            "fpga-kintex7-central",
            "fpga-node",
            "raspberry-pi-3b+",
            "server-cpu-i7-8700k",
        }
