"""Unit tests for message descriptors."""

import pytest

from repro.network.message import Message, MessageKind


class TestMessage:
    def test_construction(self):
        m = Message(source=1, destination=2, kind=MessageKind.QUERY, payload_bytes=100)
        assert m.payload_bytes == 100
        assert m.sequence == 0

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            Message(1, 2, MessageKind.QUERY, payload_bytes=-1)

    def test_self_message_rejected(self):
        with pytest.raises(ValueError):
            Message(1, 1, MessageKind.QUERY, payload_bytes=10)

    def test_frozen(self):
        m = Message(1, 2, MessageKind.QUERY, 10)
        with pytest.raises(AttributeError):
            m.payload_bytes = 99

    def test_kind_values(self):
        assert MessageKind.RAW_DATA.value == "raw_data"
        assert MessageKind.CLASS_MODEL.value == "class_model"
        assert MessageKind.RESIDUALS.value == "residuals"
        assert len(MessageKind) == 8
