"""Tier-1 self-check: the repro-lint rule set must hold over src/.

This is the enforcement half of the static-analysis PR: every
invariant encoded in ``repro.analysis.rules`` (RNG discipline, asyncio
hygiene, packed-kernel dtype contracts, greppable metric names, ...)
is asserted against the actual codebase on every test run, so a
regression shows up as a failing test with the exact file:line.
"""

from pathlib import Path

from repro.analysis import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"


def test_src_tree_exists():
    assert SRC.is_dir()


def test_repro_lint_is_clean_over_src():
    findings = lint_paths([str(SRC)])
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)


def test_repro_lint_flow_is_clean_over_src():
    """The dataflow analyses (REPRO111-113) must also hold over src/."""
    findings = lint_paths([str(SRC)], flow=True)
    assert findings == [], "\n" + "\n".join(f.format() for f in findings)
