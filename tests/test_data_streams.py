"""Unit tests for drift models and time-ordered streams."""

import numpy as np
import pytest

from repro.data.streams import (
    DriftStream,
    GradualDrift,
    RecurringDrift,
    ShiftDrift,
)


@pytest.fixture()
def block():
    rng = np.random.default_rng(1)
    return rng.standard_normal((100, 8)), rng.integers(0, 3, size=100)


class TestShiftDrift:
    def test_constant_over_time(self, block):
        x, _ = block
        drift = ShiftDrift(8, strength=1.0, seed=2)
        early = drift.apply(x, 0.0)
        late = drift.apply(x, 1.0)
        assert np.array_equal(early, late)

    def test_offset_magnitude(self):
        drift = ShiftDrift(10_000, strength=2.0, seed=3)
        assert abs(drift.offsets.std() - 2.0) < 0.1

    def test_zero_strength_identity(self, block):
        x, _ = block
        drift = ShiftDrift(8, strength=0.0, seed=4)
        assert np.allclose(drift.apply(x, 0.5), x)

    def test_invalid(self):
        with pytest.raises(ValueError):
            ShiftDrift(0)
        with pytest.raises(ValueError):
            ShiftDrift(4, strength=-1.0)


class TestGradualDrift:
    def test_ramps_linearly(self, block):
        x, _ = block
        drift = GradualDrift(8, strength=1.0, seed=5)
        start = drift.apply(x, 0.0)
        mid = drift.apply(x, 0.5)
        end = drift.apply(x, 1.0)
        assert np.allclose(start, x)
        assert np.allclose(mid - x, (end - x) / 2.0)

    def test_progress_validation(self, block):
        x, _ = block
        drift = GradualDrift(8, seed=6)
        with pytest.raises(ValueError):
            drift.apply(x, 1.5)


class TestRecurringDrift:
    def test_oscillates(self, block):
        x, _ = block
        drift = RecurringDrift(8, strength=1.0, cycles=1.0, seed=7)
        quarter = drift.apply(x, 0.25)  # sin peak
        half = drift.apply(x, 0.5)  # sin zero
        assert np.allclose(half, x, atol=1e-9)
        assert not np.allclose(quarter, x)

    def test_invalid(self):
        with pytest.raises(ValueError):
            RecurringDrift(4, cycles=0.0)


class TestDriftStream:
    def test_chunks_cover_stream(self, block):
        x, y = block
        stream = DriftStream(x, y, ShiftDrift(8, seed=8))
        chunks = list(stream.chunks(7))
        total = sum(cx.shape[0] for cx, _, _ in chunks)
        assert total == 100
        labels = np.concatenate([cy for _, cy, _ in chunks])
        assert np.array_equal(labels, y)

    def test_progress_monotone(self, block):
        x, y = block
        stream = DriftStream(x, y, GradualDrift(8, seed=9))
        progresses = [p for _, _, p in stream.chunks(5)]
        assert progresses == sorted(progresses)
        assert all(0.0 < p < 1.0 for p in progresses)

    def test_gradual_applied_per_chunk(self, block):
        x, y = block
        drift = GradualDrift(8, strength=2.0, seed=10)
        stream = DriftStream(x, y, drift)
        chunks = list(stream.chunks(4))
        # Later chunks deviate more from the raw block.
        first_dev = np.abs(chunks[0][0] - x[:25]).mean()
        last_dev = np.abs(chunks[-1][0] - x[75:]).mean()
        assert last_dev > first_dev

    def test_drifted_test_view(self, block):
        x, y = block
        drift = ShiftDrift(8, strength=1.0, seed=11)
        stream = DriftStream(x, y, drift)
        view = stream.drifted_test_view(x[:5])
        assert np.allclose(view, x[:5] + drift.offsets)

    def test_validation(self, block):
        x, y = block
        with pytest.raises(ValueError):
            DriftStream(x, y[:-1], ShiftDrift(8))
        with pytest.raises(ValueError):
            DriftStream(np.empty((0, 8)), np.empty(0, dtype=int), ShiftDrift(8))
        stream = DriftStream(x, y, ShiftDrift(8))
        with pytest.raises(ValueError):
            list(stream.chunks(0))

    def test_len(self, block):
        x, y = block
        assert len(DriftStream(x, y, ShiftDrift(8))) == 100
