"""Tests for features added during calibration: shared-medium
contention, packed compressed bundles, min_level inference, block loss,
and normalized online learning."""

import numpy as np
import pytest

from repro.core.compression import compressed_bundle_bytes
from repro.core.classifier import HDClassifier
from repro.core.online import ResidualAccumulator
from repro.core.hypervector import normalize_rows, random_bipolar
from repro.hierarchy.inference import HierarchicalInference
from repro.hierarchy.online import OnlineLearner, OnlineSession
from repro.hierarchy.topology import build_star, build_tree
from repro.network.failure import drop_blocks
from repro.network.medium import Medium
from repro.network.message import Message, MessageKind
from repro.network.simulator import NetworkSimulator

FAST = Medium("fast", 1e9, 0.0, 1e-9, 1e-9)


class TestSharedMedium:
    def test_shared_medium_serializes_everything(self):
        h = build_star(4)
        messages = [
            Message(leaf, h.root_id, MessageKind.QUERY, 1000)
            for leaf in h.leaves()
        ]
        parallel = NetworkSimulator(h, FAST).simulate_independent(messages)
        shared = NetworkSimulator(
            h, FAST, shared_medium=True
        ).simulate_independent(messages)
        assert shared.makespan_s == pytest.approx(4 * FAST.transfer_time(1000))
        assert parallel.makespan_s == pytest.approx(FAST.transfer_time(1000))

    def test_shared_medium_same_energy(self):
        h = build_star(3)
        messages = [
            Message(leaf, h.root_id, MessageKind.QUERY, 500)
            for leaf in h.leaves()
        ]
        a = NetworkSimulator(h, FAST).simulate_independent(messages)
        b = NetworkSimulator(h, FAST, shared_medium=True).simulate_independent(
            messages
        )
        assert a.energy_j == pytest.approx(b.energy_j)


class TestCompressedBundleBytes:
    def test_m25_uses_6_bits(self):
        # 2*25+1 = 51 states -> 6 bits per element.
        assert compressed_bundle_bytes(4000, 25) == (4000 * 6 + 7) // 8

    def test_m1_uses_2_bits(self):
        assert compressed_bundle_bytes(8, 1) == 2  # 8 elements * 2 bits

    def test_smaller_than_naive_ints(self):
        assert compressed_bundle_bytes(4000, 25) < 4000 * 4

    def test_per_query_cost_decreases_with_m(self):
        per_query = [
            compressed_bundle_bytes(4000, m) / m for m in (1, 5, 25)
        ]
        assert per_query[0] > per_query[1] > per_query[2]

    def test_invalid(self):
        with pytest.raises(ValueError):
            compressed_bundle_bytes(0, 5)
        with pytest.raises(ValueError):
            compressed_bundle_bytes(10, 0)


class TestMinLevelInference:
    def test_min_level_skips_leaves(self, trained_federation):
        fed, _, data = trained_federation
        inference = HierarchicalInference(
            fed, confidence_threshold=0.0, min_level=2
        )
        outcome = inference.run(data.test_x)
        assert outcome.deciding_level.min() >= 2

    def test_min_level_escalation_charged(self, trained_federation):
        fed, _, data = trained_federation
        inference = HierarchicalInference(
            fed, confidence_threshold=0.0, min_level=2
        )
        outcome = inference.run(data.test_x)
        # Leaf -> parent hops must appear as traffic.
        assert outcome.total_bytes > 0

    def test_min_level_above_cap_rejected(self, trained_federation):
        fed, _, data = trained_federation
        inference = HierarchicalInference(fed, min_level=3)
        with pytest.raises(ValueError):
            inference.run(data.test_x, max_level=2)

    def test_invalid_min_level(self, trained_federation):
        fed, _, _ = trained_federation
        with pytest.raises(ValueError):
            HierarchicalInference(fed, min_level=0)

    def test_start_leaf_recorded(self, trained_federation):
        fed, _, data = trained_federation
        inference = HierarchicalInference(fed)
        outcome = inference.run(data.test_x)
        assert outcome.start_leaf.shape == outcome.labels.shape
        assert set(outcome.start_leaf.tolist()) <= set(fed.hierarchy.leaves())


class TestDropBlocks:
    def test_fraction_of_blocks_zeroed(self):
        hv = np.ones(1024)
        damaged = drop_blocks(hv, 0.5, block_size=128, seed=1)
        assert np.mean(damaged == 0.0) == pytest.approx(0.5, abs=0.01)

    def test_loss_is_contiguous(self):
        hv = np.ones(1024)
        damaged = drop_blocks(hv, 0.25, block_size=256, seed=2)
        zero_runs = np.flatnonzero(damaged == 0.0)
        assert zero_runs.size == 256
        assert zero_runs.max() - zero_runs.min() == 255  # one block

    def test_zero_loss_identity(self):
        hv = random_bipolar(256, seed=3).astype(float)
        assert np.array_equal(drop_blocks(hv, 0.0), hv)

    def test_rows_independent(self):
        mat = np.ones((20, 1024))
        damaged = drop_blocks(mat, 0.5, block_size=128, seed=4)
        patterns = {tuple(np.flatnonzero(r == 0)[:3]) for r in damaged}
        assert len(patterns) > 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            drop_blocks(np.ones(8), 1.5)
        with pytest.raises(ValueError):
            drop_blocks(np.ones(8), 0.5, block_size=0)


class TestAveragedResidualApply:
    def test_average_bounds_update(self):
        clf = HDClassifier(2, 64)
        model = normalize_rows(
            random_bipolar(64, count=2, seed=5).astype(float)
        )
        clf.set_model(model)
        acc = ResidualAccumulator(2, 64)
        q = random_bipolar(64, seed=6).astype(float) / 8.0  # unit norm
        for _ in range(50):
            acc.record_negative(q, predicted_class=0)
        before = clf.class_hypervectors.copy()
        acc.apply_to(clf, learning_rate=0.1, average=True, renormalize=True)
        delta = np.linalg.norm(clf.class_hypervectors[0] - before[0])
        # 50 identical events averaged: update magnitude ~ lr, not 50*lr.
        assert delta < 0.3

    def test_renormalize_keeps_unit_rows(self):
        clf = HDClassifier(2, 32)
        clf.set_model(normalize_rows(np.ones((2, 32))))
        acc = ResidualAccumulator(2, 32)
        acc.record_negative(np.ones(32) / np.sqrt(32), 0)
        acc.apply_to(clf, learning_rate=0.5, average=True, renormalize=True)
        norms = np.linalg.norm(clf.class_hypervectors, axis=1)
        assert np.allclose(norms, 1.0)

    def test_per_class_counts_tracked(self):
        acc = ResidualAccumulator(3, 8)
        acc.record_negative(np.ones(8), 0, true_class=1)
        acc.record_negative(np.ones(8), 0)
        assert acc.negative_counts[0] == 2
        assert acc.positive_counts[1] == 1
        acc.clear()
        assert acc.negative_counts.sum() == 0


class TestNormalizedOnlineLearner:
    def test_normalize_rescales_models(self, trained_federation):
        fed, _, _ = trained_federation
        # Work on copies so the session-scoped fixture stays intact.
        import copy

        fed2 = copy.deepcopy(fed)
        OnlineLearner(fed2, normalize=True)
        for clf in fed2.classifiers.values():
            norms = np.linalg.norm(clf.class_hypervectors, axis=1)
            assert np.allclose(norms, 1.0)

    def test_unnormalized_leaves_models_alone(self, trained_federation):
        fed, _, _ = trained_federation
        before = fed.classifiers[fed.root_id].class_hypervectors.copy()
        OnlineLearner(fed, normalize=False)
        assert np.array_equal(
            fed.classifiers[fed.root_id].class_hypervectors, before
        )

    def test_aggregate_children_false_no_residual_messages(
        self, trained_federation
    ):
        import copy

        fed, _, data = trained_federation
        fed2 = copy.deepcopy(fed)
        learner = OnlineLearner(fed2, aggregate_children=False, normalize=True)
        leaf = fed2.hierarchy.leaves()[0]
        dim = fed2.hierarchy.nodes[leaf].dimension
        learner.record_feedback(leaf, np.ones(dim), predicted_class=0)
        assert learner.propagate() == []

    def test_lr_decay(self, trained_federation):
        import copy

        fed, _, _ = trained_federation
        fed2 = copy.deepcopy(fed)
        learner = OnlineLearner(fed2, learning_rate=1.0, normalize=True)
        assert learner._propagations == 0
        learner.propagate()
        learner.propagate()
        assert learner._propagations == 2

    def test_invalid_feedback_mode(self, trained_federation):
        fed, _, _ = trained_federation
        with pytest.raises(ValueError):
            OnlineSession(fed, feedback_mode="telepathy")
