"""Tier-1 smoke for the packed-kernel benchmark (its --smoke mode).

Loads ``benchmarks/bench_packed_kernel.py`` and runs its
timing-independent checks: dense/packed label equivalence on a
binarized model, exact-prune bit-identity with the full packed
search, and the ``core.similarity.packed_queries`` /
``pruned_queries`` counters — the guard that neither the packed
backend nor the pruned search can silently regress without a test
noticing.
"""

import importlib.util
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


def _load_bench_module():
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = importlib.util.spec_from_file_location(
        "bench_packed_kernel_smoke", BENCH_DIR / "bench_packed_kernel.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_bench_smoke_mode():
    bench = _load_bench_module()
    evidence = bench.check_equivalence(dimension=512, batch=64)
    assert evidence["labels_equal_excl_ties"] is True
    assert evidence["exact_prune_identical"] is True
    # Three packed-backend predicts (full, exact, approx), of which
    # the two prune modes also hit the pruned-search counter.
    assert evidence["packed_queries_counted"] == 3 * 64
    assert evidence["pruned_queries_counted"] == 2 * 64


def test_bench_smoke_cli_entrypoint(capsys):
    bench = _load_bench_module()
    bench.main(["--smoke"])
    assert "packed-kernel smoke OK" in capsys.readouterr().out
