"""Unit tests for failure injection (dimension loss, message drops)."""

import numpy as np
import pytest

from repro.core.hypervector import random_bipolar
from repro.network.failure import FailureModel, drop_dimensions, flip_dimensions
from repro.network.message import Message, MessageKind


class TestDropDimensions:
    def test_fraction_zeroed(self):
        hv = random_bipolar(1000, seed=1).astype(float)
        damaged = drop_dimensions(hv, 0.3, seed=2)
        assert np.mean(damaged == 0.0) == pytest.approx(0.3, abs=0.01)

    def test_surviving_elements_unchanged(self):
        hv = random_bipolar(1000, seed=3).astype(float)
        damaged = drop_dimensions(hv, 0.5, seed=4)
        alive = damaged != 0.0
        assert np.array_equal(damaged[alive], hv[alive])

    def test_zero_loss_identity(self):
        hv = random_bipolar(100, seed=5).astype(float)
        assert np.array_equal(drop_dimensions(hv, 0.0), hv)

    def test_full_loss(self):
        hv = random_bipolar(100, seed=6).astype(float)
        assert np.all(drop_dimensions(hv, 1.0, seed=7) == 0.0)

    def test_matrix_rows_damaged_independently(self):
        mat = np.ones((50, 200))
        damaged = drop_dimensions(mat, 0.5, seed=8)
        patterns = {tuple(np.flatnonzero(row == 0)[:5]) for row in damaged}
        assert len(patterns) > 1

    def test_per_row_loss_exact(self):
        mat = np.ones((10, 100))
        damaged = drop_dimensions(mat, 0.25, seed=9)
        for row in damaged:
            assert np.sum(row == 0.0) == 25

    def test_input_not_mutated(self):
        hv = np.ones(50)
        drop_dimensions(hv, 0.5, seed=10)
        assert np.all(hv == 1.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            drop_dimensions(np.ones(4), 1.5)

    def test_deterministic(self):
        hv = random_bipolar(300, seed=11).astype(float)
        a = drop_dimensions(hv, 0.4, seed=12)
        b = drop_dimensions(hv, 0.4, seed=12)
        assert np.array_equal(a, b)


class TestFlipDimensions:
    def test_fraction_flipped(self):
        hv = np.ones(10_000)
        flipped = flip_dimensions(hv, 0.3, seed=13)
        assert np.mean(flipped == -1.0) == pytest.approx(0.3, abs=0.02)

    def test_zero_fraction_identity(self):
        hv = random_bipolar(100, seed=14).astype(float)
        assert np.array_equal(flip_dimensions(hv, 0.0), hv)

    def test_input_not_mutated(self):
        hv = np.ones(50)
        flip_dimensions(hv, 0.5, seed=15)
        assert np.all(hv == 1.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            flip_dimensions(np.ones(4), -0.1)


class TestFailureModel:
    def test_zero_probability_never_drops(self):
        model = FailureModel(0.0)
        msg = Message(0, 1, MessageKind.QUERY, 100)
        assert not any(model.message_dropped(msg) for _ in range(100))

    def test_drop_rate_statistical(self):
        model = FailureModel(0.3, seed=16)
        msg = Message(0, 1, MessageKind.QUERY, 100)
        drops = sum(model.message_dropped(msg) for _ in range(5000))
        assert drops / 5000 == pytest.approx(0.3, abs=0.03)

    def test_empty_message_never_dropped(self):
        model = FailureModel(1.0, seed=17)
        msg = Message(0, 1, MessageKind.CONTROL, 0)
        assert not model.message_dropped(msg)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FailureModel(1.5)
