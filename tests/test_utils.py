"""Unit tests for utilities: rng, tables, validation, config."""

import dataclasses

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG, EdgeHDConfig
from repro.utils.rng import derive_rng, spawn_seeds
from repro.utils.tables import format_series, format_table
from repro.utils.validation import (
    check_fitted,
    check_labels,
    check_matrix,
    check_positive,
    check_probability,
    check_vector,
)


class TestRng:
    def test_same_seed_tag_same_stream(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "x").random(5)
        assert np.array_equal(a, b)

    def test_different_tags_different_streams(self):
        a = derive_rng(7, "x").random(5)
        b = derive_rng(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_nearby_seeds_unrelated(self):
        a = derive_rng(100, "t").random(1000)
        b = derive_rng(101, "t").random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert derive_rng(gen) is gen

    def test_generator_with_tag_derives(self):
        gen = np.random.default_rng(1)
        derived = derive_rng(gen, "sub")
        assert derived is not gen

    def test_none_uses_default(self):
        a = derive_rng(None, "z").random(3)
        b = derive_rng(None, "z").random(3)
        assert np.array_equal(a, b)

    def test_bad_seed_type(self):
        with pytest.raises(TypeError):
            derive_rng("seed", "x")

    def test_spawn_seeds(self):
        seeds = spawn_seeds(5, 10)
        assert len(seeds) == 10
        assert len(set(seeds)) == 10

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(5, 4) == spawn_seeds(5, 4)

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestTables:
    def test_format_table_basic(self):
        out = format_table(["a", "bb"], [[1, 2.5], [3, 4.125]], ndigits=2)
        assert "| a | bb   |" in out
        assert "4.12" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        out = format_series("speedup", [1, 2], [1.5, 3.0])
        assert "speedup:" in out
        assert "2=3.000" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 1.5) == 1.5
        with pytest.raises(ValueError):
            check_positive("x", 0)
        assert check_positive("x", 0, allow_zero=True) == 0
        with pytest.raises(ValueError):
            check_positive("x", float("nan"))

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability("p", -0.1)
        with pytest.raises(ValueError):
            check_probability("p", 1.1)

    def test_check_vector(self):
        v = check_vector("v", [1, 2, 3], length=3)
        assert v.dtype == np.float64
        with pytest.raises(ValueError):
            check_vector("v", [[1, 2]])
        with pytest.raises(ValueError):
            check_vector("v", [1, 2], length=3)

    def test_check_matrix(self):
        m = check_matrix("m", [[1, 2], [3, 4]], cols=2)
        assert m.shape == (2, 2)
        promoted = check_matrix("m", [1, 2, 3])
        assert promoted.shape == (1, 3)
        with pytest.raises(ValueError):
            check_matrix("m", [[1, 2]], cols=3)
        with pytest.raises(ValueError):
            check_matrix("m", np.zeros((2, 2, 2)))

    def test_check_fitted(self):
        class Thing:
            model = None

        with pytest.raises(RuntimeError):
            check_fitted(Thing(), "model")
        thing = Thing()
        thing.model = 1
        check_fitted(thing, "model")

    def test_check_labels(self):
        y = check_labels("y", [0, 1, 2], n_classes=3)
        assert y.dtype == np.int64
        with pytest.raises(ValueError):
            check_labels("y", [0.5, 1.0])
        with pytest.raises(ValueError):
            check_labels("y", [-1, 0])
        with pytest.raises(ValueError):
            check_labels("y", [0, 3], n_classes=3)
        with pytest.raises(ValueError):
            check_labels("y", [[0, 1]])

    def test_check_labels_float_integers_ok(self):
        y = check_labels("y", np.array([0.0, 1.0, 2.0]))
        assert np.array_equal(y, [0, 1, 2])


class TestConfig:
    def test_paper_defaults(self):
        """Sec. VI-A default parameters."""
        assert DEFAULT_CONFIG.dimension == 4000
        assert DEFAULT_CONFIG.batch_size == 75
        assert DEFAULT_CONFIG.compression_count == 25
        assert DEFAULT_CONFIG.confidence_threshold == 0.75
        assert DEFAULT_CONFIG.sparsity == 0.8
        assert DEFAULT_CONFIG.retrain_epochs == 20

    def test_with_overrides(self):
        cfg = DEFAULT_CONFIG.with_overrides(dimension=1000)
        assert cfg.dimension == 1000
        assert cfg.batch_size == DEFAULT_CONFIG.batch_size
        assert DEFAULT_CONFIG.dimension == 4000  # original untouched

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.dimension = 1

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeHDConfig(dimension=0)
        with pytest.raises(ValueError):
            EdgeHDConfig(confidence_threshold=2.0)
        with pytest.raises(ValueError):
            EdgeHDConfig(encoder="mystery")
        with pytest.raises(ValueError):
            EdgeHDConfig(sparsity=1.5)
