"""OpenMetrics / Prometheus text exposition for the metrics registry.

:func:`render_openmetrics` serializes a
:class:`~repro.obs.registry.MetricsRegistry` — including the labeled
per-node series the telemetry sampler records — into the OpenMetrics
text format (the ``# TYPE`` / ``# EOF`` dialect Prometheus scrapes), so
a serving run's metrics can be dropped straight into any standard
dashboard stack. Dotted repro names become underscore names
(``serve.latency.total_ms`` → ``serve_latency_total_ms``); the original
dotted name is preserved in the ``# HELP`` line so the exposition stays
greppable back to source.

:func:`parse_openmetrics` is the minimal inverse used by the round-trip
tests and ``repro stats``: it reads an exposition back into
``{metric_family: {"type": ..., "samples": [(name, labels, value)]}}``.

Histograms follow the Prometheus convention: cumulative ``_bucket``
series with an ``le`` label (``+Inf`` last), plus ``_sum`` and
``_count``. Counters gain the ``_total`` suffix.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = ["render_openmetrics", "parse_openmetrics"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

#: one exposition sample: ``(sample name, labels, value)``.
Sample = Tuple[str, Dict[str, str], float]


def sanitize_name(name: str) -> str:
    """Map a dotted repro metric name onto the OpenMetrics charset."""
    out = _NAME_OK.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{sanitize_name(k)}="{_escape(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if isinstance(value, float) else str(value)


def render_openmetrics(registry: Optional[MetricsRegistry] = None) -> str:
    """Serialize the registry as OpenMetrics text (ends with ``# EOF``)."""
    reg = registry if registry is not None else get_registry()
    # Group instruments by family so TYPE lines are emitted once even
    # when one name carries many label sets.
    families: Dict[str, List[object]] = {}
    order: List[str] = []
    for _, inst in reg.items():
        name = inst.name  # type: ignore[attr-defined]
        if name not in families:
            families[name] = []
            order.append(name)
        families[name].append(inst)
    lines: List[str] = []
    for name in order:
        instruments = families[name]
        kind = instruments[0].kind  # type: ignore[attr-defined]
        base = sanitize_name(name)
        lines.append(f"# TYPE {base} {kind}")
        lines.append(f"# HELP {base} source metric {name}")
        for inst in instruments:
            labels = dict(inst.labels)  # type: ignore[attr-defined]
            if isinstance(inst, Counter):
                lines.append(
                    f"{base}_total{_fmt_labels(labels)} "
                    f"{_fmt_value(inst.value)}"
                )
            elif isinstance(inst, Gauge):
                lines.append(
                    f"{base}{_fmt_labels(labels)} {_fmt_value(inst.value)}"
                )
            elif isinstance(inst, Histogram):
                running = 0
                for edge, count in zip(inst.bounds, inst.counts):
                    running += count
                    bucket = dict(labels)
                    bucket["le"] = _fmt_value(float(edge))
                    lines.append(
                        f"{base}_bucket{_fmt_labels(bucket)} {running}"
                    )
                bucket = dict(labels)
                bucket["le"] = "+Inf"
                lines.append(
                    f"{base}_bucket{_fmt_labels(bucket)} {inst.count}"
                )
                lines.append(
                    f"{base}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(inst.total)}"
                )
                lines.append(f"{base}_count{_fmt_labels(labels)} {inst.count}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:\\.|[^"\\])*)"')


def _unescape(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def parse_openmetrics(text: str) -> Dict[str, Dict[str, object]]:
    """Parse an exposition back into families (round-trip inverse).

    Returns ``{family: {"type": kind, "help": str, "samples":
    [(sample_name, labels, value), ...]}}``. Raises ``ValueError`` on a
    malformed line or a missing ``# EOF`` terminator — the strictness
    the round-trip test relies on.
    """
    families: Dict[str, Dict[str, object]] = {}
    current: Optional[str] = None
    saw_eof = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"line {lineno}: content after # EOF")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            fam, _, kind = rest.partition(" ")
            families[fam] = {"type": kind.strip(), "help": "", "samples": []}
            current = fam
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            fam, _, help_text = rest.partition(" ")
            if fam in families:
                families[fam]["help"] = help_text
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for lm in _LABEL_RE.finditer(raw_labels):
                labels[lm.group("key")] = _unescape(lm.group("val"))
        value = _parse_value(match.group("value"))
        family = current
        # A sample may belong to the family by suffix (counter _total,
        # histogram _bucket/_sum/_count) rather than exact name.
        if family is None or not name.startswith(family):
            candidates = [f for f in families if name.startswith(f)]
            family = max(candidates, key=len) if candidates else None
        if family is None:
            family = name
            families[family] = {"type": "untyped", "help": "", "samples": []}
        samples = families[family]["samples"]
        assert isinstance(samples, list)
        samples.append((name, labels, value))
    if not saw_eof:
        raise ValueError("exposition is missing the # EOF terminator")
    return families
