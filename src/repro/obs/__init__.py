"""Observability for the EdgeHD reproduction: metrics, spans, traces.

Everything here is **off by default**. Enable with::

    import repro.obs as obs
    obs.enable()                 # or: REPRO_OBS=1 in the environment

and the instrumented hot paths (encoding, retraining, escalation,
online feedback, the network simulator) start recording into a
process-local :class:`~repro.obs.registry.MetricsRegistry` and a span
:class:`~repro.obs.spans.TraceBuffer`. When disabled, every call site
reduces to a flag check — the overhead budget is enforced by
``benchmarks/bench_obs_overhead.py`` (<5% on the encode hot loop).

Fast-path helpers
-----------------
:func:`incr`, :func:`gauge_set`, :func:`gauge_add`, :func:`observe`
mutate named instruments and no-op when disabled. :func:`span` /
:func:`traced` time regions; closed spans also feed a
``span.<name>.ms`` histogram so timings show up in ``repro stats``
without exporting the trace.

Inspection
----------
:func:`snapshot` / :func:`render_stats` read the registry;
:func:`dump_stats` / :func:`load_stats` persist it across processes
(how ``repro federate`` hands metrics to ``repro stats``);
:func:`export_trace` writes the span buffer as JSON lines.
"""

from __future__ import annotations

import logging
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

from repro.obs import runtime
from repro.obs.openmetrics import parse_openmetrics, render_openmetrics
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS_MS,
    UNIT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    format_series_key,
    get_registry,
    parse_series_key,
)
from repro.obs.runtime import disable as _runtime_disable
from repro.obs.runtime import enable as _runtime_enable
from repro.obs.runtime import enabled
from repro.obs.spans import SpanRecord, TraceBuffer, get_trace, span, traced
from repro.obs.stats import (
    default_stats_path,
    dump_stats,
    load_stats,
    render_stats,
)
from repro.obs.telemetry import (
    FlightEvent,
    FlightRecorder,
    TelemetryLog,
    TelemetrySample,
    TelemetrySampler,
)

__all__ = [
    "enable",
    "disable",
    "enabled",
    "reset",
    "incr",
    "gauge_set",
    "gauge_add",
    "observe",
    "span",
    "traced",
    "get_registry",
    "get_trace",
    "snapshot",
    "render_stats",
    "dump_stats",
    "load_stats",
    "default_stats_path",
    "export_trace",
    "render_openmetrics",
    "parse_openmetrics",
    "format_series_key",
    "parse_series_key",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TraceBuffer",
    "TelemetryLog",
    "TelemetrySample",
    "TelemetrySampler",
    "FlightEvent",
    "FlightRecorder",
    "DEFAULT_TIME_BUCKETS_MS",
    "UNIT_BUCKETS",
]

_log = logging.getLogger(__name__)


def enable() -> None:
    """Start recording metrics and spans in this process."""
    _runtime_enable()
    _log.debug("observability enabled")


def disable() -> None:
    """Stop recording; already-recorded data survives until reset()."""
    _runtime_disable()
    _log.debug("observability disabled")


def reset() -> None:
    """Clear the global registry and trace buffer."""
    get_registry().reset()
    get_trace().clear()


# ----------------------------------------------------------------------
# fast-path helpers — one flag check, then a dict lookup + arithmetic
# ----------------------------------------------------------------------
def incr(
    name: str,
    amount: Union[int, float] = 1,
    labels: Optional[Mapping[str, object]] = None,
) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    if runtime.active:
        get_registry().counter(name, labels=labels).inc(amount)


def gauge_set(
    name: str,
    value: Union[int, float],
    labels: Optional[Mapping[str, object]] = None,
) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    if runtime.active:
        get_registry().gauge(name, labels=labels).set(value)


def gauge_add(
    name: str,
    amount: Union[int, float],
    labels: Optional[Mapping[str, object]] = None,
) -> None:
    """Add to gauge ``name`` (no-op when disabled)."""
    if runtime.active:
        get_registry().gauge(name, labels=labels).add(amount)


def observe(
    name: str,
    value: float,
    bounds: Optional[Sequence[float]] = None,
    labels: Optional[Mapping[str, object]] = None,
) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    if runtime.active:
        get_registry().histogram(name, bounds, labels=labels).observe(value)


def snapshot() -> dict:
    """JSON-safe dump of the global registry."""
    return get_registry().snapshot()


def export_trace(path: Union[str, Path]) -> int:
    """Write the global span buffer as JSONL; returns spans written."""
    written = get_trace().export_jsonl(path)
    _log.info("wrote %d spans to %s", written, path)
    return written
