"""Process-local metrics registry: counters, gauges, histograms.

Designed for hot loops: instruments are plain-attribute objects with no
locks (CPython attribute stores are atomic enough for the single-writer
pattern used here), and a fixed-bucket histogram observation is one
``bisect`` plus two adds. Callers normally go through the fast-path
helpers in :mod:`repro.obs` which skip all work when observability is
disabled.

Naming convention: dotted lowercase paths mirroring the package that
emits them, e.g. ``core.encode.samples``, ``hierarchy.escalations.l2``,
``network.bytes.class_model``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "format_series_key",
    "parse_series_key",
    "DEFAULT_TIME_BUCKETS_MS",
    "UNIT_BUCKETS",
]

#: Geometric latency buckets (milliseconds), ~1 µs to ~100 s.
DEFAULT_TIME_BUCKETS_MS: Tuple[float, ...] = tuple(
    round(base * 10.0 ** exp, 6)
    for exp in range(-3, 5)
    for base in (1.0, 2.5, 5.0)
)

#: Linear buckets over [0, 1] for probabilities / confidences.
UNIT_BUCKETS: Tuple[float, ...] = tuple(round(0.05 * i, 2) for i in range(1, 21))

#: A frozen, sorted label set, e.g. ``(("node", "3"), ("stage", "encode"))``.
Labels = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Mapping[str, Any]]) -> Labels:
    """Canonicalize a label mapping: sorted keys, string values."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_series_key(name: str, labels: Optional[Mapping[str, Any]] = None) -> str:
    """Canonical registry key: ``name`` or ``name{k="v",...}``."""
    frozen = labels if isinstance(labels, tuple) else _freeze_labels(labels)
    if not frozen:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in frozen)
    return f"{name}{{{inner}}}"


def parse_series_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Inverse of :func:`format_series_key` (for snapshot round-trips)."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: Dict[str, str] = {}
    for part in inner[:-1].split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v.strip('"')
    return name, labels


class Counter:
    """Monotonically non-decreasing count."""

    __slots__ = ("name", "value", "labels")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self.labels: Labels = ()

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "value": self.value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Gauge:
    """Last-written value; may move in either direction."""

    __slots__ = ("name", "value", "labels")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0
        self.labels: Labels = ()

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, amount: Union[int, float]) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "value": self.value}
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in an implicit overflow bucket. Bounds are frozen at
    creation — no re-bucketing on the fast path.
    """

    __slots__ = (
        "name", "bounds", "counts", "count", "total", "vmin", "vmax", "labels",
    )
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} bounds must be increasing")
        self.name = name
        self.bounds = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self.labels: Labels = ()

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper edges."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else self.vmax
        return self.vmax

    def to_dict(self) -> dict:
        out: dict = {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }
        if self.labels:
            out["labels"] = dict(self.labels)
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Series-key -> instrument map with get-or-create semantics.

    Plain metrics are keyed by name; *labeled* metrics (the telemetry
    sampler's per-node time-series use these) are keyed by
    ``name{k="v",...}`` with sorted label keys, so one metric name can
    carry many label combinations without losing greppability — the
    name prefix stays a source-literal string.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # -- get-or-create -------------------------------------------------
    def _get(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]],
        cls: Type[Any],
        *args: Any,
    ) -> Instrument:
        frozen = _freeze_labels(labels)
        key = format_series_key(name, frozen)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, *args)
            inst.labels = frozen
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {key!r} already registered as {inst.kind}, "
                f"requested {cls.kind}"
            )
        return inst

    def counter(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Counter:
        inst = self._get(name, labels, Counter)
        assert isinstance(inst, Counter)
        return inst

    def gauge(
        self, name: str, labels: Optional[Mapping[str, Any]] = None
    ) -> Gauge:
        inst = self._get(name, labels, Gauge)
        assert isinstance(inst, Gauge)
        return inst

    def histogram(
        self,
        name: str,
        bounds: Optional[Sequence[float]] = None,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> Histogram:
        inst = self._get(
            name, labels, Histogram, bounds or DEFAULT_TIME_BUCKETS_MS
        )
        assert isinstance(inst, Histogram)
        return inst

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def items(self) -> Iterable[Tuple[str, Instrument]]:
        return sorted(self._instruments.items())

    def reset(self) -> None:
        """Drop every instrument (fresh registry)."""
        self._instruments.clear()

    # -- snapshot / restore --------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe dump of every instrument's current state."""
        return {name: inst.to_dict() for name, inst in self.items()}

    def load_snapshot(self, data: Dict[str, dict]) -> None:
        """Restore instruments from :meth:`snapshot` output.

        Used by ``repro stats`` to render a dump written by an earlier
        process. Existing same-named instruments are replaced.
        """
        for key, payload in data.items():
            name, _ = parse_series_key(key)
            kind = payload.get("kind")
            if kind == "counter":
                inst: Instrument = Counter(name)
                inst.value = payload["value"]
            elif kind == "gauge":
                inst = Gauge(name)
                inst.value = payload["value"]
            elif kind == "histogram":
                inst = Histogram(name, payload["bounds"])
                inst.counts = list(payload["counts"])
                inst.count = payload["count"]
                inst.total = payload["sum"]
                inst.vmin = payload["min"] if payload["min"] is not None else float("inf")
                inst.vmax = payload["max"] if payload["max"] is not None else float("-inf")
            else:
                raise ValueError(f"unknown instrument kind {kind!r} for {key!r}")
            inst.labels = _freeze_labels(payload.get("labels"))
            self._instruments[format_series_key(name, inst.labels)] = inst

    # -- merging (multi-process runs) ----------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other``'s instruments into this registry, in place.

        Combination rules (per series key): **counters add**, **gauges
        take the last writer** (``other`` wins), **histogram buckets
        sum** — which requires identical bounds; a bounds or kind
        mismatch for the same key raises. Used by ``repro stats
        --merge`` to combine per-worker snapshots of a multi-process
        serving run. Returns ``self`` for chaining.
        """
        for key, theirs in other._instruments.items():
            mine = self._instruments.get(key)
            if mine is None:
                clone_data = {key: theirs.to_dict()}
                self.load_snapshot(clone_data)
                continue
            if mine.kind != theirs.kind:
                raise TypeError(
                    f"cannot merge {key!r}: {mine.kind} vs {theirs.kind}"
                )
            if isinstance(mine, Counter) and isinstance(theirs, Counter):
                mine.value += theirs.value
            elif isinstance(mine, Gauge) and isinstance(theirs, Gauge):
                mine.value = theirs.value
            elif isinstance(mine, Histogram) and isinstance(theirs, Histogram):
                if mine.bounds != theirs.bounds:
                    raise ValueError(
                        f"cannot merge histogram {key!r}: bucket bounds "
                        f"differ ({len(mine.bounds)} vs {len(theirs.bounds)} "
                        "edges or unequal values)"
                    )
                mine.counts = [
                    a + b for a, b in zip(mine.counts, theirs.counts)
                ]
                mine.count += theirs.count
                mine.total += theirs.total
                mine.vmin = min(mine.vmin, theirs.vmin)
                mine.vmax = max(mine.vmax, theirs.vmax)
        return self

    # -- rendering -----------------------------------------------------
    def render_table(self) -> str:
        """Human-readable dump, one instrument per line."""
        if not self._instruments:
            return "(no metrics recorded)"
        rows = []
        for name, inst in self.items():
            if isinstance(inst, Histogram):
                detail = (
                    f"count={inst.count} mean={inst.mean:.4g} "
                    f"p50={inst.quantile(0.5):.4g} p95={inst.quantile(0.95):.4g} "
                    f"max={(inst.vmax if inst.count else 0.0):.4g}"
                )
            else:
                value = inst.value
                detail = f"{value:.4g}" if isinstance(value, float) else str(value)
            rows.append((name, inst.kind, detail))
        width = max(len(r[0]) for r in rows)
        lines = [f"{'metric':<{width}}  {'type':<9}  value"]
        lines += [f"{n:<{width}}  {k:<9}  {d}" for n, k, d in rows]
        return "\n".join(lines)


#: The process-wide registry used by the fast-path helpers.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The global registry all instrumented repro code writes into."""
    return _REGISTRY
