"""Process-local metrics registry: counters, gauges, histograms.

Designed for hot loops: instruments are plain-attribute objects with no
locks (CPython attribute stores are atomic enough for the single-writer
pattern used here), and a fixed-bucket histogram observation is one
``bisect`` plus two adds. Callers normally go through the fast-path
helpers in :mod:`repro.obs` which skip all work when observability is
disabled.

Naming convention: dotted lowercase paths mirroring the package that
emits them, e.g. ``core.encode.samples``, ``hierarchy.escalations.l2``,
``network.bytes.class_model``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "DEFAULT_TIME_BUCKETS_MS",
    "UNIT_BUCKETS",
]

#: Geometric latency buckets (milliseconds), ~1 µs to ~100 s.
DEFAULT_TIME_BUCKETS_MS: Tuple[float, ...] = tuple(
    round(base * 10.0 ** exp, 6)
    for exp in range(-3, 5)
    for base in (1.0, 2.5, 5.0)
)

#: Linear buckets over [0, 1] for probabilities / confidences.
UNIT_BUCKETS: Tuple[float, ...] = tuple(round(0.05 * i, 2) for i in range(1, 21))


class Counter:
    """Monotonically non-decreasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value; may move in either direction."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Union[int, float] = 0

    def set(self, value: Union[int, float]) -> None:
        self.value = value

    def add(self, amount: Union[int, float]) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in an implicit overflow bucket. Bounds are frozen at
    creation — no re-bucketing on the fast path.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "vmin", "vmax")
    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} bounds must be increasing")
        self.name = name
        self.bounds = edges
        self.counts: List[int] = [0] * (len(edges) + 1)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket upper edges."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= target:
                return self.bounds[i] if i < len(self.bounds) else self.vmax
        return self.vmax

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.total,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Name -> instrument map with get-or-create semantics."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    # -- get-or-create -------------------------------------------------
    def _get(self, name: str, cls: Type[Any], *args: Any) -> Instrument:
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, *args)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"requested {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        return self._get(name, Histogram, bounds or DEFAULT_TIME_BUCKETS_MS)

    # -- introspection -------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def get(self, name: str) -> Optional[Instrument]:
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def items(self) -> Iterable[Tuple[str, Instrument]]:
        return sorted(self._instruments.items())

    def reset(self) -> None:
        """Drop every instrument (fresh registry)."""
        self._instruments.clear()

    # -- snapshot / restore --------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe dump of every instrument's current state."""
        return {name: inst.to_dict() for name, inst in self.items()}

    def load_snapshot(self, data: Dict[str, dict]) -> None:
        """Restore instruments from :meth:`snapshot` output.

        Used by ``repro stats`` to render a dump written by an earlier
        process. Existing same-named instruments are replaced.
        """
        for name, payload in data.items():
            kind = payload.get("kind")
            if kind == "counter":
                inst: Instrument = Counter(name)
                inst.value = payload["value"]
            elif kind == "gauge":
                inst = Gauge(name)
                inst.value = payload["value"]
            elif kind == "histogram":
                inst = Histogram(name, payload["bounds"])
                inst.counts = list(payload["counts"])
                inst.count = payload["count"]
                inst.total = payload["sum"]
                inst.vmin = payload["min"] if payload["min"] is not None else float("inf")
                inst.vmax = payload["max"] if payload["max"] is not None else float("-inf")
            else:
                raise ValueError(f"unknown instrument kind {kind!r} for {name!r}")
            self._instruments[name] = inst

    # -- rendering -----------------------------------------------------
    def render_table(self) -> str:
        """Human-readable dump, one instrument per line."""
        if not self._instruments:
            return "(no metrics recorded)"
        rows = []
        for name, inst in self.items():
            if isinstance(inst, Histogram):
                detail = (
                    f"count={inst.count} mean={inst.mean:.4g} "
                    f"p50={inst.quantile(0.5):.4g} p95={inst.quantile(0.95):.4g} "
                    f"max={(inst.vmax if inst.count else 0.0):.4g}"
                )
            else:
                value = inst.value
                detail = f"{value:.4g}" if isinstance(value, float) else str(value)
            rows.append((name, inst.kind, detail))
        width = max(len(r[0]) for r in rows)
        lines = [f"{'metric':<{width}}  {'type':<9}  value"]
        lines += [f"{n:<{width}}  {k:<9}  {d}" for n, k, d in rows]
        return "\n".join(lines)


#: The process-wide registry used by the fast-path helpers.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The global registry all instrumented repro code writes into."""
    return _REGISTRY
