"""Persisting and rendering metric snapshots across processes.

The registry is process-local; ``repro stats`` runs in a *new* process,
so instrumented CLI commands dump their registry to a JSON file on exit
(default ``repro-obs-stats.json`` in the working directory, overridable
with ``REPRO_OBS_STATS``) and ``repro stats`` renders that file.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional, Union

from repro.obs.registry import MetricsRegistry, get_registry

__all__ = [
    "default_stats_path",
    "dump_stats",
    "load_stats",
    "render_stats",
]

_STATS_ENV = "REPRO_OBS_STATS"
_DEFAULT_FILENAME = "repro-obs-stats.json"


def default_stats_path() -> Path:
    """Where CLI commands persist their registry snapshot."""
    return Path(os.environ.get(_STATS_ENV, _DEFAULT_FILENAME))


def dump_stats(
    path: Optional[Union[str, Path]] = None,
    registry: Optional[MetricsRegistry] = None,
) -> Path:
    """Write the registry snapshot as JSON; returns the path written."""
    target = Path(path) if path is not None else default_stats_path()
    reg = registry if registry is not None else get_registry()
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(reg.snapshot(), indent=2, sort_keys=True) + "\n")
    return target


def load_stats(path: Optional[Union[str, Path]] = None) -> MetricsRegistry:
    """Read a :func:`dump_stats` file into a fresh registry."""
    source = Path(path) if path is not None else default_stats_path()
    data: Dict[str, dict] = json.loads(source.read_text())
    registry = MetricsRegistry()
    registry.load_snapshot(data)
    return registry


def render_stats(
    registry: Optional[MetricsRegistry] = None, as_json: bool = False
) -> str:
    """Format a registry for terminal output (table or JSON)."""
    reg = registry if registry is not None else get_registry()
    if as_json:
        return json.dumps(reg.snapshot(), indent=2, sort_keys=True)
    return reg.render_table()
