"""Span tracing: nested wall-time measurement with a JSONL trace log.

A *span* is one timed region — ``with span("encode", n=512): ...`` —
recorded with nanosecond wall time (``time.perf_counter_ns``), its
nesting depth, its parent span, and arbitrary scalar attributes. Closed
spans land in an in-memory ring buffer exportable as JSON lines, and
every span also feeds a ``span.<name>.ms`` histogram in the metrics
registry so ``repro stats`` can summarise timings without the trace.

When observability is disabled (:mod:`repro.obs.runtime`),
:func:`span` returns a shared do-nothing context manager — the cost is
one attribute check and one allocation-free call.

The span stack is process-global and not thread-aware by design: the
reproduction's hot paths are single-threaded numpy code, and keeping
the stack a plain list keeps the enabled-mode overhead at a few
hundred nanoseconds per span.
"""

from __future__ import annotations

import functools
import json
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Union

from repro.obs import runtime
from repro.obs.registry import get_registry

__all__ = [
    "SpanRecord",
    "TraceBuffer",
    "get_trace",
    "span",
    "traced",
]


@dataclass
class SpanRecord:
    """One closed span."""

    name: str
    start_ns: int
    duration_ns: int
    depth: int
    parent: Optional[str] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "depth": self.depth,
            "parent": self.parent,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanRecord":
        return cls(
            name=data["name"],
            start_ns=int(data["start_ns"]),
            duration_ns=int(data["duration_ns"]),
            depth=int(data["depth"]),
            parent=data.get("parent"),
            attrs=dict(data.get("attrs") or {}),
        )


class TraceBuffer:
    """Bounded ring buffer of closed spans (oldest dropped first).

    Backed by a ``deque(maxlen=...)`` so eviction is O(1) — a long
    serving run cycling millions of spans pays constant time and
    constant memory, not the O(n) front-of-list delete a plain list
    would. Evictions are counted in :attr:`dropped` so truncated
    exports are visible rather than silently shorter.
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = int(max_spans)
        self._records: Deque[SpanRecord] = deque(maxlen=self.max_spans)
        #: closed spans evicted because the ring was full.
        self.dropped = 0

    def add(self, record: SpanRecord) -> None:
        if len(self._records) == self.max_spans:
            self.dropped += 1
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[SpanRecord]:
        return iter(self._records)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0

    # -- JSONL ---------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> int:
        """Write one JSON object per line; returns spans written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as fh:
            for record in self._records:
                fh.write(json.dumps(record.to_dict()) + "\n")
        return len(self._records)

    @staticmethod
    def load_jsonl(path: Union[str, Path]) -> List[SpanRecord]:
        """Parse a trace file back into records (inverse of export)."""
        records = []
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    records.append(SpanRecord.from_dict(json.loads(line)))
        return records


_TRACE = TraceBuffer()
#: Stack of (name, start_ns, attrs) for currently-open spans.
_STACK: List["_Span"] = []


def get_trace() -> TraceBuffer:
    """The process-wide trace buffer."""
    return _TRACE


class _Span:
    """Live (recording) span context manager."""

    __slots__ = ("name", "attrs", "start_ns", "depth", "parent")

    def __init__(self, name: str, attrs: Dict[str, Any]) -> None:
        self.name = name
        self.attrs = attrs
        self.start_ns = 0
        self.depth = 0
        self.parent: Optional[str] = None

    def __enter__(self) -> "_Span":
        self.depth = len(_STACK)
        self.parent = _STACK[-1].name if _STACK else None
        _STACK.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        duration = time.perf_counter_ns() - self.start_ns
        if _STACK and _STACK[-1] is self:
            _STACK.pop()
        record = SpanRecord(
            name=self.name,
            start_ns=self.start_ns,
            duration_ns=duration,
            depth=self.depth,
            parent=self.parent,
            attrs=self.attrs,
        )
        _TRACE.add(record)
        get_registry().histogram(f"span.{self.name}.ms").observe(duration / 1e6)

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the open span (e.g. a computed count)."""
        self.attrs.update(attrs)


class _NullSpan:
    """Shared no-op stand-in returned when observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        return None

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs: Any) -> Union[_Span, _NullSpan]:
    """Open a timed region: ``with span("encode", n=batch): ...``."""
    if not runtime.active:
        return _NULL_SPAN
    return _Span(name, attrs)


def traced(name: Optional[str] = None) -> Callable:
    """Decorator form of :func:`span`; defaults to the function name."""

    def decorate(fn: Callable) -> Callable:
        span_name = name or fn.__name__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not runtime.active:
                return fn(*args, **kwargs)
            with _Span(span_name, {}):
                return fn(*args, **kwargs)

        return wrapper

    return decorate
