"""Global on/off switch for the observability subsystem.

Instrumentation is compiled into the hot paths permanently; this module
holds the single boolean that decides whether those call sites do any
work. The flag lives in one place so every helper — counters, spans,
trace export — reads the same state, and so the disabled fast path is
a single attribute load and branch.

The flag starts from the ``REPRO_OBS`` environment variable (``1`` /
``true`` / ``on`` enable it) and can be flipped at runtime with
:func:`enable` / :func:`disable`.
"""

from __future__ import annotations

import os

__all__ = ["enable", "disable", "enabled"]

_TRUTHY = {"1", "true", "yes", "on"}

#: Module-level flag read by the fast-path helpers. Other repro.obs
#: modules must access it as ``runtime.active`` (not ``from ... import``)
#: so toggles are seen everywhere.
active: bool = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY


def enable() -> None:
    """Turn instrumentation on for this process."""
    global active
    active = True


def disable() -> None:
    """Turn instrumentation off; recorded data is kept until reset."""
    global active
    active = False


def enabled() -> bool:
    """Is instrumentation currently recording?"""
    return active
