"""Runtime telemetry: labeled time-series sampling and a flight recorder.

Two complementary evidence streams for the serving stack:

* :class:`TelemetryLog` + :class:`TelemetrySampler` — a periodic
  sampler (an asyncio task inside ``ServingRuntime``) records *labeled*
  time-series: queue depth, in-flight count, batch size and
  retry/timeout/degraded counters per node, each sample stamped with
  seconds-since-run-start. Samples land both in the log (exportable as
  JSONL for plotting) and in labeled gauges of the
  :class:`~repro.obs.registry.MetricsRegistry`, so ``repro stats`` can
  answer "what was queue depth at node 3?" after the run.

* :class:`FlightRecorder` — a bounded ring buffer of *fault events*
  (drops, dimension loss, crashes, timeouts, shed and degraded
  answers), each tagged with its causal request id. Dumpable on run
  end for post-mortems: the record of *why* a request degraded, not
  just that it did.

Both buffers are rings with dropped-event counters — long serving runs
stay bounded in memory and truncation is visible, never silent.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import Counter as TallyCounter
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.obs.registry import Labels, MetricsRegistry, get_registry

__all__ = [
    "TelemetrySample",
    "TelemetryLog",
    "TelemetrySampler",
    "FlightEvent",
    "FlightRecorder",
    "Probe",
]

#: One probe reading: ``(metric name, labels, value)``.
Reading = Tuple[str, Mapping[str, Any], float]

#: A probe produces the readings of one sampling tick.
Probe = Callable[[], Iterable[Reading]]


def _freeze(labels: Mapping[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclass(frozen=True)
class TelemetrySample:
    """One labeled time-series point."""

    t_s: float
    name: str
    value: float
    labels: Labels = ()

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "name": self.name,
            "value": self.value,
            "labels": dict(self.labels),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TelemetrySample":
        return cls(
            t_s=float(data["t_s"]),
            name=str(data["name"]),
            value=float(data["value"]),
            labels=_freeze(data.get("labels") or {}),
        )


class TelemetryLog:
    """Bounded ring of :class:`TelemetrySample` (oldest dropped first)."""

    def __init__(self, max_samples: int = 200_000) -> None:
        if max_samples < 1:
            raise ValueError(f"max_samples must be >= 1, got {max_samples}")
        self.max_samples = int(max_samples)
        self._samples: Deque[TelemetrySample] = deque(maxlen=self.max_samples)
        #: samples evicted because the ring was full.
        self.dropped = 0

    def record(
        self,
        name: str,
        value: float,
        t_s: float,
        labels: Optional[Mapping[str, Any]] = None,
    ) -> TelemetrySample:
        sample = TelemetrySample(
            t_s=float(t_s),
            name=name,
            value=float(value),
            labels=_freeze(labels or {}),
        )
        if len(self._samples) == self.max_samples:
            self.dropped += 1
        self._samples.append(sample)
        return sample

    def __len__(self) -> int:
        return len(self._samples)

    def __iter__(self) -> Iterator[TelemetrySample]:
        return iter(self._samples)

    def names(self) -> List[str]:
        return sorted({s.name for s in self._samples})

    def series(
        self, name: str, **labels: Any
    ) -> List[Tuple[float, float]]:
        """``(t_s, value)`` points of one series, filtered by labels."""
        want = _freeze(labels)
        return [
            (s.t_s, s.value)
            for s in self._samples
            if s.name == name and all(item in s.labels for item in want)
        ]

    def clear(self) -> None:
        self._samples.clear()
        self.dropped = 0

    # -- JSONL ---------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> int:
        """One JSON object per sample; returns samples written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as fh:
            for sample in self._samples:
                fh.write(json.dumps(sample.to_dict()) + "\n")
        return len(self._samples)

    @staticmethod
    def load_jsonl(path: Union[str, Path]) -> "TelemetryLog":
        """Parse an exported file back into a log (inverse of export)."""
        log = TelemetryLog()
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    sample = TelemetrySample.from_dict(json.loads(line))
                    log.record(
                        sample.name, sample.value, sample.t_s,
                        dict(sample.labels),
                    )
        return log


class TelemetrySampler:
    """Periodic probe runner: one asyncio task, many labeled series.

    ``probe`` is called once per tick and yields ``(name, labels,
    value)`` readings; each reading is appended to the log and mirrored
    into a labeled gauge of ``registry``. ``clock`` supplies the sample
    timestamp (the serving runtime passes seconds-since-run-start so
    exported series align with request traces).
    """

    def __init__(
        self,
        probe: Probe,
        interval_s: float = 0.025,
        log: Optional[TelemetryLog] = None,
        registry: Optional[MetricsRegistry] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.probe = probe
        self.interval_s = float(interval_s)
        self.log = log if log is not None else TelemetryLog()
        self._registry = registry
        self._clock = clock
        #: completed sampling ticks.
        self.n_ticks = 0

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        return time.monotonic()

    def sample_once(self, t_s: Optional[float] = None) -> int:
        """Run the probe once; returns readings recorded."""
        now = self._now() if t_s is None else float(t_s)
        registry = self._registry if self._registry is not None else get_registry()
        n = 0
        for name, labels, value in self.probe():
            self.log.record(name, value, now, labels)
            registry.gauge(name, labels=labels).set(value)
            n += 1
        self.n_ticks += 1
        return n

    async def run(self) -> None:
        """Sample forever at ``interval_s``; cancel to stop."""
        while True:
            self.sample_once()
            await asyncio.sleep(self.interval_s)


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlightEvent:
    """One fault event with its causal request id (-1 = no request)."""

    t_s: float
    kind: str
    node: int = -1
    request_id: int = -1
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "kind": self.kind,
            "node": self.node,
            "request": self.request_id,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FlightEvent":
        return cls(
            t_s=float(data["t_s"]),
            kind=str(data["kind"]),
            node=int(data.get("node", -1)),
            request_id=int(data.get("request", -1)),
            attrs=dict(data.get("attrs") or {}),
        )


class FlightRecorder:
    """Bounded ring of fault events, dumpable on run end.

    The serving runtime records every drop, payload corruption, crash
    refusal, timeout, shed and degraded answer here with the request id
    that suffered it — the post-mortem evidence for "why did request
    4012 degrade?". Ring semantics keep a chaos soak bounded; evicted
    events are counted, not silently lost.
    """

    def __init__(self, max_events: int = 8192) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = int(max_events)
        self._events: Deque[FlightEvent] = deque(maxlen=self.max_events)
        #: events evicted because the ring was full.
        self.dropped = 0

    def record(
        self,
        kind: str,
        t_s: float,
        node: int = -1,
        request_id: int = -1,
        **attrs: Any,
    ) -> FlightEvent:
        event = FlightEvent(
            t_s=float(t_s), kind=kind, node=int(node),
            request_id=int(request_id), attrs=attrs,
        )
        if len(self._events) == self.max_events:
            self.dropped += 1
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FlightEvent]:
        return iter(self._events)

    def events(self) -> List[FlightEvent]:
        return list(self._events)

    def for_request(self, request_id: int) -> List[FlightEvent]:
        """All fault events attributed to one request, in order."""
        return [e for e in self._events if e.request_id == request_id]

    def by_kind(self) -> Dict[str, int]:
        """Event counts per kind (the post-mortem headline)."""
        return dict(TallyCounter(e.kind for e in self._events))

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    # -- dumping -------------------------------------------------------
    def export_jsonl(self, path: Union[str, Path]) -> int:
        """One JSON object per event; returns events written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as fh:
            for event in self._events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return len(self._events)

    @staticmethod
    def load_jsonl(path: Union[str, Path]) -> List[FlightEvent]:
        events = []
        with Path(path).open() as fh:
            for line in fh:
                line = line.strip()
                if line:
                    events.append(FlightEvent.from_dict(json.loads(line)))
        return events

    def summary(self) -> str:
        """Human-readable post-mortem headline."""
        if not self._events:
            return "flight recorder: no fault events"
        counts = self.by_kind()
        parts = [f"{kind} x{n}" for kind, n in sorted(counts.items())]
        requests = {e.request_id for e in self._events if e.request_id >= 0}
        lines = [
            f"flight recorder: {len(self._events)} fault events "
            f"({self.dropped} dropped from ring) across "
            f"{len(requests)} requests",
            "  " + ", ".join(parts),
        ]
        return "\n".join(lines)
