"""Command-line interface for the EdgeHD reproduction.

Subcommands
-----------
``train``
    Train a centralized EdgeHD model on a Table-I dataset stand-in and
    optionally save the class hypervectors to an ``.npz`` checkpoint.
``federate``
    Run federated training over a STAR/TREE/PECAN hierarchy and report
    per-level accuracy and communication volume.
``serve-bench``
    Train a federation and serve its test set live through the asyncio
    runtime (:mod:`repro.serve`): micro-batching, bounded queues, and a
    per-stage latency breakdown with p50/p95/p99. With observability
    on, ``--trace`` writes the *request-level* trace (one event per
    line, not spans), and ``--telemetry`` / ``--flight`` /
    ``--openmetrics`` export the sampled time-series, the flight
    recorder and a Prometheus-scrapable exposition.
``serve-report``
    Offline analysis of a ``serve-bench --trace`` file: per-stage
    latency breakdown, critical-path attribution per percentile band,
    degradation root causes, SLO attainment (``--slo-ms``) and one
    full request timeline (``--request`` to pick one).
``reproduce``
    Regenerate one (or all) of the paper's tables/figures.
``datasets``
    List the Table-I dataset registry.
``report``
    Stitch saved benchmark reports into one markdown document.
``stats``
    Render the metrics registry dumped by an instrumented run
    (``--format table|json|openmetrics``); ``--merge a.json b.json``
    folds several dumps first (counters add, gauges last-writer,
    histogram buckets sum).
``lint``
    Run the repo-specific AST invariant checker
    (:mod:`repro.analysis`) over source paths.
``topology``
    Elastic topology control plane: ``checkpoint`` trains a federation
    and saves full topology state (format v2), ``restore`` loads and
    describes it, ``join`` / ``drain`` admit or remove an end node at
    runtime (retraining only the dirtied nodes) and re-checkpoint.

Observability
-------------
With ``REPRO_OBS=1`` (or a ``--trace`` flag, which implies it) the
``train`` / ``federate`` / ``reproduce`` commands record metrics and
spans (see :mod:`repro.obs`), dump the registry to
``repro-obs-stats.json`` on exit, and — when ``--trace PATH`` is given
— write the span trace as JSON lines to ``PATH``. For ``serve-bench``
the same flag writes the request-level trace instead (the input of
``serve-report``). ``repro stats`` pretty-prints the dump. ``-v`` /
``-vv`` turn on INFO / DEBUG logging for the ``repro.*`` namespace.

Examples
--------
::

    python -m repro.cli datasets
    python -m repro.cli train --dataset ISOLET --dimension 2000
    python -m repro.cli -v federate --dataset PDP --topology tree
    REPRO_OBS=1 python -m repro.cli federate --dataset PDP
    python -m repro.cli stats
    python -m repro.cli reproduce --figure table2 --quick --trace run.jsonl
    python -m repro.cli serve-bench --faults --trace t.jsonl
    python -m repro.cli serve-report t.jsonl --slo-ms 25
    python -m repro.cli stats --merge w0.json w1.json --format openmetrics
    python -m repro.cli lint src/ --format json
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

import repro.obs as obs
from repro.config import EdgeHDConfig
from repro.core.model import EdgeHDModel
from repro.core.search import PRUNE_MODES, BACKENDS, SearchSpec, set_default_search
from repro.data import DATASETS, dataset_names, load_dataset, partition_features
from repro.hierarchy import (
    EdgeHDFederation,
    HierarchicalInference,
    build_pecan,
    build_star,
    build_tree,
)

__all__ = ["main", "build_parser"]

logger = logging.getLogger(__name__)


def _configure_logging(verbosity: int) -> None:
    """Route ``repro.*`` diagnostics to stderr at the requested level."""
    if verbosity <= 0:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)


def _add_search_args(p: argparse.ArgumentParser) -> None:
    """The unified associative-search flags (train/reproduce/serve-bench)."""
    p.add_argument(
        "--search-backend", default=None, choices=BACKENDS,
        help="associative-search backend (default: dense, or packed "
             "when --search-prune is set)",
    )
    p.add_argument(
        "--search-prune", default=None, choices=PRUNE_MODES,
        help="prefix pruning mode of the packed kernel (default: off)",
    )
    p.add_argument(
        "--search-prefix", type=float, default=None, metavar="FRACTION",
        help="fraction of packed words scored in the prefix pass "
             "(default: 0.125)",
    )
    p.add_argument(
        "--search-margin", type=float, default=None, metavar="MARGIN",
        help="prefix similarity margin for the approximate early accept "
             "(default: 0.05)",
    )


def _search_spec_from_args(args: argparse.Namespace) -> Optional[SearchSpec]:
    """Build a SearchSpec from --search-* flags; None when none given."""
    backend = args.search_backend
    prune = args.search_prune
    prefix = args.search_prefix
    margin = args.search_margin
    if backend is None and prune is None and prefix is None and margin is None:
        return None
    if backend is None:
        # Pruning only exists on the packed path, so asking for it
        # implies the backend.
        backend = "packed" if prune not in (None, "off") else "dense"
    defaults = SearchSpec()
    return SearchSpec(
        backend=backend,
        prune=prune if prune is not None else defaults.prune,
        prefix_fraction=(
            prefix if prefix is not None else defaults.prefix_fraction
        ),
        margin_threshold=(
            margin if margin is not None else defaults.margin_threshold
        ),
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    print(f"{'name':<8} {'features':>8} {'classes':>7} {'end nodes':>9} "
          f"{'train':>8} {'test':>8}  description")
    for name in dataset_names():
        spec = DATASETS[name]
        nodes = spec.n_end_nodes if spec.is_hierarchical else "-"
        print(
            f"{name:<8} {spec.n_features:>8} {spec.n_classes:>7} "
            f"{nodes!s:>9} {spec.paper_train_size:>8} "
            f"{spec.paper_test_size:>8}  {spec.description}"
        )
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    data = load_dataset(
        args.dataset, scale=args.scale,
        max_train=args.max_train, max_test=args.max_test, seed=args.seed,
    )
    try:
        search = _search_spec_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    model = EdgeHDModel(
        data.n_features, data.n_classes,
        dimension=args.dimension, encoder=args.encoder,
        sparsity=args.sparsity, seed=args.seed, search=search,
    )
    report = model.fit(
        data.train_x, data.train_y, retrain_epochs=args.epochs
    )
    accuracy = model.accuracy(data.test_x, data.test_y)
    print(
        f"{args.dataset}: initial {report.initial_accuracy:.3f} -> "
        f"trained {report.final_accuracy:.3f} (train), "
        f"test accuracy {accuracy:.3f} "
        f"[search: {model.search.describe()}]"
    )
    if args.save:
        model.save_model(args.save)
        print(f"model saved to {args.save}")
    return 0


def _cmd_federate(args: argparse.Namespace) -> int:
    spec = DATASETS[args.dataset]
    if not spec.is_hierarchical:
        print(
            f"error: {args.dataset} has no end-node layout; choose one of "
            f"PECAN/PAMAP2/APRI/PDP", file=sys.stderr,
        )
        return 2
    data = load_dataset(
        args.dataset, scale=args.scale,
        max_train=args.max_train, max_test=args.max_test, seed=args.seed,
    )
    if args.topology == "star":
        hierarchy = build_star(spec.n_end_nodes)
    elif args.topology == "pecan":
        hierarchy = build_pecan(n_appliances=spec.n_end_nodes)
    else:
        hierarchy = build_tree(spec.n_end_nodes)
    partition = partition_features(data.n_features, spec.n_end_nodes)
    config = EdgeHDConfig(
        dimension=args.dimension, retrain_epochs=args.epochs,
        batch_size=args.batch_size, seed=args.seed,
    )
    federation = EdgeHDFederation(
        hierarchy, partition, data.n_classes, config
    )
    report = federation.fit_offline(data.train_x, data.train_y)
    print(
        f"{args.dataset} over {args.topology.upper()} "
        f"({len(hierarchy.nodes)} nodes, depth {hierarchy.depth}):"
    )
    for level, acc in federation.accuracy_by_level(
        data.test_x, data.test_y
    ).items():
        print(f"  level {level}: accuracy {acc:.3f}")
    print(
        f"  training traffic: {report.total_bytes / 1024:.1f} KiB "
        f"in {len(report.messages)} messages"
    )
    inference = HierarchicalInference(federation)
    accuracy, outcome = inference.evaluate(data.test_x, data.test_y)
    print(
        f"  escalating inference: accuracy {accuracy:.3f}, "
        f"{outcome.total_bytes / 1024:.1f} KiB escalation traffic"
    )
    # Replay both phases over the chosen medium so the run also reports
    # (and, under REPRO_OBS, records) network-level delivery counters.
    from repro.network.medium import get_medium
    from repro.network.simulator import NetworkSimulator

    simulator = NetworkSimulator(hierarchy, get_medium(args.medium))
    training = simulator.simulate_upward_pass(report.messages)
    queries = simulator.simulate_independent(outcome.messages)
    replay = training.merge(queries)
    pct = replay.latency_percentiles()
    print(
        f"  {args.medium} replay: {replay.makespan_s * 1e3:.1f} ms makespan, "
        f"{replay.energy_j * 1e3:.2f} mJ, {replay.delivered} messages delivered"
    )
    print(
        f"  per-message latency: p50 {pct['p50']:.2f} ms, "
        f"p95 {pct['p95']:.2f} ms, p99 {pct['p99']:.2f} ms"
    )
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    """Train a federation and drive it through the serving runtime."""
    spec = DATASETS[args.dataset]
    if not spec.is_hierarchical:
        print(
            f"error: {args.dataset} has no end-node layout; choose one of "
            f"PECAN/PAMAP2/APRI/PDP", file=sys.stderr,
        )
        return 2
    data = load_dataset(
        args.dataset, scale=args.scale,
        max_train=args.max_train, max_test=args.max_test, seed=args.seed,
    )
    if args.topology == "star":
        hierarchy = build_star(spec.n_end_nodes)
    elif args.topology == "pecan":
        hierarchy = build_pecan(n_appliances=spec.n_end_nodes)
    else:
        hierarchy = build_tree(spec.n_end_nodes)
    partition = partition_features(data.n_features, spec.n_end_nodes)
    config = EdgeHDConfig(
        dimension=args.dimension, retrain_epochs=args.epochs,
        batch_size=args.batch_size, seed=args.seed,
    )
    federation = EdgeHDFederation(hierarchy, partition, data.n_classes, config)
    federation.fit_offline(data.train_x, data.train_y)

    from repro.network.medium import get_medium
    from repro.serve import ServeConfig, ServingRuntime, make_workload

    try:
        search = _search_spec_from_args(args)
        inference = HierarchicalInference(
            federation,
            confidence_threshold=args.threshold,
            backend=args.backend,
            search=search,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    workload = make_workload(
        data.test_x, inference, seed=args.seed, labels=data.test_y
    )
    serve_config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        policy=args.policy,
    )
    fault_plan = None
    if args.faults:
        from repro.serve import FaultPlan

        crashes = {
            int(nid): (0.0, float("inf")) for nid in (args.fault_crash or [])
        }
        fault_plan = FaultPlan(
            seed=args.seed if args.fault_seed is None else args.fault_seed,
            drop_probability=args.fault_drop,
            dimension_loss=args.fault_dim_loss,
            latency_jitter_s=args.fault_jitter_ms * 1e-3,
            crash_windows=crashes,
        )
    print(
        f"{args.dataset} over {args.topology.upper()} "
        f"({len(hierarchy.nodes)} nodes), "
        f"search {inference.search.describe()}, "
        f"threshold {args.threshold}, medium {args.medium}"
    )
    if fault_plan is not None:
        crashed = sorted(fault_plan.crash_windows) or "none"
        what = "replicas" if args.workers > 1 else "nodes"
        print(
            f"faults: drop {fault_plan.drop_probability:.2f}, "
            f"dim loss {fault_plan.dimension_loss:.2f}, "
            f"jitter <= {fault_plan.latency_jitter_s * 1e3:.1f} ms, "
            f"crashed {what} {crashed}"
        )
    if args.workers > 1:
        from repro.serve import ClusterConfig, ClusterRuntime

        if args.closed_loop:
            print(
                "error: cluster serving is open-loop only",
                file=sys.stderr,
            )
            return 2
        try:
            cluster = ClusterConfig(
                workers=args.workers,
                replicas_per_shard=args.replicas_per_shard,
            )
            runtime = ClusterRuntime(
                inference, get_medium(args.medium), serve_config,
                cluster=cluster, fault_plan=fault_plan,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(
            f"cluster: {cluster.workers} workers over {cluster.n_shards} "
            f"shards, open loop at {args.rate:.0f} req/s"
        )
        with runtime:
            result = runtime.serve_open_loop(
                workload, rate_rps=args.rate, seed=args.seed
            )
    else:
        runtime = ServingRuntime(
            inference, get_medium(args.medium), serve_config,
            fault_plan=fault_plan,
        )
        if args.closed_loop:
            print(f"closed loop: {args.clients} clients")
            result = runtime.serve_closed_loop(
                workload, n_clients=args.clients
            )
        else:
            print(f"open loop: Poisson arrivals at {args.rate:.0f} req/s")
            result = runtime.serve_open_loop(
                workload, rate_rps=args.rate, seed=args.seed
            )
    print(result.summary())
    if result.n_answered:
        served_labels = [r.label for r in result.answered]
        truth = data.test_y[[r.index for r in result.answered]]
        import numpy as np

        accuracy = float(np.mean(np.asarray(served_labels) == truth))
        print(f"accuracy (answered): {accuracy:.3f}")
    if obs.enabled():
        if isinstance(runtime, ServingRuntime):
            print(runtime.flight.summary())
        if args.trace and result.traces is not None:
            written = result.traces.export_jsonl(args.trace)
            print(
                f"[obs] {written} trace events "
                f"({result.traces.n_requests} requests, "
                f"{result.traces.dropped} dropped) written to {args.trace} "
                f"(view: repro serve-report {args.trace})"
            )
        if args.telemetry and result.telemetry is not None:
            written = result.telemetry.export_jsonl(args.telemetry)
            print(f"[obs] {written} telemetry samples written to "
                  f"{args.telemetry}")
        if args.flight:
            written = runtime.flight.export_jsonl(args.flight)
            print(f"[obs] {written} flight events written to {args.flight}")
        if args.openmetrics:
            out = Path(args.openmetrics)
            out.parent.mkdir(parents=True, exist_ok=True)
            out.write_text(obs.render_openmetrics())
            print(f"[obs] OpenMetrics exposition written to {out}")
    return 0


def _cmd_serve_report(args: argparse.Namespace) -> int:
    """Render the per-stage / critical-path report from a trace file."""
    from repro.serve.report import serve_report

    source = Path(args.trace_file)
    if not source.exists():
        print(f"error: trace file {source} not found", file=sys.stderr)
        return 2
    print(
        serve_report(
            source, slo_ms=args.slo_ms, request_id=args.request
        )
    )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from repro.experiments import (
        STANDARD,
        ExperimentScale,
        format_figure7,
        format_figure8,
        format_figure9,
        format_figure10,
        format_figure11,
        format_figure12,
        format_figure13,
        format_table2,
        run_figure7,
        run_figure8,
        run_figure9,
        run_figure10,
        run_figure11,
        run_figure12,
        run_figure13,
        run_table2,
    )

    quick = ExperimentScale(
        name="quick", data_scale=0.05, max_train=700, max_test=250,
        dimension=1024, retrain_epochs=5, batch_size=10,
    )
    scale = quick if args.quick else STANDARD
    try:
        search = _search_spec_from_args(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry: Dict[str, Callable[[], str]] = {
        "fig7": lambda: format_figure7(run_figure7(scale=scale)),
        "table2": lambda: format_table2(run_table2(scale=scale)),
        "fig8": lambda: format_figure8(run_figure8(scale=scale)),
        "fig9": lambda: format_figure9(run_figure9(scale=scale, n_steps=5)),
        "fig10": lambda: format_figure10(run_figure10()),
        "fig11": lambda: format_figure11(run_figure11()),
        "fig12": lambda: format_figure12(run_figure12(scale=scale)),
        "fig13": lambda: format_figure13(run_figure13(scale=scale)),
    }
    targets = registry if args.figure == "all" else {args.figure: registry[args.figure]}
    # Experiment runners build their own models; the process-default
    # spec is the hook that applies --search-* to all of them.
    previous = set_default_search(search) if search is not None else None
    try:
        if search is not None:
            print(f"search: {search.describe()}")
        for name, runner in targets.items():
            print(f"\n=== {name} ===")
            print(runner())
    finally:
        if previous is not None:
            set_default_search(previous)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.experiments.report import collect_reports, render_markdown

    sections = collect_reports(Path(args.results_dir))
    markdown = render_markdown(
        sections,
        heading="EdgeHD measured results",
        preamble=(
            "Generated from `pytest benchmarks/` reports in "
            f"`{args.results_dir}`."
        ),
    )
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(markdown)
        print(f"wrote {args.output} ({len(sections)} sections)")
    else:
        print(markdown)
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.hierarchy import (
        CheckpointError,
        OnlineLearner,
        TopologyController,
    )

    spec = DATASETS[args.dataset]
    if not spec.is_hierarchical:
        print(
            f"error: {args.dataset} has no end-node layout; choose one of "
            f"PECAN/PAMAP2/APRI/PDP", file=sys.stderr,
        )
        return 2
    data = load_dataset(
        args.dataset, scale=args.scale,
        max_train=args.max_train, max_test=args.max_test, seed=args.seed,
    )

    def describe(controller: TopologyController) -> None:
        hierarchy = controller.federation.hierarchy
        print(
            f"  topology: {len(hierarchy.nodes)} nodes "
            f"({len(hierarchy.leaves())} end nodes), depth {hierarchy.depth}"
        )
        states = sorted(
            (nid, state.value) for nid, state in controller.states.items()
        )
        print("  states: " + ", ".join(f"{n}:{s}" for n, s in states))
        print(f"  fingerprint: {controller.fingerprint()}")

    if args.action == "checkpoint":
        if args.topology == "star":
            hierarchy = build_star(spec.n_end_nodes)
        elif args.topology == "pecan":
            hierarchy = build_pecan(n_appliances=spec.n_end_nodes)
        else:
            hierarchy = build_tree(spec.n_end_nodes)
        partition = partition_features(data.n_features, spec.n_end_nodes)
        config = EdgeHDConfig(
            dimension=args.dimension, retrain_epochs=args.epochs,
            batch_size=args.batch_size, seed=args.seed,
        )
        hierarchy.allocate_dimensions(
            config.dimension, partition.feature_counts()
        )
        federation = EdgeHDFederation(
            hierarchy, partition, data.n_classes, config
        )
        controller = TopologyController(
            federation, data.train_x, data.train_y,
            learner=OnlineLearner(federation),
        )
        controller.fit()
        controller.checkpoint(args.path)
        print(f"{args.dataset}: topology checkpoint written to {args.path}")
        describe(controller)
        return 0

    try:
        controller = TopologyController.restore(
            args.path, data.train_x, data.train_y
        )
    except (CheckpointError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.action == "restore":
        print(f"{args.path}: topology state restored")
        describe(controller)
        return 0

    try:
        if args.action == "join":
            parent = (
                args.parent
                if args.parent is not None
                else controller.federation.hierarchy.root_id
            )
            join = controller.join(parent, epochs=args.epochs)
            print(
                f"joined end node {join.node_id} under {parent}: "
                f"{len(join.columns)} features from donors "
                f"{list(join.donors)}, {len(join.refit_nodes)} nodes refit"
            )
        else:  # drain
            if args.leaf is None:
                print("error: drain requires --leaf", file=sys.stderr)
                return 2
            drain = controller.drain(args.leaf, epochs=args.epochs)
            print(
                f"drained end node {args.leaf}: removed "
                f"{list(drain.removed_nodes)}, columns redistributed to "
                f"{list(drain.recipients)}, "
                f"{len(drain.refit_nodes)} nodes refit"
            )
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = args.out or args.path
    controller.checkpoint(out)
    print(f"updated topology checkpoint written to {out}")
    describe(controller)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    fmt = "json" if args.json else args.format
    if args.merge:
        registry = None
        for raw in args.merge:
            path = Path(raw)
            if not path.exists():
                print(f"error: stats file {path} not found", file=sys.stderr)
                return 2
            loaded = obs.load_stats(path)
            if registry is None:
                registry = loaded
            else:
                try:
                    registry.merge(loaded)
                except (TypeError, ValueError) as exc:
                    print(f"error merging {path}: {exc}", file=sys.stderr)
                    return 2
        assert registry is not None
        origin = f"merged from {len(args.merge)} dumps"
    else:
        source = Path(args.input) if args.input else obs.default_stats_path()
        if source.exists():
            registry = obs.load_stats(source)
            origin = f"loaded from {source}"
        elif args.input:
            print(f"error: stats file {source} not found", file=sys.stderr)
            return 2
        else:
            # No dump on disk: fall back to this process's (likely
            # empty) registry so `repro stats` is still usable
            # programmatically.
            registry = obs.get_registry()
            origin = "in-process registry (no stats file found; run an " \
                     "instrumented command with REPRO_OBS=1 first)"
    if fmt == "openmetrics":
        rendered = obs.render_openmetrics(registry)
    else:
        rendered = obs.render_stats(registry, as_json=(fmt == "json"))
    if args.output:
        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(rendered + ("" if rendered.endswith("\n") else "\n"))
        print(f"wrote {out}")
        return 0
    print(rendered)
    if fmt == "table":
        print(f"\n[{origin}]")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST invariant checker; exit 1 on any finding."""
    from repro.analysis import (
        RULE_INDEX,
        LintEngine,
        default_rules,
        flow_rules,
        render_json,
        render_text,
        select_rules,
    )

    if args.list_rules:
        print(f"{'id':<10} {'severity':<8} description")
        for rule in default_rules() + flow_rules():
            print(f"{rule.rule_id:<10} {rule.severity:<8} {rule.description}")
        return 0
    if args.fixtures:
        from repro.analysis.fixtures import run_fixtures

        failed = 0
        for case, findings, ok in run_fixtures():
            got = tuple(sorted(f.line for f in findings))
            status = "ok" if ok else "FAIL"
            print(
                f"{status:<5} {case.rule_id} {case.name}: expected lines "
                f"{list(case.expect)}, got {list(got)}"
            )
            failed += 0 if ok else 1
        print(
            f"repro lint --fixtures: "
            f"{'all pinned behaviours hold' if not failed else f'{failed} fixture(s) drifted'}"
        )
        return 1 if failed else 0
    split = lambda raw: [t.strip() for t in raw.split(",") if t.strip()]
    try:
        rules = select_rules(
            select=split(args.select) if args.select else None,
            ignore=split(args.ignore) if args.ignore else None,
            flow=args.flow,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not rules:
        print(
            f"error: no rules left after filtering; known ids: "
            f"{', '.join(sorted(RULE_INDEX))}",
            file=sys.stderr,
        )
        return 2
    try:
        findings = LintEngine(rules).lint_paths(args.paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    else:
        print(render_text(findings))
    return 1 if findings else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="EdgeHD reproduction CLI"
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log repro.* diagnostics to stderr (-v INFO, -vv DEBUG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list the Table-I dataset registry")

    def add_data_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="PDP", choices=dataset_names())
        p.add_argument("--scale", type=float, default=0.1)
        p.add_argument("--max-train", type=int, default=2000)
        p.add_argument("--max-test", type=int, default=600)
        p.add_argument("--dimension", type=int, default=4000)
        p.add_argument("--epochs", type=int, default=10)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--trace", default=None, metavar="PATH",
            help="enable observability and write the span trace (JSONL)",
        )

    train = sub.add_parser("train", help="train a centralized EdgeHD model")
    add_data_args(train)
    _add_search_args(train)
    train.add_argument(
        "--encoder", default="rbf",
        choices=("rbf", "cos-sin", "linear", "id-level"),
    )
    train.add_argument("--sparsity", type=float, default=0.8)
    train.add_argument("--save", default=None, help="checkpoint path (.npz)")

    federate = sub.add_parser("federate", help="federated hierarchical training")
    add_data_args(federate)
    federate.add_argument(
        "--topology", default="tree", choices=("star", "tree", "pecan")
    )
    federate.add_argument("--batch-size", type=int, default=10)
    federate.add_argument(
        "--medium", default="wifi-802.11ac",
        choices=("wired-1gbps", "wired-500mbps", "wifi-802.11ac",
                 "wifi-802.11n", "bluetooth-4.0"),
        help="medium for the network replay summary",
    )

    serve_bench = sub.add_parser(
        "serve-bench",
        help="serve escalating inference live (micro-batching, backpressure)",
    )
    add_data_args(serve_bench)
    serve_bench.add_argument(
        "--topology", default="tree", choices=("star", "tree", "pecan")
    )
    serve_bench.add_argument("--batch-size", type=int, default=10)
    serve_bench.add_argument(
        "--medium", default="wifi-802.11ac",
        choices=("wired-1gbps", "wired-500mbps", "wifi-802.11ac",
                 "wifi-802.11n", "bluetooth-4.0"),
    )
    serve_bench.add_argument(
        "--backend", default=None, choices=BACKENDS,
        help="deprecated alias for --search-backend",
    )
    _add_search_args(serve_bench)
    serve_bench.add_argument(
        "--threshold", type=float, default=0.8,
        help="escalation confidence threshold",
    )
    serve_bench.add_argument("--max-batch", type=int, default=32)
    serve_bench.add_argument("--max-wait-ms", type=float, default=2.0)
    serve_bench.add_argument("--queue-depth", type=int, default=64)
    serve_bench.add_argument(
        "--policy", default="block", choices=("block", "shed")
    )
    serve_bench.add_argument(
        "--rate", type=float, default=500.0,
        help="open-loop Poisson arrival rate (req/s)",
    )
    serve_bench.add_argument(
        "--closed-loop", action="store_true",
        help="closed loop instead of open-loop arrivals",
    )
    serve_bench.add_argument(
        "--clients", type=int, default=4,
        help="in-flight requests in closed-loop mode",
    )
    serve_bench.add_argument(
        "--workers", type=int, default=1,
        help="worker processes; > 1 serves through the multi-process "
             "cluster with shared-memory model replicas",
    )
    serve_bench.add_argument(
        "--replicas-per-shard", type=int, default=1,
        help="replicas per request shard (cluster mode)",
    )
    serve_bench.add_argument(
        "--faults", action="store_true",
        help="serve through deterministic chaos (FaultPlan)",
    )
    serve_bench.add_argument(
        "--fault-drop", type=float, default=0.1,
        help="per-attempt escalation drop probability",
    )
    serve_bench.add_argument(
        "--fault-dim-loss", type=float, default=0.0,
        help="fraction of hypervector dimensions lost per hop",
    )
    serve_bench.add_argument(
        "--fault-jitter-ms", type=float, default=0.0,
        help="max uniform extra uplink delay (ms)",
    )
    serve_bench.add_argument(
        "--fault-crash", type=int, action="append", metavar="NODE",
        help="crash this node for the whole run (repeatable; never root). "
             "With --workers > 1 the id names a worker replica instead",
    )
    serve_bench.add_argument(
        "--fault-seed", type=int, default=None,
        help="fault stream seed (defaults to --seed)",
    )
    serve_bench.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write the sampled time-series as JSONL (implies --trace obs)",
    )
    serve_bench.add_argument(
        "--flight", default=None, metavar="PATH",
        help="dump the flight recorder (fault events) as JSONL",
    )
    serve_bench.add_argument(
        "--openmetrics", default=None, metavar="PATH",
        help="write an OpenMetrics text exposition of the run's metrics",
    )

    serve_report = sub.add_parser(
        "serve-report",
        help="per-stage latency, critical-path and SLO report from a "
             "serve-bench --trace file",
    )
    serve_report.add_argument(
        "trace_file", metavar="TRACE",
        help="request-trace JSONL written by serve-bench --trace",
    )
    serve_report.add_argument(
        "--slo-ms", type=float, default=None,
        help="latency target for the SLO attainment section",
    )
    serve_report.add_argument(
        "--request", type=int, default=None, metavar="ID",
        help="render this request's timeline (default: a degraded or "
             "the slowest request)",
    )

    report = sub.add_parser(
        "report", help="aggregate saved benchmark reports into markdown"
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--output", default=None)

    reproduce = sub.add_parser("reproduce", help="regenerate paper results")
    reproduce.add_argument(
        "--figure", default="all",
        choices=("all", "fig7", "table2", "fig8", "fig9", "fig10",
                 "fig11", "fig12", "fig13"),
    )
    reproduce.add_argument("--quick", action="store_true")
    _add_search_args(reproduce)
    reproduce.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable observability and write the span trace (JSONL)",
    )

    topology = sub.add_parser(
        "topology",
        help="elastic topology control plane: join/drain/checkpoint/restore",
    )
    topology.add_argument(
        "action", choices=("join", "drain", "checkpoint", "restore"),
        help="checkpoint: train + save full topology state; restore: "
             "load + describe; join/drain: mutate a saved topology and "
             "re-checkpoint",
    )
    topology.add_argument(
        "path", help="topology checkpoint file (.npz, format v2)"
    )
    add_data_args(topology)
    topology.add_argument(
        "--topology", default="tree", choices=("star", "tree", "pecan"),
        dest="topology", help="layout used by the checkpoint action",
    )
    topology.add_argument("--batch-size", type=int, default=10)
    topology.add_argument(
        "--parent", type=int, default=None,
        help="join: gateway to graft under (default: the central node)",
    )
    topology.add_argument(
        "--leaf", type=int, default=None, help="drain: end node to remove"
    )
    topology.add_argument(
        "--out", default=None,
        help="join/drain: write the updated checkpoint here "
             "(default: overwrite PATH)",
    )

    stats = sub.add_parser(
        "stats", help="show metrics recorded by an instrumented run"
    )
    stats.add_argument(
        "--input", default=None, metavar="PATH",
        help="stats dump to render (default: repro-obs-stats.json or "
             "$REPRO_OBS_STATS)",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="raw JSON output (alias for --format json)",
    )
    stats.add_argument(
        "--format", default="table",
        choices=("table", "json", "openmetrics"),
        help="output format (openmetrics = Prometheus text exposition)",
    )
    stats.add_argument(
        "--merge", nargs="+", default=None, metavar="PATH",
        help="merge these stats dumps before rendering (counters add, "
             "gauges last-writer, histogram buckets sum)",
    )
    stats.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the rendered output to a file instead of stdout",
    )

    lint = sub.add_parser(
        "lint",
        help="repo-specific AST invariant checker (repro.analysis)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"], metavar="PATH",
        help="files or directories to lint (default: src)",
    )
    lint.add_argument("--format", default="text", choices=("text", "json"))
    lint.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    lint.add_argument(
        "--ignore", default=None, metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    lint.add_argument(
        "--flow", action="store_true",
        help="also run the dataflow analyses (REPRO111-113: await-"
             "boundary races, shared-memory writes, RNG tag collisions)",
    )
    lint.add_argument(
        "--fixtures", action="store_true",
        help="self-test: lint the pinned defect fixtures and verify "
             "each rule still flags (exit 1 on drift)",
    )
    return parser


_HANDLERS = {
    "datasets": _cmd_datasets,
    "report": _cmd_report,
    "train": _cmd_train,
    "federate": _cmd_federate,
    "serve-bench": _cmd_serve_bench,
    "serve-report": _cmd_serve_report,
    "reproduce": _cmd_reproduce,
    "stats": _cmd_stats,
    "lint": _cmd_lint,
    "topology": _cmd_topology,
}

#: commands that record metrics and persist them on exit.
_INSTRUMENTED = {"train", "federate", "serve-bench", "reproduce"}

#: commands whose handler writes its own --trace file (request-level
#: trace events); main() must not overwrite it with the span buffer.
_OWN_TRACE_EXPORT = {"serve-bench"}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    trace_path = getattr(args, "trace", None)
    wants_obs = trace_path or any(
        getattr(args, flag, None)
        for flag in ("telemetry", "flight", "openmetrics")
    )
    if wants_obs:
        obs.enable()
    code = _HANDLERS[args.command](args)
    if args.command in _INSTRUMENTED and obs.enabled():
        stats_path = obs.dump_stats()
        print(f"[obs] metrics written to {stats_path} (view: repro stats)")
        if trace_path and args.command not in _OWN_TRACE_EXPORT:
            written = obs.export_trace(trace_path)
            print(f"[obs] {written} spans written to {trace_path}")
    return code


if __name__ == "__main__":
    raise SystemExit(main())
