"""Centralized learning baseline (Fig. 1b).

Every end node ships its *raw sensor data* through the hierarchy to the
central node, which encodes, trains and serves the single global model.
This is the configuration EdgeHD is measured against in Figs. 10/11/13:
the classifier itself can be HD (HD-GPU / HD-FPGA) or a DNN (DNN-GPU);
the communication pattern is what distinguishes it from EdgeHD.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.config import DEFAULT_CONFIG, EdgeHDConfig
from repro.core.classifier import PredictionResult
from repro.core.model import EdgeHDModel, raw_data_bytes
from repro.data.partition import FeaturePartition
from repro.hierarchy.topology import Hierarchy
from repro.network.message import Message, MessageKind
from repro.utils.validation import check_labels, check_matrix

__all__ = ["CentralizedHD", "centralized_upload_messages"]


def centralized_upload_messages(
    hierarchy: Hierarchy,
    partition: FeaturePartition,
    n_samples: int,
    kind: MessageKind = MessageKind.RAW_DATA,
) -> List[Message]:
    """Messages for shipping all raw data to the central node.

    Each end node sends ``n_samples x n_i`` floats; every intermediate
    hop forwards the aggregate of its subtree (store-and-forward
    through gateways, as in the TREE topology discussion of Fig. 10).
    """
    if n_samples < 0:
        raise ValueError("n_samples must be >= 0")
    messages: List[Message] = []
    subtree_bytes: dict[int, int] = {}
    for node_id in hierarchy.postorder():
        node = hierarchy.nodes[node_id]
        if node.is_leaf:
            n_local = len(partition.columns(node.leaf_index))
            subtree_bytes[node_id] = raw_data_bytes(n_samples, n_local)
        else:
            subtree_bytes[node_id] = sum(
                subtree_bytes[c] for c in node.children
            )
        if node.parent is not None:
            messages.append(
                Message(
                    source=node_id,
                    destination=node.parent,
                    kind=kind,
                    payload_bytes=subtree_bytes[node_id],
                )
            )
    return messages


@dataclass
class CentralizedTrainingReport:
    """Training outcome + the upload traffic it required."""

    train_accuracy: float
    messages: List[Message] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(m.payload_bytes for m in self.messages)


class CentralizedHD:
    """HD learning with all data collected at the central node."""

    def __init__(
        self,
        hierarchy: Hierarchy,
        partition: FeaturePartition,
        n_classes: int,
        config: EdgeHDConfig = DEFAULT_CONFIG,
    ) -> None:
        self.hierarchy = hierarchy
        self.partition = partition
        self.config = config
        self.model = EdgeHDModel(
            n_features=partition.n_features,
            n_classes=n_classes,
            dimension=config.dimension,
            encoder=config.encoder,
            sparsity=config.sparsity,
            binarize=config.binarize,
            seed=config.seed,
        )

    def fit(self, train_x: np.ndarray, train_y: np.ndarray) -> CentralizedTrainingReport:
        """Upload everything, then train the global model centrally."""
        mat = check_matrix("train_x", train_x, cols=self.partition.n_features)
        y = check_labels("train_y", train_y, n_classes=self.model.n_classes)
        messages = centralized_upload_messages(
            self.hierarchy, self.partition, mat.shape[0]
        )
        report = self.model.fit(
            mat, y, retrain_epochs=self.config.retrain_epochs,
            learning_rate=self.config.retrain_learning_rate,
        )
        return CentralizedTrainingReport(
            train_accuracy=report.final_accuracy, messages=messages
        )

    def inference_messages(self, n_queries: int) -> List[Message]:
        """Per-query upload traffic for centralized inference."""
        return centralized_upload_messages(
            self.hierarchy, self.partition, n_queries, kind=MessageKind.QUERY
        )

    # ------------------------------------------------------------------
    # Predictor protocol: delegate to the central global model.
    # ------------------------------------------------------------------
    def predict(self, features: np.ndarray) -> PredictionResult:
        return self.model.predict(features)

    def predict_labels(self, features: np.ndarray) -> np.ndarray:
        return self.model.predict_labels(features)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self.model.predict_proba(features)

    def accuracy(self, test_x: np.ndarray, test_y: np.ndarray) -> float:
        return self.model.accuracy(test_x, test_y)
