"""Comparison baselines: MLP (DNN), kernel SVM, AdaBoost, linear HD,
and the centralized-learning configuration."""

from repro.baselines.adaboost import AdaBoostClassifier, DecisionStump
from repro.baselines.centralized import (
    CentralizedHD,
    CentralizedTrainingReport,
    centralized_upload_messages,
)
from repro.baselines.federated_dnn import VerticalFedMLP, VerticalFedTrainingReport
from repro.baselines.linear_hd import LinearHDClassifier
from repro.baselines.mlp import MLPClassifier
from repro.baselines.svm import KernelSVM

__all__ = [
    "AdaBoostClassifier",
    "DecisionStump",
    "CentralizedHD",
    "CentralizedTrainingReport",
    "centralized_upload_messages",
    "VerticalFedMLP",
    "VerticalFedTrainingReport",
    "LinearHDClassifier",
    "MLPClassifier",
    "KernelSVM",
]
