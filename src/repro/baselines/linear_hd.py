"""Baseline HD classifier with linear encoding ([36] in the paper).

The state-of-the-art HD baseline the paper compares against maps each
input feature *linearly* into the hyperspace before the usual class-
hypervector training. Fig. 7 shows EdgeHD's non-linear encoding buys
~4.7% accuracy on average over this baseline — the comparison our
accuracy bench reproduces.
"""

from __future__ import annotations

from typing import Optional

from repro.core.model import EdgeHDModel
from repro.core.search import SearchSpec
from repro.utils.rng import SeedLike

__all__ = ["LinearHDClassifier"]


class LinearHDClassifier(EdgeHDModel):
    """EdgeHD pipeline with the linear random-projection encoder.

    Inherits the full :class:`~repro.core.predictor.Predictor` surface
    (``predict`` / ``predict_labels`` / ``predict_proba``) and the
    :class:`~repro.core.search.SearchSpec` switch from
    :class:`EdgeHDModel`.
    """

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        dimension: int = 4000,
        seed: SeedLike = None,
        backend: Optional[str] = None,
        search: Optional[SearchSpec] = None,
    ) -> None:
        super().__init__(
            n_features=n_features,
            n_classes=n_classes,
            dimension=dimension,
            encoder="linear",
            seed=seed,
            backend=backend,
            search=search,
        )
