"""RBF-kernel SVM via random Fourier features + Pegasos.

Stands in for the paper's scikit-learn SVM baseline. Training an exact
kernel SVM is quadratic in the sample count; the standard large-scale
approach — and the one most closely related to EdgeHD's own encoder —
is to lift the data with random Fourier features (Rahimi & Recht) and
train a linear max-margin classifier in the lifted space with the
Pegasos stochastic sub-gradient solver (hinge loss, one-vs-rest).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.classifier import PredictionResult
from repro.core.predictor import result_from_scores
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_fitted, check_labels, check_matrix

__all__ = ["KernelSVM"]


class KernelSVM:
    """One-vs-rest hinge-loss classifier over an RFF lift."""

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        n_components: int = 1024,
        gamma: Optional[float] = None,
        reg_lambda: float = 1e-4,
        epochs: int = 10,
        batch_size: int = 32,
        seed: SeedLike = None,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if n_components <= 0 or reg_lambda <= 0 or epochs < 0 or batch_size <= 0:
            raise ValueError("invalid hyper-parameters")
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.n_components = int(n_components)
        self.gamma = float(gamma) if gamma is not None else 1.0 / np.sqrt(n_features)
        if self.gamma <= 0:
            raise ValueError("gamma must be positive")
        self.reg_lambda = float(reg_lambda)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        rng = derive_rng(seed, "svm-rff")
        self._omega = rng.standard_normal((n_features, self.n_components)) * self.gamma
        self._phase = rng.uniform(0, 2 * np.pi, size=self.n_components)
        self._rng = rng
        self.weights: Optional[np.ndarray] = None  # (n_classes, n_components)

    # ------------------------------------------------------------------
    def _lift(self, features: np.ndarray) -> np.ndarray:
        """Random Fourier feature map (same family as Eq. 2)."""
        x = check_matrix("features", features, cols=self.n_features)
        return np.sqrt(2.0 / self.n_components) * np.cos(x @ self._omega + self._phase)

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "KernelSVM":
        """Pegasos: eta_t = 1/(lambda*t), hinge sub-gradient steps."""
        y = check_labels("labels", labels, n_classes=self.n_classes)
        lifted = self._lift(features)
        if lifted.shape[0] != y.shape[0]:
            raise ValueError("sample/label count mismatch")
        if lifted.shape[0] == 0:
            raise ValueError("empty training set")
        # One-vs-rest targets in {-1, +1}.
        targets = -np.ones((lifted.shape[0], self.n_classes))
        targets[np.arange(y.shape[0]), y] = 1.0
        w = np.zeros((self.n_classes, self.n_components))
        t = 0
        n = lifted.shape[0]
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                t += 1
                eta = 1.0 / (self.reg_lambda * t)
                xb = lifted[idx]  # (b, d)
                yb = targets[idx]  # (b, k)
                margins = yb * (xb @ w.T)  # (b, k)
                active = margins < 1.0
                w *= 1.0 - eta * self.reg_lambda
                if np.any(active):
                    # Sub-gradient: average over violating samples.
                    contrib = (yb * active).T @ xb / xb.shape[0]
                    w += eta * contrib
                # Pegasos projection onto the 1/sqrt(lambda) ball.
                norms = np.linalg.norm(w, axis=1, keepdims=True)
                cap = 1.0 / np.sqrt(self.reg_lambda)
                scale = np.minimum(1.0, cap / np.maximum(norms, 1e-12))
                w *= scale
        self.weights = w
        return self

    # ------------------------------------------------------------------
    def decision_function(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, "weights")
        return self._lift(features) @ self.weights.T

    def predict(self, features: np.ndarray) -> PredictionResult:
        """Full inference output (:class:`~repro.core.predictor.Predictor`).

        Previously returned a bare label array; that shape survives via
        the deprecation shims on
        :class:`~repro.core.classifier.PredictionResult`.
        """
        return result_from_scores(self.decision_function(features))

    def predict_labels(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(features), axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self.predict(features).confidences

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        y = check_labels("labels", labels, n_classes=self.n_classes)
        pred = self.predict_labels(features)
        if pred.shape[0] != y.shape[0]:
            raise ValueError("sample/label count mismatch")
        return float(np.mean(pred == y))
