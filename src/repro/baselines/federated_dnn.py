"""Vertical-federated DNN: the non-trivial way to federate a neural net.

The paper argues (challenge iii / Sec. VI-D) that DNNs have "no trivial
efficient way" to run in the hierarchy because neurons communicate
across devices during both backpropagation and feed-forward. This
module implements that non-trivial way — split (vertical federated)
learning over heterogeneous features — so the claim can be *measured*
instead of asserted:

* each end node owns a local encoder MLP over its feature slice;
* the aggregator concatenates the devices' embeddings and runs the
  classifier head;
* every training step ships all devices' embeddings up and embedding
  gradients back down; every inference ships embeddings up.

The learning quality is comparable to a centralized MLP; the traffic is
the point: per *epoch* it moves ``2 * samples * embedding_dim`` floats
per device, while EdgeHD moves a handful of class/batch hypervectors
*once*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.core.classifier import PredictionResult
from repro.core.predictor import result_from_proba
from repro.data.partition import FeaturePartition
from repro.hierarchy.topology import Hierarchy
from repro.network.message import Message, MessageKind
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_fitted, check_labels, check_matrix

__all__ = ["VerticalFedMLP", "VerticalFedTrainingReport"]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


@dataclass
class VerticalFedTrainingReport:
    """Accuracy trajectory plus the transfer list training generated."""

    loss_history: List[float] = field(default_factory=list)
    messages: List[Message] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return sum(m.payload_bytes for m in self.messages)


class VerticalFedMLP:
    """Split learning across end nodes with heterogeneous features.

    Parameters
    ----------
    partition:
        Feature ownership per end node.
    n_classes:
        Output classes.
    embedding_dim:
        Width of each device's embedding (what crosses the network).
    hidden_dim:
        Width of the aggregator's hidden layer.
    """

    def __init__(
        self,
        partition: FeaturePartition,
        n_classes: int,
        embedding_dim: int = 32,
        hidden_dim: int = 64,
        learning_rate: float = 1e-3,
        batch_size: int = 64,
        epochs: int = 20,
        seed: SeedLike = None,
    ) -> None:
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if embedding_dim <= 0 or hidden_dim <= 0:
            raise ValueError("layer widths must be positive")
        if learning_rate <= 0 or batch_size <= 0 or epochs < 0:
            raise ValueError("invalid optimizer hyper-parameters")
        self.partition = partition
        self.n_classes = int(n_classes)
        self.embedding_dim = int(embedding_dim)
        self.hidden_dim = int(hidden_dim)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        rng = derive_rng(seed, "vertical-fed")
        self._rng = rng
        # Per-device encoders: one hidden layer each.
        self.encoders: List[dict] = []
        for counts in partition.feature_counts():
            scale = np.sqrt(2.0 / counts)
            self.encoders.append(
                {
                    "w": rng.standard_normal((counts, embedding_dim)) * scale,
                    "b": np.zeros(embedding_dim),
                }
            )
        concat = embedding_dim * partition.n_nodes
        self.head = {
            "w1": rng.standard_normal((concat, hidden_dim)) * np.sqrt(2.0 / concat),
            "b1": np.zeros(hidden_dim),
            "w2": rng.standard_normal((hidden_dim, n_classes)) * np.sqrt(2.0 / hidden_dim),
            "b2": np.zeros(n_classes),
        }
        self._fitted = False

    # ------------------------------------------------------------------
    def _device_embeddings(self, features: np.ndarray) -> List[np.ndarray]:
        out = []
        for i, enc in enumerate(self.encoders):
            local = self.partition.restrict(features, i)
            out.append(_relu(local @ enc["w"] + enc["b"]))
        return out

    def _head_forward(self, concat: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        h = _relu(concat @ self.head["w1"] + self.head["b1"])
        logits = h @ self.head["w2"] + self.head["b2"]
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        return h, probs

    # ------------------------------------------------------------------
    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        hierarchy: Optional[Hierarchy] = None,
    ) -> VerticalFedTrainingReport:
        """Train with split backprop; record per-step transfers.

        When ``hierarchy`` is given, the per-epoch embedding/gradient
        traffic is recorded as messages between each end node and its
        parent (upward) and back (downward), so the network simulator
        can replay the cost.
        """
        x = check_matrix("features", features, cols=self.partition.n_features)
        y = check_labels("labels", labels, n_classes=self.n_classes)
        if x.shape[0] != y.shape[0]:
            raise ValueError("sample/label count mismatch")
        if x.shape[0] == 0:
            raise ValueError("empty training set")
        report = VerticalFedTrainingReport()
        n = x.shape[0]
        lr = self.learning_rate
        for _epoch in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = x[idx], y[idx]
                batch = xb.shape[0]
                embeddings = self._device_embeddings(xb)
                concat = np.concatenate(embeddings, axis=1)
                h, probs = self._head_forward(concat)
                loss = -np.mean(np.log(probs[np.arange(batch), yb] + 1e-12))
                epoch_loss += loss * batch
                # --- backward ------------------------------------------
                grad_logits = probs
                grad_logits[np.arange(batch), yb] -= 1.0
                grad_logits /= batch
                grad_w2 = h.T @ grad_logits
                grad_b2 = grad_logits.sum(axis=0)
                grad_h = (grad_logits @ self.head["w2"].T) * (h > 0)
                grad_w1 = concat.T @ grad_h
                grad_b1 = grad_h.sum(axis=0)
                grad_concat = grad_h @ self.head["w1"].T
                self.head["w2"] -= lr * grad_w2
                self.head["b2"] -= lr * grad_b2
                self.head["w1"] -= lr * grad_w1
                self.head["b1"] -= lr * grad_b1
                # Split the embedding gradient back to devices.
                offset = 0
                for i, enc in enumerate(self.encoders):
                    local = self.partition.restrict(xb, i)
                    g = grad_concat[:, offset : offset + self.embedding_dim]
                    g = g * (embeddings[i] > 0)
                    enc["w"] -= lr * local.T @ g
                    enc["b"] -= lr * g.sum(axis=0)
                    offset += self.embedding_dim
            report.loss_history.append(epoch_loss / n)
        if hierarchy is not None:
            report.messages = self.training_messages(hierarchy, n)
        self._fitted = True
        return report

    # ------------------------------------------------------------------
    def training_messages(self, hierarchy: Hierarchy, n_samples: int) -> List[Message]:
        """Per-run transfer list: embeddings up + gradients down, per epoch.

        Each device ships ``n_samples x embedding_dim`` float32 up (and
        the same volume of gradients comes back) every epoch; gateways
        relay their subtree's embeddings.
        """
        if n_samples < 0:
            raise ValueError("n_samples must be >= 0")
        per_device = n_samples * self.embedding_dim * 4
        messages: List[Message] = []
        subtree_leaves = {
            nid: len(hierarchy.subtree_leaves(nid)) for nid in hierarchy.nodes
        }
        for epoch in range(self.epochs):
            for node_id in hierarchy.postorder():
                node = hierarchy.nodes[node_id]
                if node.parent is None:
                    continue
                volume = per_device * subtree_leaves[node_id]
                messages.append(
                    Message(
                        node_id, node.parent, MessageKind.RAW_DATA,
                        volume, sequence=epoch,
                    )
                )
                messages.append(
                    Message(
                        node.parent, node_id, MessageKind.CONTROL,
                        volume, sequence=epoch,
                    )
                )
        return messages

    def inference_messages(self, hierarchy: Hierarchy, n_queries: int) -> List[Message]:
        """Embeddings shipped upward for ``n_queries`` inferences."""
        if n_queries < 0:
            raise ValueError("n_queries must be >= 0")
        per_device = n_queries * self.embedding_dim * 4
        messages: List[Message] = []
        for node_id in hierarchy.postorder():
            node = hierarchy.nodes[node_id]
            if node.parent is None:
                continue
            volume = per_device * len(hierarchy.subtree_leaves(node_id))
            messages.append(
                Message(node_id, node.parent, MessageKind.QUERY, volume)
            )
        return messages

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, "_fitted_or_none")
        x = check_matrix("features", features, cols=self.partition.n_features)
        concat = np.concatenate(self._device_embeddings(x), axis=1)
        _, probs = self._head_forward(concat)
        return probs

    @property
    def _fitted_or_none(self) -> Optional[bool]:
        return True if self._fitted else None

    def predict(self, features: np.ndarray) -> PredictionResult:
        """Full inference output (:class:`~repro.core.predictor.Predictor`).

        Previously returned a bare label array; that shape survives via
        the deprecation shims on
        :class:`~repro.core.classifier.PredictionResult`.
        """
        return result_from_proba(self.predict_proba(features))

    def predict_labels(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        y = check_labels("labels", labels, n_classes=self.n_classes)
        pred = self.predict_labels(features)
        if pred.shape[0] != y.shape[0]:
            raise ValueError("sample/label count mismatch")
        return float(np.mean(pred == y))
