"""AdaBoost over decision stumps (SAMME), from scratch.

Stands in for the paper's scikit-learn AdaBoost baseline (Fig. 7).
The weak learner is a one-node decision tree (stump) chosen by
weighted-error minimization over a quantile grid of thresholds; the
ensemble is combined with the multi-class SAMME rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.classifier import PredictionResult
from repro.core.predictor import result_from_scores
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_fitted, check_labels, check_matrix

__all__ = ["DecisionStump", "AdaBoostClassifier"]


@dataclass
class DecisionStump:
    """feature <= threshold ? left_class : right_class"""

    feature: int
    threshold: float
    left_class: int
    right_class: int

    def predict(self, features: np.ndarray) -> np.ndarray:
        col = features[:, self.feature]
        return np.where(col <= self.threshold, self.left_class, self.right_class)


def _fit_stump(
    features: np.ndarray,
    labels: np.ndarray,
    weights: np.ndarray,
    n_classes: int,
    feature_subset: np.ndarray,
    n_thresholds: int = 16,
) -> tuple[DecisionStump, float]:
    """Best weighted stump over the candidate features/thresholds."""
    best: Optional[DecisionStump] = None
    best_err = np.inf
    for feature in feature_subset:
        col = features[:, feature]
        quantiles = np.quantile(col, np.linspace(0.05, 0.95, n_thresholds))
        for threshold in np.unique(quantiles):
            left = col <= threshold
            # Weighted majority class on each side.
            left_w = np.bincount(labels[left], weights=weights[left], minlength=n_classes)
            right_w = np.bincount(
                labels[~left], weights=weights[~left], minlength=n_classes
            )
            lc = int(np.argmax(left_w))
            rc = int(np.argmax(right_w))
            err = weights.sum() - left_w[lc] - right_w[rc]
            if err < best_err:
                best_err = err
                best = DecisionStump(int(feature), float(threshold), lc, rc)
    assert best is not None
    return best, float(best_err / weights.sum())


class AdaBoostClassifier:
    """SAMME AdaBoost with decision-stump weak learners."""

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        n_estimators: int = 50,
        max_features: Optional[int] = None,
        seed: SeedLike = None,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if n_estimators <= 0:
            raise ValueError("n_estimators must be positive")
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.n_estimators = int(n_estimators)
        # Random feature subsetting keeps stump search tractable on wide data.
        self.max_features = (
            min(n_features, max_features)
            if max_features is not None
            else min(n_features, 32)
        )
        self._rng = derive_rng(seed, "adaboost")
        self.stumps: Optional[List[DecisionStump]] = None
        self.alphas: List[float] = []

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "AdaBoostClassifier":
        x = check_matrix("features", features, cols=self.n_features)
        y = check_labels("labels", labels, n_classes=self.n_classes)
        if x.shape[0] != y.shape[0]:
            raise ValueError("sample/label count mismatch")
        if x.shape[0] == 0:
            raise ValueError("empty training set")
        n = x.shape[0]
        weights = np.full(n, 1.0 / n)
        self.stumps = []
        self.alphas = []
        k = self.n_classes
        for _ in range(self.n_estimators):
            subset = self._rng.choice(
                self.n_features, size=self.max_features, replace=False
            )
            stump, err = _fit_stump(x, y, weights, k, subset)
            err = min(max(err, 1e-10), 1.0 - 1e-10)
            if err >= 1.0 - 1.0 / k:
                # Weak learner no better than chance; stop boosting.
                break
            alpha = np.log((1.0 - err) / err) + np.log(k - 1.0)
            pred = stump.predict(x)
            weights *= np.exp(alpha * (pred != y))
            weights /= weights.sum()
            self.stumps.append(stump)
            self.alphas.append(float(alpha))
            if err < 1e-8:
                break
        if not self.stumps:
            # Degenerate fallback: constant majority-class stump.
            majority = int(np.bincount(y, minlength=k).argmax())
            self.stumps.append(DecisionStump(0, np.inf, majority, majority))
            self.alphas.append(1.0)
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, "stumps")
        x = check_matrix("features", features, cols=self.n_features)
        votes = np.zeros((x.shape[0], self.n_classes))
        for stump, alpha in zip(self.stumps, self.alphas):
            pred = stump.predict(x)
            votes[np.arange(x.shape[0]), pred] += alpha
        return votes

    def predict(self, features: np.ndarray) -> PredictionResult:
        """Full inference output (:class:`~repro.core.predictor.Predictor`).

        Previously returned a bare label array; that shape survives via
        the deprecation shims on
        :class:`~repro.core.classifier.PredictionResult`.
        """
        return result_from_scores(self.decision_function(features))

    def predict_labels(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.decision_function(features), axis=1)

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        return self.predict(features).confidences

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        y = check_labels("labels", labels, n_classes=self.n_classes)
        pred = self.predict_labels(features)
        if pred.shape[0] != y.shape[0]:
            raise ValueError("sample/label count mismatch")
        return float(np.mean(pred == y))
