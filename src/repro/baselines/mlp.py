"""Multi-layer perceptron implemented from scratch on numpy.

Stands in for the paper's TensorFlow DNN baseline (Fig. 7, Fig. 10).
A standard fully-connected network: ReLU hidden layers, softmax output,
cross-entropy loss, mini-batch Adam. The default architecture matches
what a small grid search selects for the paper's tabular datasets.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.classifier import PredictionResult
from repro.core.predictor import result_from_proba
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_fitted, check_labels, check_matrix

__all__ = ["MLPClassifier"]


class MLPClassifier:
    """ReLU MLP with softmax head trained by mini-batch Adam."""

    def __init__(
        self,
        n_features: int,
        n_classes: int,
        hidden_sizes: Sequence[int] = (128, 64),
        learning_rate: float = 1e-3,
        batch_size: int = 64,
        epochs: int = 30,
        l2: float = 1e-4,
        seed: SeedLike = None,
    ) -> None:
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features}")
        if n_classes < 2:
            raise ValueError(f"n_classes must be >= 2, got {n_classes}")
        if any(h <= 0 for h in hidden_sizes):
            raise ValueError("hidden sizes must be positive")
        if learning_rate <= 0 or batch_size <= 0 or epochs < 0 or l2 < 0:
            raise ValueError("invalid optimizer hyper-parameters")
        self.n_features = int(n_features)
        self.n_classes = int(n_classes)
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.learning_rate = float(learning_rate)
        self.batch_size = int(batch_size)
        self.epochs = int(epochs)
        self.l2 = float(l2)
        self._rng = derive_rng(seed, "mlp")
        self.weights: Optional[List[np.ndarray]] = None
        self.biases: Optional[List[np.ndarray]] = None
        self.loss_history: List[float] = []

    # ------------------------------------------------------------------
    def _init_params(self) -> None:
        sizes = [self.n_features, *self.hidden_sizes, self.n_classes]
        self.weights = []
        self.biases = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            # He initialization for ReLU layers.
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(self._rng.standard_normal((fan_in, fan_out)) * scale)
            self.biases.append(np.zeros(fan_out))

    def _forward(self, x: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return (logits, per-layer activations incl. input)."""
        activations = [x]
        h = x
        for i, (w, b) in enumerate(zip(self.weights, self.biases)):
            z = h @ w + b
            if i < len(self.weights) - 1:
                h = np.maximum(z, 0.0)
                activations.append(h)
            else:
                return z, activations
        raise AssertionError("unreachable")

    @staticmethod
    def _softmax(logits: np.ndarray) -> np.ndarray:
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "MLPClassifier":
        """Train with mini-batch Adam; stores per-epoch mean loss."""
        x = check_matrix("features", features, cols=self.n_features)
        y = check_labels("labels", labels, n_classes=self.n_classes)
        if x.shape[0] != y.shape[0]:
            raise ValueError(f"{x.shape[0]} samples but {y.shape[0]} labels")
        if x.shape[0] == 0:
            raise ValueError("empty training set")
        self._init_params()
        m = [np.zeros_like(w) for w in self.weights] + [
            np.zeros_like(b) for b in self.biases
        ]
        v = [np.zeros_like(g) for g in m]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0
        self.loss_history = []
        n = x.shape[0]
        for _ in range(self.epochs):
            order = self._rng.permutation(n)
            epoch_loss = 0.0
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, yb = x[idx], y[idx]
                logits, activations = self._forward(xb)
                probs = self._softmax(logits)
                batch = xb.shape[0]
                loss = -np.mean(
                    np.log(probs[np.arange(batch), yb] + 1e-12)
                )
                epoch_loss += loss * batch
                # Backward pass.
                grad_logits = probs
                grad_logits[np.arange(batch), yb] -= 1.0
                grad_logits /= batch
                grads_w: list[np.ndarray] = []
                grads_b: list[np.ndarray] = []
                delta = grad_logits
                for layer in range(len(self.weights) - 1, -1, -1):
                    a_prev = activations[layer]
                    grads_w.append(a_prev.T @ delta + self.l2 * self.weights[layer])
                    grads_b.append(delta.sum(axis=0))
                    if layer > 0:
                        delta = (delta @ self.weights[layer].T) * (
                            activations[layer] > 0
                        )
                grads_w.reverse()
                grads_b.reverse()
                # Adam update over [weights..., biases...].
                step += 1
                params = self.weights + self.biases
                grads = grads_w + grads_b
                lr_t = self.learning_rate * (
                    np.sqrt(1 - beta2**step) / (1 - beta1**step)
                )
                for i, (p, g) in enumerate(zip(params, grads)):
                    m[i] = beta1 * m[i] + (1 - beta1) * g
                    v[i] = beta2 * v[i] + (1 - beta2) * g * g
                    p -= lr_t * m[i] / (np.sqrt(v[i]) + eps)
            self.loss_history.append(epoch_loss / n)
        return self

    # ------------------------------------------------------------------
    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        check_fitted(self, "weights")
        x = check_matrix("features", features, cols=self.n_features)
        logits, _ = self._forward(x)
        return self._softmax(logits)

    def predict(self, features: np.ndarray) -> PredictionResult:
        """Full inference output (:class:`~repro.core.predictor.Predictor`).

        Previously returned a bare label array; that shape survives via
        the deprecation shims on
        :class:`~repro.core.classifier.PredictionResult`.
        """
        return result_from_proba(self.predict_proba(features))

    def predict_labels(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        y = check_labels("labels", labels, n_classes=self.n_classes)
        pred = self.predict_labels(features)
        if pred.shape[0] != y.shape[0]:
            raise ValueError("sample/label count mismatch")
        return float(np.mean(pred == y))
