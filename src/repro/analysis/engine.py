"""Pluggable AST lint engine for repo-specific invariants.

The reproduction's headline guarantees (served answers identical to the
offline walk, dense/packed backend equivalence, seeded reproducibility
of every figure) rest on coding conventions — all randomness flows
through :mod:`repro.utils.rng`, packed payloads keep their uint64
discipline, ``repro.serve`` coroutines never block the event loop.
This module provides the machinery to *enforce* those conventions:

* :class:`Rule` — the plug-in unit: an id, a severity, a description,
  an autofix hint and a set of AST node types it wants to observe.
* :class:`LintEngine` — parses each file once, walks the tree once,
  and dispatches every node to the rules interested in its type while
  maintaining the enclosing-function stack in the shared
  :class:`FileContext`.
* Suppression — a ``# repro-lint: disable=RULE[,RULE...]`` comment on
  a line suppresses those rules for that line; the same comment in the
  leading comment block of a file suppresses them for the whole file.
  ``disable=all`` suppresses every rule.

The concrete rules live in :mod:`repro.analysis.rules`; reporters in
:mod:`repro.analysis.reporters`; the CLI front end is
``repro lint`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "LintEngine",
    "PARSE_ERROR_ID",
    "SEVERITIES",
]

#: Recognized severities, most severe first.
SEVERITIES = ("error", "warning")

#: Rule id reported for files that fail to parse.
PARSE_ERROR_ID = "REPRO100"

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: str
    message: str
    autofix_hint: str = ""
    #: last line of the offending statement (0 = same as ``line``);
    #: suppression comments anywhere in the span apply.
    end_line: int = 0
    #: structured rule-specific evidence (interleaving witness for
    #: REPRO111, colliding tag sites for REPRO113, ...); rendered
    #: verbatim by the JSON reporter.
    extra: Optional[Dict[str, object]] = None

    def format(self) -> str:
        """``path:line:col: RULE [severity] message`` (+ optional hint)."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )
        if self.autofix_hint:
            text += f" (fix: {self.autofix_hint})"
        return text

    def span(self) -> Tuple[int, int]:
        """Inclusive ``(first, last)`` line range of the finding."""
        return self.line, max(self.line, self.end_line)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "autofix_hint": self.autofix_hint,
            "end_line": max(self.line, self.end_line),
        }
        if self.extra is not None:
            payload["extra"] = self.extra
        return payload

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


def _parse_suppressions(
    lines: Sequence[str],
) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Extract file-level and per-line rule suppressions.

    Returns ``(file_rules, {line_no: rules})`` with 1-based line
    numbers. A whole-line ``# repro-lint: disable=...`` comment inside
    the leading comment block applies to the entire file; any other
    occurrence applies to its own line.
    """
    file_rules: Set[str] = set()
    line_rules: Dict[int, Set[str]] = {}
    in_header = True
    for i, raw in enumerate(lines, start=1):
        stripped = raw.strip()
        if in_header and stripped and not stripped.startswith("#"):
            in_header = False
        match = _SUPPRESS_RE.search(raw)
        if not match:
            continue
        rules = {
            token.strip().upper()
            for token in match.group(1).split(",")
            if token.strip()
        }
        if in_header and stripped.startswith("#"):
            file_rules |= rules
        else:
            line_rules.setdefault(i, set()).update(rules)
    return file_rules, line_rules


class FileContext:
    """Everything a rule may need about the file under analysis.

    Exposes the parsed tree, raw source lines, import-alias resolution
    (``import numpy as np`` makes ``np.random.default_rng`` resolve to
    ``numpy.random.default_rng``) and the stack of enclosing function
    definitions, which the engine maintains during the walk.
    """

    def __init__(self, path: Union[str, Path], source: str) -> None:
        self.path = str(path)
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=self.path)
        #: local alias -> dotted module path, from ``import x.y as z``.
        self.aliases: Dict[str, str] = {}
        #: local name -> dotted origin, from ``from x import y [as z]``.
        self.from_imports: Dict[str, str] = {}
        self._collect_imports()
        self.file_suppressions, self.line_suppressions = _parse_suppressions(
            self.lines
        )
        #: enclosing (Async)FunctionDef stack, innermost last; the
        #: engine pushes/pops while walking.
        self.func_stack: List[Union[ast.FunctionDef, ast.AsyncFunctionDef]] = []

    # ------------------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else local
                    self.aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{node.module}.{alias.name}"

    # ------------------------------------------------------------------
    def dotted_name(self, expr: ast.expr) -> Optional[str]:
        """Resolve ``np.random.default_rng`` -> ``numpy.random.default_rng``.

        Walks an Attribute/Name chain and maps its head through the
        file's import aliases. Returns ``None`` for expressions that
        are not plain dotted names (subscripts, calls, literals).
        """
        parts: List[str] = []
        node = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = node.id
        parts.append(self.aliases.get(head, self.from_imports.get(head, head)))
        return ".".join(reversed(parts))

    @staticmethod
    def terminal_name(expr: ast.expr) -> Optional[str]:
        """Last attribute/name segment of a callee (``x.y.z`` -> ``z``)."""
        if isinstance(expr, ast.Attribute):
            return expr.attr
        if isinstance(expr, ast.Name):
            return expr.id
        return None

    # ------------------------------------------------------------------
    def in_async_function(self) -> bool:
        """True when the walk is inside an ``async def`` body."""
        return any(
            isinstance(f, ast.AsyncFunctionDef) for f in self.func_stack
        )

    def current_function(
        self,
    ) -> Optional[Union[ast.FunctionDef, ast.AsyncFunctionDef]]:
        return self.func_stack[-1] if self.func_stack else None

    # ------------------------------------------------------------------
    def is_suppressed(
        self, rule_id: str, line: int, end_line: int = 0
    ) -> bool:
        """True when ``rule_id`` is disabled anywhere in the statement span.

        ``end_line`` extends the check over multi-line statements: a
        ``# repro-lint: disable=...`` comment on *any* physical line of
        the statement (e.g. the closing paren of a wrapped call)
        suppresses the finding, matching how humans naturally place
        the comment.
        """
        rule_id = rule_id.upper()
        if rule_id in self.file_suppressions or "ALL" in self.file_suppressions:
            return True
        last = max(line, end_line)
        for at, scope in self.line_suppressions.items():
            if line <= at <= last and (rule_id in scope or "ALL" in scope):
                return True
        return False


class Rule:
    """Base class / protocol for lint rules.

    Subclasses set the class attributes and implement
    :meth:`on_node` for the node types named in :attr:`node_types`.
    :meth:`start_file` / :meth:`finish_file` bracket each file for
    rules that need a pre-pass (collect names) or file-level findings.
    """

    rule_id: str = "REPRO000"
    severity: str = "error"
    description: str = ""
    autofix_hint: str = ""
    #: AST node classes this rule wants to observe.
    node_types: Tuple[type, ...] = ()

    def start_file(self, ctx: FileContext) -> None:
        """Called before the walk; override to reset per-file state."""

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        """Called for every node matching :attr:`node_types`."""
        return iter(())

    def finish_file(self, ctx: FileContext) -> Iterator[Finding]:
        """Called after the walk; override for file-level findings."""
        return iter(())

    def finish_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        """Called once after every file was walked, with all contexts.

        Override for whole-program analyses (cross-file handoff
        summaries, global RNG-tag collection). Findings are attributed
        to — and suppressible in — the file named by their ``path``.
        """
        return iter(())

    # ------------------------------------------------------------------
    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        extra: Optional[Dict[str, object]] = None,
    ) -> Finding:
        """Build a :class:`Finding` for ``node`` with this rule's metadata."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            autofix_hint=self.autofix_hint,
            end_line=getattr(node, "end_lineno", 0) or 0,
            extra=extra,
        )


class LintEngine:
    """Run a set of :class:`Rule` instances over files or source text."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        ids = [rule.rule_id for rule in rules]
        duplicates = {rid for rid in ids if ids.count(rid) > 1}
        if duplicates:
            raise ValueError(f"duplicate rule ids: {sorted(duplicates)}")
        for rule in rules:
            if rule.severity not in SEVERITIES:
                raise ValueError(
                    f"{rule.rule_id}: severity must be one of {SEVERITIES}, "
                    f"got {rule.severity!r}"
                )
        self.rules: List[Rule] = list(rules)

    # ------------------------------------------------------------------
    def lint_source(
        self, source: str, path: Union[str, Path] = "<string>"
    ) -> List[Finding]:
        """Lint one file's source text; parse errors become findings."""
        findings, ctx = self._lint_one(source, path)
        contexts = [ctx] if ctx is not None else []
        findings.extend(self._project_findings(contexts))
        return sorted(findings, key=Finding.sort_key)

    def _lint_one(
        self, source: str, path: Union[str, Path]
    ) -> Tuple[List[Finding], Optional[FileContext]]:
        """Per-file passes only; project rules run in the caller."""
        try:
            ctx = FileContext(path, source)
        except SyntaxError as exc:
            return [
                Finding(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule_id=PARSE_ERROR_ID,
                    severity="error",
                    message=f"file does not parse: {exc.msg}",
                )
            ], None
        findings: List[Finding] = []
        for rule in self.rules:
            rule.start_file(ctx)
        self._walk(ctx, ctx.tree, findings)
        for rule in self.rules:
            findings.extend(
                f for f in rule.finish_file(ctx)
                if not ctx.is_suppressed(f.rule_id, f.line, f.end_line)
            )
        return findings, ctx

    def _project_findings(
        self, contexts: Sequence[FileContext]
    ) -> List[Finding]:
        """Run :meth:`Rule.finish_project` hooks, applying suppressions."""
        by_path = {ctx.path: ctx for ctx in contexts}
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.finish_project(contexts):
                ctx = by_path.get(finding.path)
                if ctx is not None and ctx.is_suppressed(
                    finding.rule_id, finding.line, finding.end_line
                ):
                    continue
                findings.append(finding)
        return findings

    def lint_file(self, path: Union[str, Path]) -> List[Finding]:
        return self.lint_source(
            Path(path).read_text(encoding="utf-8"), path=path
        )

    def lint_paths(self, paths: Iterable[Union[str, Path]]) -> List[Finding]:
        """Lint files and (recursively) directories of ``*.py`` files."""
        findings: List[Finding] = []
        contexts: List[FileContext] = []
        for target in self._iter_files(paths):
            per_file, ctx = self._lint_one(
                Path(target).read_text(encoding="utf-8"), target
            )
            findings.extend(per_file)
            if ctx is not None:
                contexts.append(ctx)
        findings.extend(self._project_findings(contexts))
        return sorted(findings, key=Finding.sort_key)

    @staticmethod
    def _iter_files(paths: Iterable[Union[str, Path]]) -> List[Path]:
        files: List[Path] = []
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
            elif not path.exists():
                raise FileNotFoundError(f"no such file or directory: {path}")
        return files

    # ------------------------------------------------------------------
    def _walk(
        self, ctx: FileContext, node: ast.AST, findings: List[Finding]
    ) -> None:
        for rule in self.rules:
            if rule.node_types and isinstance(node, rule.node_types):
                for finding in rule.on_node(ctx, node):
                    if not ctx.is_suppressed(
                        finding.rule_id, finding.line, finding.end_line
                    ):
                        findings.append(finding)
        is_func = isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if is_func:
            ctx.func_stack.append(node)  # type: ignore[arg-type]
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, child, findings)
        if is_func:
            ctx.func_stack.pop()
