"""Repo-specific lint rules protecting the reproduction's invariants.

Each rule pins one convention the paper-level guarantees depend on
(see DESIGN.md for the rule -> invariant map):

=========  =======================  ==========================================
id         name                     invariant protected
=========  =======================  ==========================================
REPRO101   rng-discipline           all randomness derives from
                                    ``utils.rng.derive_rng`` (seeded figures)
REPRO102   async-blocking-call      ``serve`` coroutines never block the loop
REPRO103   unawaited-coroutine      no silently-dropped coroutine work
REPRO104   packed-dtype-discipline  uint64 word arrays never leak into float
                                    math without ``unpack_bits``
REPRO105   obs-literal-names        metric/span names stay greppable
REPRO106   mutable-default-arg      no shared mutable state across calls
REPRO107   silent-broad-except      hot paths never swallow errors silently
REPRO108   unvalidated-array-api    public array APIs validate their input
REPRO109   legacy-backend-string    associative search is configured through
                                    ``SearchSpec``, not bare ``backend=`` strings
REPRO110   process-boundary         ``multiprocessing`` process / shared-memory
                                    primitives stay inside the serving cluster
=========  =======================  ==========================================

The dataflow rules REPRO111 (await-boundary-race), REPRO112
(shared-memory-write) and REPRO113 (rng-tag-collision) live in
:mod:`repro.analysis.flow` and are enabled with ``repro lint --flow``
(or by naming them in ``--select``).

Suppress a rule for one line with a trailing
``# repro-lint: disable=REPRO10x`` comment, or for a whole file by
putting the same comment in the leading comment block.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Sequence, Set, Tuple

from repro.analysis.engine import FileContext, Finding, Rule
from repro.analysis.flow import flow_rules

__all__ = [
    "RngDisciplineRule",
    "AsyncBlockingCallRule",
    "UnawaitedCoroutineRule",
    "PackedDtypeRule",
    "ObsLiteralNameRule",
    "MutableDefaultRule",
    "SilentBroadExceptRule",
    "UnvalidatedArrayApiRule",
    "LegacyBackendStringRule",
    "ProcessBoundaryRule",
    "DEFAULT_RULES",
    "RULE_INDEX",
    "default_rules",
]


def _in_module(ctx: FileContext, *suffix: str) -> bool:
    """True when ``ctx.path`` ends with the given path segments."""
    parts = ctx.path.replace("\\", "/").split("/")
    return parts[-len(suffix):] == list(suffix)


def _under_package(ctx: FileContext, *segments: str) -> bool:
    """True when ``ctx.path`` contains the given directory run."""
    parts = ctx.path.replace("\\", "/").split("/")
    n = len(segments)
    return any(
        parts[i : i + n] == list(segments) for i in range(len(parts) - n + 1)
    )


class RngDisciplineRule(Rule):
    """All randomness must flow through :func:`repro.utils.rng.derive_rng`.

    Direct ``numpy.random`` calls either touch hidden global state
    (legacy API — breaks seeded reproducibility outright) or mint
    generators whose streams are not derived from the experiment seed
    (``default_rng`` outside ``utils/rng.py`` — two components seeded
    with the same small int silently share a stream). The stdlib
    ``random`` module is banned for the same reason.
    """

    rule_id = "REPRO101"
    severity = "error"
    description = (
        "numpy.random.* / stdlib random used directly; randomness must "
        "derive from utils.rng"
    )
    autofix_hint = "use repro.utils.rng.derive_rng(seed, tag=...)"
    node_types = (ast.Call, ast.Import, ast.ImportFrom)

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield self.finding(
                        ctx, node, "stdlib 'random' import is banned"
                    )
            return
        if isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield self.finding(
                    ctx, node, "stdlib 'random' import is banned"
                )
            return
        assert isinstance(node, ast.Call)
        name = ctx.dotted_name(node.func)
        if not name or not name.startswith(("numpy.random.", "random.")):
            return
        if name.startswith("random."):
            yield self.finding(ctx, node, f"stdlib call {name}() is banned")
            return
        if name == "numpy.random.default_rng":
            if _in_module(ctx, "repro", "utils", "rng.py"):
                return
            yield self.finding(
                ctx,
                node,
                "numpy.random.default_rng() outside utils/rng.py mints an "
                "untagged generator stream",
            )
            return
        yield self.finding(
            ctx, node, f"legacy global-state call {name}() is banned"
        )


class AsyncBlockingCallRule(Rule):
    """No blocking calls inside ``async def`` bodies.

    A single ``time.sleep`` or synchronous file read inside a serve
    coroutine stalls *every* node server sharing the event loop; the
    simulated store-and-forward delays must go through
    ``asyncio.sleep`` so concurrent transfers overlap as they would on
    real links.
    """

    rule_id = "REPRO102"
    severity = "error"
    description = "blocking call inside an async function"
    autofix_hint = (
        "use asyncio.sleep / run_in_executor, or move the I/O out of "
        "the coroutine"
    )
    node_types = (ast.Call,)

    _BLOCKING_DOTTED = {
        "time.sleep",
        "subprocess.run",
        "subprocess.Popen",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "socket.create_connection",
        "urllib.request.urlopen",
    }
    _BLOCKING_METHODS = {
        "read_text",
        "write_text",
        "read_bytes",
        "write_bytes",
    }

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not ctx.in_async_function():
            return
        name = ctx.dotted_name(node.func)
        if name == "open" or (name and name in self._BLOCKING_DOTTED):
            yield self.finding(
                ctx, node, f"blocking call {name}() inside 'async def'"
            )
            return
        terminal = ctx.terminal_name(node.func)
        if isinstance(node.func, ast.Attribute) and (
            terminal in self._BLOCKING_METHODS or terminal == "open"
        ):
            yield self.finding(
                ctx,
                node,
                f"blocking file I/O .{terminal}() inside 'async def'",
            )


class UnawaitedCoroutineRule(Rule):
    """A coroutine call whose result is discarded never runs.

    Flags expression statements that call ``asyncio.sleep`` or any
    ``async def`` defined in the same file without ``await`` (and
    without wrapping in ``ensure_future`` / ``create_task``, which
    would make the call an argument rather than the statement itself).
    """

    rule_id = "REPRO103"
    severity = "error"
    description = "coroutine called without await; it will never execute"
    autofix_hint = "await the call or schedule it with asyncio.ensure_future"
    node_types = (ast.Expr,)

    def __init__(self) -> None:
        self._async_names: Set[str] = set()

    def start_file(self, ctx: FileContext) -> None:
        self._async_names = {
            node.name
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.AsyncFunctionDef)
        }

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.Expr)
        call = node.value
        if not isinstance(call, ast.Call):
            return
        dotted = ctx.dotted_name(call.func)
        terminal = ctx.terminal_name(call.func)
        if dotted == "asyncio.sleep":
            yield self.finding(ctx, node, "asyncio.sleep() is not awaited")
        elif terminal in self._async_names:
            yield self.finding(
                ctx,
                node,
                f"coroutine {terminal}() is not awaited (async def in this "
                "module)",
            )


class PackedDtypeRule(Rule):
    """Bit-packed uint64 word arrays must not silently enter float math.

    The packed kernel's correctness argument (``dot = D - 2*popcount``)
    lives entirely in uint64 space; casting a ``*_words`` / ``packed*``
    array to float reinterprets bit patterns as magnitudes and produces
    garbage similarities. The only sanctioned exit is
    :func:`repro.core.kernels.unpack_bits`.
    """

    rule_id = "REPRO104"
    severity = "error"
    description = "packed uint64 payload cast to float without unpack_bits"
    autofix_hint = "unpack first via repro.core.kernels.unpack_bits(...)"
    node_types = (ast.Call,)

    _NAME_RE = re.compile(r"(^|_)(packed|words?)($|_)|packed", re.IGNORECASE)

    @classmethod
    def _is_packed_name(cls, expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return bool(cls._NAME_RE.search(expr.id))
        if isinstance(expr, ast.Attribute):
            return bool(cls._NAME_RE.search(expr.attr))
        return False

    @staticmethod
    def _is_float_dtype(expr: ast.expr) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id == "float"
        if isinstance(expr, ast.Attribute):
            return expr.attr.startswith(("float", "double"))
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return expr.value.startswith("float")
        return False

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        # packed_words.astype(float...) / .view(float...)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in {"astype", "view"}
            and self._is_packed_name(func.value)
            and node.args
            and self._is_float_dtype(node.args[0])
        ):
            yield self.finding(
                ctx,
                node,
                f"{ctx.terminal_name(func.value)}.{func.attr}(float) "
                "reinterprets packed words as magnitudes",
            )
            return
        # np.asarray(packed_words, dtype=float...)
        dotted = ctx.dotted_name(func)
        if dotted in {"numpy.asarray", "numpy.array"} and node.args:
            if not self._is_packed_name(node.args[0]):
                return
            for kw in node.keywords:
                if kw.arg == "dtype" and self._is_float_dtype(kw.value):
                    yield self.finding(
                        ctx,
                        node,
                        "float coercion of a packed word array",
                    )


class ObsLiteralNameRule(Rule):
    """Metric and span names must be (prefix-)literal strings.

    ``repro stats`` output is only useful if every metric name can be
    found by grepping the source. A name is compliant when it is a
    string literal, or an f-string whose *leading* segment is a dotted
    literal prefix (the sanctioned low-cardinality pattern, e.g.
    ``f"serve.decided.l{level}"``). The ``repro.obs`` implementation
    modules are exempt — their name parameters are the plumbing.
    """

    rule_id = "REPRO105"
    severity = "error"
    description = "metric/span name is not a greppable string literal"
    autofix_hint = (
        "use a string literal, or an f-string with a dotted literal "
        "prefix for per-level suffixes"
    )
    node_types = (ast.Call,)

    _OBS_HELPERS = {
        "incr",
        "observe",
        "gauge_set",
        "gauge_add",
        "span",
        "traced",
    }
    _REGISTRY_METHODS = {"counter", "gauge", "histogram"}

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if _under_package(ctx, "repro", "obs"):
            return
        dotted = ctx.dotted_name(node.func) or ""
        terminal = ctx.terminal_name(node.func)
        is_obs_helper = (
            dotted.startswith("repro.obs.") and terminal in self._OBS_HELPERS
        )
        is_registry = (
            isinstance(node.func, ast.Attribute)
            and terminal in self._REGISTRY_METHODS
        )
        if not (is_obs_helper or is_registry):
            return
        if not node.args:
            return
        name = node.args[0]
        if isinstance(name, ast.Constant) and isinstance(name.value, str):
            return
        if isinstance(name, ast.JoinedStr) and name.values:
            head = name.values[0]
            if (
                isinstance(head, ast.Constant)
                and isinstance(head.value, str)
                and "." in head.value
            ):
                return
        yield self.finding(
            ctx,
            node,
            f"{terminal}() name must be a string literal (or an f-string "
            "with a dotted literal prefix)",
        )


class MutableDefaultRule(Rule):
    """No mutable default argument values.

    A ``def f(x, acc=[])`` default is created once and shared by every
    call — accumulated state leaks across experiments, the classic
    seeded-run poisoner.
    """

    rule_id = "REPRO106"
    severity = "error"
    description = "mutable default argument value"
    autofix_hint = "default to None and create the value inside the function"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    _MUTABLE_CALLS = {
        "list",
        "dict",
        "set",
        "bytearray",
        "collections.defaultdict",
        "collections.OrderedDict",
        "collections.Counter",
        "collections.deque",
    }
    _MUTABLE_NODES = (
        ast.List,
        ast.Dict,
        ast.Set,
        ast.ListComp,
        ast.DictComp,
        ast.SetComp,
    )

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        args = node.args  # type: ignore[union-attr]
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if isinstance(default, self._MUTABLE_NODES):
                yield self.finding(
                    ctx, default, "mutable literal as default argument"
                )
            elif isinstance(default, ast.Call):
                name = ctx.dotted_name(default.func)
                if name in self._MUTABLE_CALLS:
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable {name}() call as default argument",
                    )


class SilentBroadExceptRule(Rule):
    """No broad ``except`` that swallows the error without a trace.

    A bare ``except:`` / ``except Exception:`` whose body neither
    re-raises nor logs hides real failures inside the hot paths —
    a dropped message or NaN similarity would surface as a silently
    wrong accuracy number instead of an error.
    """

    rule_id = "REPRO107"
    severity = "error"
    description = "broad except swallows the error without raise or log"
    autofix_hint = (
        "catch the specific exception, or re-raise / log inside the handler"
    )
    node_types = (ast.ExceptHandler,)

    _LOG_METHODS = {
        "debug",
        "info",
        "warning",
        "warn",
        "error",
        "exception",
        "critical",
    }

    def _is_broad(self, ctx: FileContext, handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        types = (
            handler.type.elts
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        for node in types:
            if ctx.dotted_name(node) in {"Exception", "BaseException"}:
                return True
        return False

    def _handles_error(self, handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(ast.Module(body=handler.body, type_ignores=[])):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call):
                terminal = FileContext.terminal_name(node.func)
                if terminal in self._LOG_METHODS:
                    return True
        return False

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.ExceptHandler)
        if self._is_broad(ctx, node) and not self._handles_error(node):
            yield self.finding(
                ctx,
                node,
                "broad exception handler neither re-raises nor logs",
            )


class UnvalidatedArrayApiRule(Rule):
    """Public array-taking APIs must validate what they coerce.

    A public function that calls ``np.asarray`` / ``np.stack`` /
    ``np.atleast_*`` on one of its parameters, but contains neither a
    ``check_*`` call (:mod:`repro.utils.validation`) nor any ``raise``,
    silently accepts garbage shapes — the error then surfaces levels
    away as a broadcasting crash or, worse, a wrong number.
    """

    rule_id = "REPRO108"
    severity = "warning"
    description = "public API coerces an array argument without validation"
    autofix_hint = (
        "route the argument through repro.utils.validation (check_matrix, "
        "check_vector, check_labels, ...) or raise on invalid input"
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    _COERCIONS = {
        "numpy.asarray",
        "numpy.array",
        "numpy.stack",
        "numpy.atleast_1d",
        "numpy.atleast_2d",
    }

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if node.name.startswith("_"):
            return
        params = {
            a.arg
            for a in (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
            if a.arg not in {"self", "cls"}
        }
        if not params:
            return
        coercions: List[ast.Call] = []
        validated = False
        raises = False
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                raises = True
            elif isinstance(sub, ast.Call):
                terminal = ctx.terminal_name(sub.func)
                if terminal and terminal.startswith("check_"):
                    validated = True
                dotted = ctx.dotted_name(sub.func)
                if (
                    dotted in self._COERCIONS
                    and sub.args
                    and isinstance(sub.args[0], ast.Name)
                    and sub.args[0].id in params
                ):
                    coercions.append(sub)
        if validated or raises:
            return
        for call in coercions:
            arg = call.args[0]
            assert isinstance(arg, ast.Name)
            yield self.finding(
                ctx,
                call,
                f"{node.name}() coerces parameter {arg.id!r} without any "
                "validation or error path",
            )


class LegacyBackendStringRule(Rule):
    """Associative search is configured through ``SearchSpec``.

    The PR that introduced prefix-pruned search replaced the scattered
    ``backend="dense"|"packed"`` strings with one frozen
    :class:`repro.core.search.SearchSpec`; the string keyword survives
    only as a warn-once deprecation shim. A literal ``backend="..."``
    argument in repo code re-grows the old API surface (and silently
    bypasses the prune knobs), so it is flagged everywhere except the
    shim module itself. Constructing the new spec is of course exempt:
    ``SearchSpec(backend=...)`` / ``spec.with_backend(...)`` /
    ``dataclasses.replace(spec, backend=...)`` are the replacement.
    """

    rule_id = "REPRO109"
    severity = "error"
    description = (
        "legacy backend=\"...\" string argument; configure search via "
        "SearchSpec"
    )
    autofix_hint = "pass search=SearchSpec(backend=...) instead"
    node_types = (ast.Call,)

    #: callees for which a ``backend=`` keyword IS the new API.
    _NEW_API_CALLEES = {"SearchSpec", "with_backend", "replace"}

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if _in_module(ctx, "repro", "core", "search.py"):
            return
        if ctx.terminal_name(node.func) in self._NEW_API_CALLEES:
            return
        for kw in node.keywords:
            if (
                kw.arg == "backend"
                and isinstance(kw.value, ast.Constant)
                and isinstance(kw.value.value, str)
            ):
                yield self.finding(
                    ctx,
                    kw.value,
                    f"backend={kw.value.value!r} goes through the "
                    "deprecated string shim; pass "
                    "search=SearchSpec(backend=...)",
                )


class ProcessBoundaryRule(Rule):
    """Process management stays inside the serving-cluster subsystem.

    ``multiprocessing`` primitives (``Process``, queues,
    ``shared_memory``) carry sharp lifecycle edges: leaked segments
    survive the interpreter, forked children inherit BLAS thread pools,
    and resource-tracker interactions differ by start method. The repo
    keeps all of that behind :mod:`repro.serve.cluster` /
    :mod:`repro.serve.shard` (and the zero-copy attach helpers in
    :mod:`repro.core.kernels`), so importing ``multiprocessing``
    anywhere else re-opens a boundary the cluster subsystem exists to
    close. The import is the enforcement point — any use starts with
    one, and flagging it avoids alias-chasing.
    """

    rule_id = "REPRO110"
    severity = "error"
    description = (
        "multiprocessing imported outside the serving cluster; process "
        "and shared-memory management belong to repro.serve.cluster"
    )
    autofix_hint = (
        "route process work through repro.serve.cluster / "
        "repro.serve.shard (or extend that subsystem)"
    )
    node_types = (ast.Import, ast.ImportFrom)

    _ALLOWED = (
        ("repro", "serve", "cluster.py"),
        ("repro", "serve", "shard.py"),
        ("repro", "core", "kernels.py"),
    )

    def _allowed(self, ctx: FileContext) -> bool:
        return any(_in_module(ctx, *suffix) for suffix in self._ALLOWED)

    def on_node(self, ctx: FileContext, node: ast.AST) -> Iterator[Finding]:
        if self._allowed(ctx):
            return
        if isinstance(node, ast.Import):
            for alias in node.names:
                if (
                    alias.name == "multiprocessing"
                    or alias.name.startswith("multiprocessing.")
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"import {alias.name} outside the cluster "
                        "subsystem crosses the process-management "
                        "boundary",
                    )
            return
        assert isinstance(node, ast.ImportFrom)
        module = node.module or ""
        if module == "multiprocessing" or module.startswith("multiprocessing."):
            yield self.finding(
                ctx,
                node,
                f"from {module} import ... outside the cluster subsystem "
                "crosses the process-management boundary",
            )


def default_rules() -> List[Rule]:
    """Fresh instances of every built-in rule (engine runs are stateful)."""
    return [
        RngDisciplineRule(),
        AsyncBlockingCallRule(),
        UnawaitedCoroutineRule(),
        PackedDtypeRule(),
        ObsLiteralNameRule(),
        MutableDefaultRule(),
        SilentBroadExceptRule(),
        UnvalidatedArrayApiRule(),
        LegacyBackendStringRule(),
        ProcessBoundaryRule(),
    ]


#: One shared default instance list (suitable for one-shot engine runs).
DEFAULT_RULES: Sequence[Rule] = tuple(default_rules())

#: id -> rule class, for --select / --ignore and the rule table. Spans
#: both the default pack and the dataflow rules (``--flow``).
RULE_INDEX: Dict[str, type] = {
    rule.rule_id: type(rule)
    for rule in (*DEFAULT_RULES, *flow_rules())
}
