"""Render lint findings for humans (text) and tools (JSON)."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Sequence

from repro.analysis.engine import Finding

__all__ = ["render_text", "render_json", "summarize"]


def summarize(findings: Sequence[Finding]) -> Dict[str, object]:
    """Counts by severity and by rule, plus the total."""
    by_severity = Counter(f.severity for f in findings)
    by_rule = Counter(f.rule_id for f in findings)
    return {
        "total": len(findings),
        "by_severity": dict(sorted(by_severity.items())),
        "by_rule": dict(sorted(by_rule.items())),
    }


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: RULE [severity] message`` line per finding.

    Ends with a one-line summary; reports a clean run explicitly so an
    empty result is distinguishable from a crashed one.
    """
    if not findings:
        return "repro lint: no findings"
    lines = [finding.format() for finding in findings]
    summary = summarize(findings)
    by_rule = ", ".join(
        f"{rule}={count}"
        for rule, count in summary["by_rule"].items()  # type: ignore[union-attr]
    )
    lines.append(
        f"repro lint: {summary['total']} finding(s) ({by_rule})"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], indent: int = 2) -> str:
    """Stable machine-readable report (schema version 2).

    Version 2 adds ``end_line`` to every finding and an optional
    ``extra`` object carrying rule-specific evidence (the REPRO111
    interleaving witness, the REPRO113 collision partners).
    """
    payload = {
        "version": 2,
        "summary": summarize(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=indent, sort_keys=False)
