"""Await-boundary dataflow analyses for the serving stack.

PR 8 fixed a real race by hand: ``ServingRuntime._forward`` appended to
``req.charged_path`` *after* ``await queue.put(req)`` — by the time the
producer coroutine resumed, the consumer may already have dequeued the
request and keyed fault-corruption replay off the un-appended path.
Per-node AST matching cannot see that defect class: it lives in the
*order* of a handoff, a suspension point, and a mutation. This module
supplies the machinery that can:

* :func:`build_cfg` — a per-function control-flow graph whose basic
  blocks are split at ``await`` points (any statement containing an
  ``await`` is a block of its own), with ``normal``, ``exception`` and
  ``back`` edge kinds. Exception edges carry the state from *before*
  each statement of the raising block, which encodes the queueing
  contract (``ShedError``/``QueueTimeout`` are raised before the item
  is enqueued, so a failed handoff never escapes the item).
* :func:`solve_forward` — a worklist fixpoint over such a CFG for
  monotone per-name fact maps.
* Three project-wide rules built on top:

  - **REPRO111** (:class:`AwaitBoundaryRaceRule`) — in ``async def``
    bodies under ``repro.serve``, flag mutations of an object that was
    already handed to another task (``queue.put``/``put_nowait``,
    ``asyncio.ensure_future``/``create_task``, or a call into a
    function whose interprocedural *handoff summary* says a parameter
    escapes) once an await boundary has passed. The diagnostic carries
    an interleaving witness: handoff line, the consumer step, and the
    racing mutation line.
  - **REPRO112** (:class:`SharedMemoryWriteRule`) — writes through
    arrays obtained from ``SharedModelStore.attach``/``node_views``/
    ``attach_packed`` (contractually read-only in workers), including
    in-place numpy mutators, ``numpy.copyto``-style writers,
    ``flags.writeable = True`` casts, and training entry points on a
    classifier after ``attach_model``.
  - **REPRO113** (:class:`RngTagCollisionRule`) — whole-program
    collection of ``derive_rng(seed, tag)`` call sites; duplicate
    literal tags, duplicate f-string skeletons, literals that an
    f-string pattern can also produce, and f-strings with adjacent
    holes all silently correlate streams that must stay independent.

Known imprecision (by design, covered by the ``REPRO_SAN=1`` dynamic
sanitizer in :mod:`repro.serve.sanitizer`): aliasing through container
membership (``bucket.append(req)``) is not tracked, mutation inside
helper calls is not summarized, and every ``await`` is treated as a
potential suspension point even when the awaited coroutine completes
synchronously.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.analysis.engine import FileContext, Finding, Rule

__all__ = [
    "NORMAL",
    "EXCEPTION",
    "BACK",
    "BasicBlock",
    "ControlFlowGraph",
    "build_cfg",
    "solve_forward",
    "HandoffSummary",
    "compute_handoff_summaries",
    "AwaitBoundaryRaceRule",
    "SharedMemoryWriteRule",
    "RngTagCollisionRule",
    "flow_rules",
    "FLOW_RULE_IDS",
]

#: CFG edge kinds.
NORMAL = "normal"
EXCEPTION = "exception"
BACK = "back"

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

# getattr keeps the module importable (and type-checkable) on older
# interpreters that lack TryStar (3.11+) / Match (3.10+).
_TRY_TYPES: Tuple[type, ...] = (ast.Try,) + (
    (getattr(ast, "TryStar"),) if hasattr(ast, "TryStar") else ()
)
_MATCH_TYPES: Tuple[type, ...] = (
    (getattr(ast, "Match"),) if hasattr(ast, "Match") else ()
)

_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


# ----------------------------------------------------------------------
# CFG construction
# ----------------------------------------------------------------------
@dataclass
class BasicBlock:
    """A run of statements with no internal suspension point.

    ``statements`` holds the AST nodes the transfer function must
    interpret; compound statements contribute only their *header* (an
    ``ast.For`` node stands for its target binding and iterable read,
    an ``ast.excepthandler`` for its name binding, a synthesized
    ``ast.Expr`` for a branch test) — their bodies live in other
    blocks.
    """

    index: int
    statements: List[ast.AST] = field(default_factory=list)
    #: True when the block is a single await-carrying statement.
    has_await: bool = False
    #: ``(successor_index, kind)`` with kind in NORMAL/EXCEPTION/BACK.
    successors: List[Tuple[int, str]] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """Per-function CFG with await points as basic-block boundaries."""

    function: FunctionNode
    blocks: List[BasicBlock]
    entry: int
    exit: int

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]


def _shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs/classes."""
    stack: List[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, _SCOPE_TYPES):
                continue
            stack.append(child)


def _contains_await(node: ast.AST) -> bool:
    return any(isinstance(n, ast.Await) for n in _shallow_walk(node))


class _CFGBuilder:
    def __init__(self, func: FunctionNode) -> None:
        self.func = func
        self.blocks: List[BasicBlock] = []
        #: (continue_target, break_target) for enclosing loops.
        self.loop_stack: List[Tuple[int, int]] = []
        #: handler-entry blocks of enclosing ``try`` bodies.
        self.handler_stack: List[List[int]] = []
        self.entry = self._new_block()
        self.exit = self._new_block()

    # -- plumbing ------------------------------------------------------
    def _new_block(self) -> int:
        block = BasicBlock(index=len(self.blocks))
        self.blocks.append(block)
        return block.index

    def _edge(self, src: Optional[int], dst: int, kind: str = NORMAL) -> None:
        if src is None:
            return
        pair = (dst, kind)
        if pair not in self.blocks[src].successors:
            self.blocks[src].successors.append(pair)

    def _split(self, cur: int) -> int:
        nxt = self._new_block()
        self._edge(cur, nxt)
        return nxt

    def _exception_edges(self, cur: int) -> None:
        for entries in self.handler_stack:
            for handler_entry in entries:
                self._edge(cur, handler_entry, EXCEPTION)

    def _place(
        self, node: ast.AST, cur: int, has_await: Optional[bool] = None
    ) -> int:
        """Append ``node`` to the open block, isolating await points."""
        if has_await is None:
            has_await = _contains_await(node)
        if has_await:
            if self.blocks[cur].statements:
                cur = self._split(cur)
            self.blocks[cur].statements.append(node)
            self.blocks[cur].has_await = True
            self._exception_edges(cur)
            return self._split(cur)
        self.blocks[cur].statements.append(node)
        self._exception_edges(cur)
        return cur

    def _place_test(self, test: ast.expr, cur: int) -> int:
        synthetic = ast.copy_location(ast.Expr(value=test), test)
        return self._place(synthetic, cur)

    # -- statement dispatch --------------------------------------------
    def _seq(
        self, stmts: Sequence[ast.stmt], cur: Optional[int]
    ) -> Optional[int]:
        for stmt in stmts:
            if cur is None:
                cur = self._new_block()  # unreachable; never gets a state
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, ast.While):
            return self._while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur)
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cur)
        if _MATCH_TYPES and isinstance(stmt, _MATCH_TYPES):
            return self._match(stmt, cur)
        if isinstance(stmt, ast.Return):
            cur = self._place(stmt, cur)
            self._edge(cur, self.exit)
            return None
        if isinstance(stmt, ast.Raise):
            cur = self._place(stmt, cur)
            self._edge(cur, self.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self.loop_stack:
                self._edge(cur, self.loop_stack[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self._edge(cur, self.loop_stack[-1][0], BACK)
            return None
        return self._place(stmt, cur)

    def _if(self, stmt: ast.If, cur: int) -> Optional[int]:
        cur = self._place_test(stmt.test, cur)
        then_entry = self._new_block()
        self._edge(cur, then_entry)
        then_exit = self._seq(stmt.body, then_entry)
        else_exit: Optional[int]
        if stmt.orelse:
            else_entry = self._new_block()
            self._edge(cur, else_entry)
            else_exit = self._seq(stmt.orelse, else_entry)
        else:
            else_exit = cur
        if then_exit is None and else_exit is None:
            return None
        join = self._new_block()
        self._edge(then_exit, join)
        self._edge(else_exit, join)
        return join

    def _while(self, stmt: ast.While, cur: int) -> Optional[int]:
        header = self._split(cur)
        hcur = self._place_test(stmt.test, header)
        after = self._new_block()
        self._edge(hcur, after)
        body_entry = self._new_block()
        self._edge(hcur, body_entry)
        self.loop_stack.append((header, after))
        body_exit = self._seq(stmt.body, body_entry)
        self.loop_stack.pop()
        self._edge(body_exit, header, BACK)
        if stmt.orelse:
            return self._seq(stmt.orelse, after)
        return after

    def _for(self, stmt: Union[ast.For, ast.AsyncFor], cur: int) -> Optional[int]:
        header = self._split(cur)
        has_await = isinstance(stmt, ast.AsyncFor) or _contains_await(stmt.iter)
        hcur = self._place(stmt, header, has_await=has_await)
        after = self._new_block()
        self._edge(hcur, after)
        body_entry = self._new_block()
        self._edge(hcur, body_entry)
        self.loop_stack.append((header, after))
        body_exit = self._seq(stmt.body, body_entry)
        self.loop_stack.pop()
        self._edge(body_exit, header, BACK)
        if stmt.orelse:
            return self._seq(stmt.orelse, after)
        return after

    def _try(self, stmt: Any, cur: int) -> Optional[int]:
        # ``stmt`` is ast.Try or ast.TryStar (absent from 3.10 stubs).
        body_entry = self._new_block()
        self._edge(cur, body_entry)
        handler_entries = [self._new_block() for _ in stmt.handlers]
        self.handler_stack.append(handler_entries)
        body_exit = self._seq(stmt.body, body_entry)
        self.handler_stack.pop()
        # ``else`` runs after the body, outside this try's handlers.
        if stmt.orelse and body_exit is not None:
            body_exit = self._seq(stmt.orelse, body_exit)
        exits: List[Optional[int]] = [body_exit]
        for handler, handler_entry in zip(stmt.handlers, handler_entries):
            hcur = self._place(handler, handler_entry, has_await=False)
            exits.append(self._seq(handler.body, hcur))
        if stmt.finalbody:
            final_entry = self._new_block()
            for exit_block in exits:
                self._edge(exit_block, final_entry)
            return self._seq(stmt.finalbody, final_entry)
        live = [e for e in exits if e is not None]
        if not live:
            return None
        join = self._new_block()
        for exit_block in live:
            self._edge(exit_block, join)
        return join

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], cur: int
    ) -> Optional[int]:
        has_await = isinstance(stmt, ast.AsyncWith) or any(
            _contains_await(item.context_expr) for item in stmt.items
        )
        cur = self._place(stmt, cur, has_await=has_await)
        return self._seq(stmt.body, cur)

    def _match(self, stmt: Any, cur: int) -> Optional[int]:
        # ``stmt`` is ast.Match (absent from the 3.9 stubs mypy uses).
        cur = self._place_test(stmt.subject, cur)
        join = self._new_block()
        self._edge(cur, join)  # no case matched
        for case in stmt.cases:
            case_entry = self._new_block()
            self._edge(cur, case_entry)
            self._edge(self._seq(case.body, case_entry), join)
        return join

    # ------------------------------------------------------------------
    def build(self) -> ControlFlowGraph:
        tail = self._seq(self.func.body, self.entry)
        self._edge(tail, self.exit)
        return ControlFlowGraph(
            function=self.func,
            blocks=self.blocks,
            entry=self.entry,
            exit=self.exit,
        )


def build_cfg(func: FunctionNode) -> ControlFlowGraph:
    """Build the await-aware CFG of one function definition."""
    return _CFGBuilder(func).build()


# ----------------------------------------------------------------------
# Generic forward worklist solver
# ----------------------------------------------------------------------
#: A dataflow state: tracked local name -> analysis-specific fact.
State = Dict[str, object]

#: transfer(block, in_state) -> (normal_out, exception_out)
TransferFn = Callable[[BasicBlock, State], Tuple[State, State]]

#: merge two facts for the same name at a join point.
FactMerge = Callable[[object, object], object]


def merge_states(a: State, b: State, merge_fact: FactMerge) -> State:
    """Key-wise union of two states (facts merged on collision)."""
    merged = dict(a)
    for name, fact in b.items():
        existing = merged.get(name)
        merged[name] = fact if existing is None else merge_fact(existing, fact)
    return merged


def solve_forward(
    cfg: ControlFlowGraph,
    entry_state: State,
    transfer: TransferFn,
    merge_fact: FactMerge,
) -> Dict[int, State]:
    """Worklist fixpoint; returns the IN state of every reached block.

    Facts must be monotone under ``merge_fact`` (the iteration count is
    additionally bounded, so a non-monotone transfer degrades to an
    under-approximation instead of hanging).
    """
    in_states: Dict[int, State] = {cfg.entry: entry_state}
    pending: deque[int] = deque([cfg.entry])
    budget = 64 * max(len(cfg.blocks), 1)
    while pending and budget > 0:
        budget -= 1
        index = pending.popleft()
        block = cfg.blocks[index]
        out_normal, out_exception = transfer(block, in_states[index])
        for successor, kind in block.successors:
            incoming = out_exception if kind == EXCEPTION else out_normal
            old = in_states.get(successor)
            new = (
                incoming
                if old is None
                else merge_states(old, incoming, merge_fact)
            )
            if old is None or new != old:
                in_states[successor] = new
                if successor not in pending:
                    pending.append(successor)
    return in_states


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def _snippet(node: ast.AST, limit: int = 60) -> str:
    try:
        text = ast.unparse(node)
    except (ValueError, AttributeError):  # pragma: no cover - synthetic nodes
        text = type(node).__name__
    text = " ".join(text.split())
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _base_name(expr: ast.expr) -> Tuple[Optional[str], bool]:
    """Root ``Name`` of an attribute/subscript chain, + subscript flag."""
    through_subscript = False
    node: ast.expr = expr
    while True:
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            through_subscript = True
            node = node.value
        else:
            break
    if isinstance(node, ast.Name):
        return node.id, through_subscript
    return None, through_subscript


def _target_names(target: ast.expr) -> List[str]:
    """Plain names bound by an assignment/loop target."""
    names: List[str] = []
    stack: List[ast.expr] = [target]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
    return names


def _calls_in(node: ast.AST) -> Iterator[ast.Call]:
    for sub in _shallow_walk(node):
        if isinstance(sub, ast.Call):
            yield sub


def _awaited_call_ids(node: ast.AST) -> Set[int]:
    return {
        id(sub.value)
        for sub in _shallow_walk(node)
        if isinstance(sub, ast.Await) and isinstance(sub.value, ast.Call)
    }


def _under(ctx: FileContext, *segments: str) -> bool:
    """True when ``ctx.path`` contains the given directory run."""
    parts = ctx.path.replace("\\", "/").split("/")
    n = len(segments)
    return any(
        parts[i : i + n] == list(segments)
        for i in range(len(parts) - n + 1)
    )


def _functions(tree: ast.Module) -> Iterator[FunctionNode]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# Interprocedural handoff summaries
# ----------------------------------------------------------------------
#: escape kinds, ordered: "whole" implies "elements".
_WHOLE = "whole"
_ELEMENTS = "elements"

_QUEUE_HANDOFFS = frozenset({"put", "put_nowait"})
_TASK_SPAWNS = frozenset({"ensure_future", "create_task"})


@dataclass(frozen=True)
class HandoffSummary:
    """Which parameters of a function escape to another task.

    ``escaping`` maps a parameter name to ``"whole"`` (the object
    itself is handed off) or ``"elements"`` (its members are — mutating
    the container stays safe, mutating a member races).
    """

    name: str
    params: Tuple[str, ...]
    escaping: Mapping[str, str]


def _param_names(func: FunctionNode) -> Tuple[str, ...]:
    args = func.args
    ordered = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    return tuple(a.arg for a in ordered)


def _merge_kind(a: Optional[str], b: str) -> str:
    return _WHOLE if _WHOLE in (a, b) else _ELEMENTS


def _bind_call_args(
    call: ast.Call, summary: HandoffSummary
) -> Dict[str, ast.expr]:
    """Map call arguments onto the summary's parameter names."""
    params = list(summary.params)
    if (
        isinstance(call.func, ast.Attribute)
        and params
        and params[0] in ("self", "cls")
    ):
        params = params[1:]
    bound: Dict[str, ast.expr] = {}
    for i, arg in enumerate(call.args):
        if isinstance(arg, ast.Starred):
            break
        if i < len(params):
            bound[params[i]] = arg
    for keyword in call.keywords:
        if keyword.arg:
            bound[keyword.arg] = keyword.value
    return bound


def _direct_handoffs(
    call: ast.Call,
) -> Optional[Tuple[List[ast.expr], str]]:
    """Escaping argument expressions of a built-in handoff call.

    Returns ``(escaping_args, consumer_description)`` or ``None``.
    """
    terminal = FileContext.terminal_name(call.func)
    if terminal in _QUEUE_HANDOFFS and isinstance(call.func, ast.Attribute):
        return list(call.args), "the queue consumer"
    if terminal in _TASK_SPAWNS and call.args:
        inner = call.args[0]
        if isinstance(inner, ast.Call):
            args = list(inner.args) + [
                kw.value for kw in inner.keywords if kw.arg
            ]
            return args, "the spawned task"
        return [inner], "the spawned task"
    return None


def _summary_handoffs(
    call: ast.Call, summaries: Mapping[str, HandoffSummary]
) -> List[Tuple[ast.expr, str]]:
    """``(escaping_arg, kind)`` pairs for a call into a summarized fn."""
    terminal = FileContext.terminal_name(call.func)
    if terminal is None or terminal not in summaries:
        return []
    summary = summaries[terminal]
    bound = _bind_call_args(call, summary)
    return [
        (bound[param], kind)
        for param, kind in summary.escaping.items()
        if param in bound
    ]


def _function_escapes(
    func: FunctionNode, summaries: Mapping[str, HandoffSummary]
) -> Dict[str, str]:
    """Flow-insensitive escaping-parameter set of one function.

    Local names reaching a handoff propagate backwards through simple
    aliases (``a = b``) and loop membership (``for x in c`` makes an
    escape of ``x`` an *elements* escape of ``c``).
    """
    escaped: Dict[str, str] = {}

    def mark(expr: ast.expr, kind: str) -> None:
        if isinstance(expr, ast.Name):
            escaped[expr.id] = _merge_kind(escaped.get(expr.id), kind)

    aliases: List[Tuple[str, str]] = []  # (target, source): target = source
    members: List[Tuple[str, str]] = []  # (item, container): for item in c
    for node in _shallow_walk(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Name):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    aliases.append((target.id, node.value.id))
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if isinstance(node.target, ast.Name) and isinstance(
                node.iter, ast.Name
            ):
                members.append((node.target.id, node.iter.id))
        elif isinstance(node, ast.Call):
            direct = _direct_handoffs(node)
            if direct is not None:
                for arg in direct[0]:
                    mark(arg, _WHOLE)
            for arg, kind in _summary_handoffs(node, summaries):
                mark(arg, kind)
    # Backward propagation to a fixpoint (tiny graphs; bounded passes).
    for _ in range(len(aliases) + len(members) + 1):
        changed = False
        for target, source in aliases:
            if target in escaped:
                merged = _merge_kind(escaped.get(source), escaped[target])
                if escaped.get(source) != merged:
                    escaped[source] = merged
                    changed = True
        for item, container in members:
            if item in escaped and escaped.get(container) != _merge_kind(
                escaped.get(container), _ELEMENTS
            ):
                escaped[container] = _merge_kind(
                    escaped.get(container), _ELEMENTS
                )
                changed = True
        if not changed:
            break
    params = _param_names(func)
    return {p: escaped[p] for p in params if p in escaped}


def compute_handoff_summaries(
    contexts: Sequence[FileContext],
) -> Dict[str, HandoffSummary]:
    """Fixpoint handoff summaries for every function in the project.

    Keyed by bare function name (same-named functions merge their
    escaping sets — conservative for the analysis). Only functions
    with at least one escaping parameter appear.
    """
    funcs: List[FunctionNode] = []
    for ctx in contexts:
        funcs.extend(_functions(ctx.tree))
    summaries: Dict[str, HandoffSummary] = {}
    for _ in range(10):
        changed = False
        for func in funcs:
            escaping = _function_escapes(func, summaries)
            if not escaping:
                continue
            existing = summaries.get(func.name)
            if existing is not None:
                merged = dict(existing.escaping)
                for param, kind in escaping.items():
                    merged[param] = _merge_kind(merged.get(param), kind)
                escaping = merged
            if existing is None or dict(existing.escaping) != escaping:
                summaries[func.name] = HandoffSummary(
                    name=func.name,
                    params=(
                        existing.params
                        if existing is not None
                        else _param_names(func)
                    ),
                    escaping=escaping,
                )
                changed = True
        if not changed:
            break
    return summaries


# ----------------------------------------------------------------------
# REPRO111 — await-boundary race
# ----------------------------------------------------------------------
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "add",
        "discard",
        "popitem",
        "setdefault",
        "sort",
        "reverse",
        "fill",
    }
)


@dataclass(frozen=True)
class EscapeFact:
    """A local name whose object another task may already hold."""

    line: int
    handoff: str
    consumer: str
    #: True once a suspension point passed since the handoff — only
    #: then can the consumer actually have interleaved.
    crossed: bool
    #: the object itself escaped (vs. only its members).
    whole: bool
    elements: bool


def _merge_escape(a: object, b: object) -> object:
    fa, fb = a, b
    assert isinstance(fa, EscapeFact) and isinstance(fb, EscapeFact)
    first = fa if fa.line <= fb.line else fb
    return EscapeFact(
        line=first.line,
        handoff=first.handoff,
        consumer=first.consumer,
        crossed=fa.crossed or fb.crossed,
        whole=fa.whole or fb.whole,
        elements=fa.elements or fb.elements,
    )


#: (node, base_name, through_subscript, description)
_Mutation = Tuple[ast.AST, str, bool, str]


def _mutations(stmt: ast.AST) -> Iterator[_Mutation]:
    """Attribute/subscript stores, aug-assigns and mutating calls."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, ast.AnnAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    for target in targets:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            base, through = _base_name(target)
            if base is not None:
                yield target, base, through, _snippet(stmt)
        elif isinstance(target, ast.Name) and isinstance(stmt, ast.AugAssign):
            yield target, target.id, False, _snippet(stmt)
    for call in _calls_in(stmt):
        func = call.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATING_METHODS:
            base, through = _base_name(func.value)
            if base is not None:
                yield call, base, through, _snippet(call)


#: report(node, name, description, fact)
_RaceSink = Callable[[ast.AST, str, str, EscapeFact], None]


class _EscapeAnalysis:
    """Forward escape analysis of one ``async def`` body."""

    def __init__(
        self, ctx: FileContext, summaries: Mapping[str, HandoffSummary]
    ) -> None:
        self.ctx = ctx
        self.summaries = summaries

    # -- per-statement transfer ----------------------------------------
    def _escapes_of(
        self, stmt: ast.AST
    ) -> List[Tuple[str, str, ast.Call, bool]]:
        """``(name, kind, call, awaited)`` handoffs inside ``stmt``."""
        awaited = _awaited_call_ids(stmt)
        out: List[Tuple[str, str, ast.Call, bool]] = []
        for call in _calls_in(stmt):
            direct = _direct_handoffs(call)
            if direct is not None:
                for arg in direct[0]:
                    if isinstance(arg, ast.Name):
                        out.append(
                            (arg.id, _WHOLE, call, id(call) in awaited)
                        )
            for arg, kind in _summary_handoffs(call, self.summaries):
                if isinstance(arg, ast.Name):
                    out.append((arg.id, kind, call, id(call) in awaited))
        return out

    def _consumer_of(self, call: ast.Call) -> str:
        direct = _direct_handoffs(call)
        if direct is not None:
            return direct[1]
        terminal = FileContext.terminal_name(call.func)
        return f"the task receiving `{terminal}`'s handoff"

    def _bindings(self, state: State, stmt: ast.AST) -> None:
        if isinstance(stmt, ast.Assign):
            source = (
                stmt.value.id if isinstance(stmt.value, ast.Name) else None
            )
            for target in stmt.targets:
                if isinstance(target, ast.Name) and source in state:
                    state[target.id] = state[source]
                    continue
                for name in _target_names(target):
                    state.pop(name, None)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                state.pop(stmt.target.id, None)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            container_fact: Optional[EscapeFact] = None
            if isinstance(stmt.iter, ast.Name):
                fact = state.get(stmt.iter.id)
                if isinstance(fact, EscapeFact) and (
                    fact.whole or fact.elements
                ):
                    container_fact = fact
            for name in _target_names(stmt.target):
                if container_fact is not None:
                    # members of a handed-off container are themselves
                    # visible to the consumer.
                    state[name] = replace(
                        container_fact, whole=True, elements=True
                    )
                else:
                    state.pop(name, None)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        state.pop(name, None)
        elif isinstance(stmt, ast.excepthandler):
            handler_name = getattr(stmt, "name", None)
            if isinstance(handler_name, str):
                state.pop(handler_name, None)
        elif isinstance(stmt, _SCOPE_TYPES):
            state.pop(getattr(stmt, "name", ""), None)

    def _effect_nodes(self, stmt: ast.AST) -> List[ast.AST]:
        """Sub-nodes whose calls/mutations this block owns.

        Compound headers contribute only their header expressions;
        their bodies live in other blocks.
        """
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return [stmt.iter]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return [item.context_expr for item in stmt.items]
        if isinstance(stmt, (ast.excepthandler,) + _SCOPE_TYPES):
            return []
        return [stmt]

    def transfer(
        self,
        block: BasicBlock,
        in_state: State,
        report: Optional[_RaceSink] = None,
    ) -> Tuple[State, State]:
        state: State = dict(in_state)
        exception_state: State = dict(in_state)
        for stmt in block.statements:
            # exception edges carry the union of *pre*-statement states:
            # a handoff that raised never surrendered its item.
            exception_state = merge_states(
                exception_state, state, _merge_escape
            )
            effects = self._effect_nodes(stmt)
            if report is not None:
                for node in effects:
                    for mut_node, base, through, desc in _mutations(node):
                        fact = state.get(base)
                        if not isinstance(fact, EscapeFact) or not fact.crossed:
                            continue
                        if fact.whole or (fact.elements and through):
                            report(mut_node, base, desc, fact)
            self._bindings(state, stmt)
            for node in effects:
                for name, kind, call, was_awaited in self._escapes_of(node):
                    fact = EscapeFact(
                        line=call.lineno,
                        handoff=_snippet(call),
                        consumer=self._consumer_of(call),
                        crossed=was_awaited,
                        whole=kind == _WHOLE,
                        elements=True,
                    )
                    existing = state.get(name)
                    state[name] = (
                        fact
                        if existing is None
                        else _merge_escape(existing, fact)
                    )
            if any(_contains_await(node) for node in effects) or (
                isinstance(stmt, (ast.AsyncFor, ast.AsyncWith))
            ):
                state = {
                    name: replace(fact, crossed=True)
                    for name, fact in state.items()
                    if isinstance(fact, EscapeFact)
                }
        return state, exception_state

    # -- driver --------------------------------------------------------
    def analyze(self, func: ast.AsyncFunctionDef) -> List[Finding]:
        cfg = build_cfg(func)
        in_states = solve_forward(
            cfg,
            entry_state={},
            transfer=lambda block, state: self.transfer(block, state),
            merge_fact=_merge_escape,
        )
        findings: List[Finding] = []
        seen: Set[Tuple[int, int, str]] = set()

        def report(
            node: ast.AST, name: str, desc: str, fact: EscapeFact
        ) -> None:
            line = getattr(node, "lineno", func.lineno)
            col = getattr(node, "col_offset", 0)
            if (line, col, name) in seen:
                return
            seen.add((line, col, name))
            witness = [
                {
                    "step": 1,
                    "task": "this coroutine",
                    "line": fact.line,
                    "event": f"hands `{name}` off: {fact.handoff}",
                },
                {
                    "step": 2,
                    "task": fact.consumer,
                    "line": None,
                    "event": (
                        f"may run at the await boundary and read `{name}`"
                    ),
                },
                {
                    "step": 3,
                    "task": "this coroutine",
                    "line": line,
                    "event": f"resumes and mutates: {desc}",
                },
            ]
            rule = AwaitBoundaryRaceRule
            findings.append(
                Finding(
                    path=self.ctx.path,
                    line=line,
                    col=col,
                    rule_id=rule.rule_id,
                    severity=rule.severity,
                    message=(
                        f"`{desc}` mutates `{name}` after it was handed "
                        f"off at line {fact.line} (`{fact.handoff}`); "
                        f"{fact.consumer} may have observed the "
                        f"pre-mutation state (witness: handoff@L"
                        f"{fact.line} -> consumer reads -> mutate@L{line})"
                    ),
                    autofix_hint=rule.autofix_hint,
                    end_line=getattr(node, "end_lineno", 0) or 0,
                    extra={"witness": witness},
                )
            )

        for index, in_state in in_states.items():
            self.transfer(cfg.blocks[index], in_state, report=report)
        return findings


class AwaitBoundaryRaceRule(Rule):
    """REPRO111: shared-state mutation after an await-boundary handoff.

    Only ``async def`` bodies under ``repro.serve`` are analyzed — the
    single-event-loop serving runtime is where a consumer coroutine
    can interleave between a handoff and a late mutation.
    """

    rule_id = "REPRO111"
    severity = "error"
    description = (
        "in repro.serve coroutines, objects handed to another task "
        "(queue.put / ensure_future / summarized handoffs) must not be "
        "mutated after an await boundary"
    )
    autofix_hint = (
        "mutate before the handoff and undo on a failed handoff, or "
        "hand off an immutable snapshot"
    )
    node_types = ()

    def finish_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        summaries = compute_handoff_summaries(contexts)
        for ctx in contexts:
            if not _under(ctx, "repro", "serve"):
                continue
            analysis = _EscapeAnalysis(ctx, summaries)
            for func in _functions(ctx.tree):
                if isinstance(func, ast.AsyncFunctionDef):
                    yield from analysis.analyze(func)


# ----------------------------------------------------------------------
# REPRO112 — writes through shared-memory model views
# ----------------------------------------------------------------------
#: calls whose result is an attached (read-only) shared view.
_TAINT_SOURCES = frozenset({"attach", "node_views", "attach_packed"})

#: in-place ndarray methods that write through the buffer.
_NDARRAY_WRITERS = frozenset(
    {"fill", "sort", "partition", "put", "itemset", "resize", "setfield"}
)

#: numpy module-level writers: terminal name -> written arg index.
_NUMPY_WRITERS = {"copyto": 0, "put": 0, "place": 0, "putmask": 0}

#: repo kernel writers: terminal name -> written arg index.
_KERNEL_WRITERS = {"pack_bits_into": 1}

#: training entry points that write through an attached model.
_TRAINING_CALLS = frozenset(
    {"fit_initial", "retrain", "update", "set_model", "binarize_model"}
)


@dataclass(frozen=True)
class TaintFact:
    """A name holding (a view into) attached shared-memory state."""

    line: int
    origin: str
    #: receiver of ``attach_model`` — a serve-only classifier.
    attached_model: bool = False


def _merge_taint(a: object, b: object) -> object:
    fa, fb = a, b
    assert isinstance(fa, TaintFact) and isinstance(fb, TaintFact)
    first = fa if fa.line <= fb.line else fb
    return TaintFact(
        line=first.line,
        origin=first.origin,
        attached_model=fa.attached_model or fb.attached_model,
    )


class _TaintAnalysis:
    """Per-function taint of shared-memory views and attached models."""

    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []
        self._seen: Set[Tuple[int, int]] = set()

    # -- helpers -------------------------------------------------------
    def _source_call(self, node: ast.expr) -> Optional[str]:
        if not isinstance(node, ast.Call):
            return None
        terminal = FileContext.terminal_name(node.func)
        if terminal in _TAINT_SOURCES:
            return terminal
        return None

    def _tainted_base(
        self, state: State, expr: ast.expr
    ) -> Optional[Tuple[str, TaintFact]]:
        base, _ = _base_name(expr)
        if base is None:
            return None
        fact = state.get(base)
        if isinstance(fact, TaintFact):
            return base, fact
        return None

    def _report(
        self, node: ast.AST, message: str, fact: TaintFact
    ) -> None:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        if (line, col) in self._seen:
            return
        self._seen.add((line, col))
        rule = SharedMemoryWriteRule
        self.findings.append(
            Finding(
                path=self.ctx.path,
                line=line,
                col=col,
                rule_id=rule.rule_id,
                severity=rule.severity,
                message=(
                    f"{message} (view obtained from `{fact.origin}` at "
                    f"line {fact.line}; shared model replicas are "
                    f"read-only in workers)"
                ),
                autofix_hint=rule.autofix_hint,
                end_line=getattr(node, "end_lineno", 0) or 0,
            )
        )

    # -- transfer ------------------------------------------------------
    def _check_writes(self, state: State, stmt: ast.AST) -> None:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, ast.AugAssign):
            targets = [stmt.target]
        for target in targets:
            if isinstance(target, ast.Subscript) or (
                isinstance(stmt, ast.AugAssign)
                and isinstance(target, (ast.Attribute, ast.Name))
            ):
                hit = self._tainted_base(state, target)
                if hit is not None:
                    self._report(
                        target,
                        f"`{_snippet(stmt)}` writes through a shared-"
                        f"memory view `{hit[0]}`",
                        hit[1],
                    )
            if (
                isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is True
            ):
                hit = self._tainted_base(state, target)
                if hit is not None:
                    self._report(
                        target,
                        f"`{_snippet(stmt)}` strips the read-only guard "
                        f"from shared view `{hit[0]}`",
                        hit[1],
                    )
        for call in _calls_in(stmt):
            func = call.func
            terminal = FileContext.terminal_name(func)
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _NDARRAY_WRITERS
            ):
                hit = self._tainted_base(state, func.value)
                if hit is not None:
                    self._report(
                        call,
                        f"in-place `{func.attr}()` on shared view "
                        f"`{hit[0]}`",
                        hit[1],
                    )
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "setflags"
                and any(
                    kw.arg == "write"
                    and isinstance(kw.value, ast.Constant)
                    and bool(kw.value.value)
                    for kw in call.keywords
                )
            ):
                hit = self._tainted_base(state, func.value)
                if hit is not None:
                    self._report(
                        call,
                        f"`setflags(write=True)` strips the read-only "
                        f"guard from shared view `{hit[0]}`",
                        hit[1],
                    )
            arg_index: Optional[int] = None
            if terminal in _NUMPY_WRITERS:
                dotted = self.ctx.dotted_name(func)
                if dotted is not None and dotted.startswith("numpy."):
                    arg_index = _NUMPY_WRITERS[terminal]
            elif terminal in _KERNEL_WRITERS:
                arg_index = _KERNEL_WRITERS[terminal]
            if arg_index is not None and arg_index < len(call.args):
                hit = self._tainted_base(state, call.args[arg_index])
                if hit is not None:
                    self._report(
                        call,
                        f"`{terminal}()` writes into shared view "
                        f"`{hit[0]}`",
                        hit[1],
                    )
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _TRAINING_CALLS
            ):
                hit = self._tainted_base(state, func.value)
                if hit is not None and hit[1].attached_model:
                    self._report(
                        call,
                        f"training call `{func.attr}()` on `{hit[0]}` "
                        f"after `attach_model` would write through the "
                        f"attached views",
                        hit[1],
                    )

    def _bindings(self, state: State, stmt: ast.AST) -> None:
        if isinstance(stmt, ast.Assign):
            origin = self._source_call(stmt.value)
            propagated: Optional[TaintFact] = None
            if origin is None and isinstance(
                stmt.value, (ast.Name, ast.Attribute, ast.Subscript)
            ):
                hit = self._tainted_base(state, stmt.value)
                if hit is not None:
                    propagated = hit[1]
            for target in stmt.targets:
                names = _target_names(target)
                for name in names:
                    if origin is not None:
                        state[name] = TaintFact(
                            line=stmt.value.lineno, origin=origin
                        )
                    elif propagated is not None and isinstance(
                        target, ast.Name
                    ):
                        state[name] = propagated
                    else:
                        state.pop(name, None)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            state.pop(stmt.target.id, None)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            for name in _target_names(stmt.target):
                state.pop(name, None)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    for name in _target_names(item.optional_vars):
                        state.pop(name, None)
        # Receiver of attach_model becomes a serve-only classifier.
        for call in _calls_in(stmt):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr == "attach_model":
                base, _ = _base_name(func.value)
                if base is not None:
                    existing = state.get(base)
                    line = (
                        existing.line
                        if isinstance(existing, TaintFact)
                        else call.lineno
                    )
                    state[base] = TaintFact(
                        line=line, origin="attach_model", attached_model=True
                    )

    def transfer(
        self, block: BasicBlock, in_state: State, check: bool = False
    ) -> Tuple[State, State]:
        state: State = dict(in_state)
        exception_state: State = dict(in_state)
        for stmt in block.statements:
            exception_state = merge_states(
                exception_state, state, _merge_taint
            )
            if check and not isinstance(
                stmt, (ast.excepthandler,) + _SCOPE_TYPES
            ):
                self._check_writes(state, stmt)
            if not isinstance(stmt, (ast.excepthandler,) + _SCOPE_TYPES):
                self._bindings(state, stmt)
        return state, exception_state

    def analyze(self, func: FunctionNode) -> List[Finding]:
        cfg = build_cfg(func)
        in_states = solve_forward(
            cfg,
            entry_state={},
            transfer=lambda block, state: self.transfer(block, state),
            merge_fact=_merge_taint,
        )
        self.findings = []
        self._seen = set()
        for index, in_state in in_states.items():
            self.transfer(cfg.blocks[index], in_state, check=True)
        return self.findings


class SharedMemoryWriteRule(Rule):
    """REPRO112: writes through attached shared-memory model views."""

    rule_id = "REPRO112"
    severity = "error"
    description = (
        "arrays obtained from SharedModelStore.attach / node_views / "
        "attach_packed are read-only shared replicas; no subscript "
        "store, in-place mutator, writeable cast or training call may "
        "write through them"
    )
    autofix_hint = (
        "copy() the view before mutating, or publish a new store "
        "generation from the owner"
    )
    node_types = ()

    def finish_file(self, ctx: FileContext) -> Iterator[Finding]:
        for func in _functions(ctx.tree):
            yield from _TaintAnalysis(ctx).analyze(func)


# ----------------------------------------------------------------------
# REPRO113 — derive_rng tag collisions
# ----------------------------------------------------------------------
#: marker standing for one interpolation hole in an f-string tag.
_HOLE = "\x00"


@dataclass(frozen=True)
class _TagSite:
    path: str
    line: int
    col: int
    end_line: int
    #: literal text, with holes as :data:`_HOLE` for f-strings.
    pattern: str
    is_fstring: bool
    display: str

    def location(self) -> str:
        return f"{self.path}:{self.line}"


def _tag_expression(call: ast.Call) -> Optional[ast.expr]:
    if len(call.args) >= 2 and not isinstance(call.args[1], ast.Starred):
        return call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "tag":
            return keyword.value
    return None


def _tag_site(ctx: FileContext, call: ast.Call) -> Optional[_TagSite]:
    expr = _tag_expression(call)
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return _TagSite(
            path=ctx.path,
            line=call.lineno,
            col=call.col_offset,
            end_line=getattr(call, "end_lineno", 0) or 0,
            pattern=expr.value,
            is_fstring=False,
            display=repr(expr.value),
        )
    if isinstance(expr, ast.JoinedStr):
        parts: List[str] = []
        for value in expr.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                parts.append(value.value)
            else:
                parts.append(_HOLE)
        return _TagSite(
            path=ctx.path,
            line=call.lineno,
            col=call.col_offset,
            end_line=getattr(call, "end_lineno", 0) or 0,
            pattern="".join(parts),
            is_fstring=True,
            display=_snippet(expr),
        )
    # Dynamic tags (plain names, calls) are deliberately not compared:
    # their values are unknowable statically and flagging every helper
    # wrapper would drown the signal.
    return None


def _skeleton_matches(skeleton: str, literal: str) -> bool:
    """Can the f-string ``skeleton`` produce ``literal``?"""
    chunks = skeleton.split(_HOLE)
    if len(chunks) == 1:
        return skeleton == literal
    text = literal
    head = chunks[0]
    if not text.startswith(head):
        return False
    text = text[len(head):]
    tail = chunks[-1]
    for chunk in chunks[1:-1]:
        if chunk == "":
            continue
        at = text.find(chunk)
        if at < 0:
            return False
        text = text[at + len(chunk):]
    return text.endswith(tail) if tail else True


class RngTagCollisionRule(Rule):
    """REPRO113: colliding ``derive_rng(seed, tag)`` tag expressions.

    Two call sites drawing from the same ``(seed, tag)`` pair observe
    the *same* stream — chaos decisions, workload arrivals and dataset
    splits silently correlate, which breaks the independent-stream
    contract :func:`repro.utils.rng.derive_rng` exists to provide.
    """

    rule_id = "REPRO113"
    severity = "error"
    description = (
        "derive_rng tags must be unique per logical stream: duplicate "
        "literals, duplicate f-string skeletons, literal/f-string "
        "overlaps and separator-free interpolations all correlate "
        "streams"
    )
    autofix_hint = (
        "give each call site a distinct tag prefix (and separate "
        "interpolated fields with literal separators)"
    )
    node_types = ()

    def _finding(
        self, site: _TagSite, message: str, others: Sequence[_TagSite]
    ) -> Finding:
        extra: Dict[str, object] = {
            "tag": site.display,
            "collides_with": [o.location() for o in others],
        }
        return Finding(
            path=site.path,
            line=site.line,
            col=site.col,
            rule_id=self.rule_id,
            severity=self.severity,
            message=message,
            autofix_hint=self.autofix_hint,
            end_line=site.end_line,
            extra=extra,
        )

    def finish_project(
        self, contexts: Sequence[FileContext]
    ) -> Iterator[Finding]:
        sites: List[_TagSite] = []
        for ctx in contexts:
            for call in (
                n for n in ast.walk(ctx.tree) if isinstance(n, ast.Call)
            ):
                if FileContext.terminal_name(call.func) != "derive_rng":
                    continue
                site = _tag_site(ctx, call)
                if site is not None:
                    sites.append(site)
        # (a)+(b): identical patterns (literal or skeleton) at >= 2 sites.
        by_pattern: Dict[Tuple[bool, str], List[_TagSite]] = {}
        for site in sites:
            by_pattern.setdefault(
                (site.is_fstring, site.pattern), []
            ).append(site)
        for (is_fstring, _), group in sorted(
            by_pattern.items(), key=lambda kv: kv[0][1]
        ):
            distinct = {(s.path, s.line) for s in group}
            if len(distinct) < 2:
                continue
            kind = "f-string skeleton" if is_fstring else "literal tag"
            for site in group:
                others = [
                    o
                    for o in group
                    if (o.path, o.line) != (site.path, site.line)
                ]
                yield self._finding(
                    site,
                    f"duplicate {kind} {site.display} also used at "
                    f"{', '.join(o.location() for o in others)}: both "
                    f"sites draw the same stream under one seed",
                    others,
                )
        # (c): a literal an f-string skeleton can also produce.
        fstrings = [s for s in sites if s.is_fstring]
        for site in sites:
            if site.is_fstring:
                continue
            overlaps = [
                f
                for f in fstrings
                if _skeleton_matches(f.pattern, site.pattern)
            ]
            if overlaps:
                yield self._finding(
                    site,
                    f"literal tag {site.display} is also producible by "
                    f"the f-string tag at "
                    f"{', '.join(o.location() for o in overlaps)}: the "
                    f"streams can silently coincide",
                    overlaps,
                )
        # (d): adjacent interpolation holes inside one f-string.
        for site in fstrings:
            if _HOLE * 2 in site.pattern:
                yield self._finding(
                    site,
                    f"f-string tag {site.display} interpolates two "
                    f"fields with no separator: distinct argument "
                    f"pairs can render the same tag",
                    [],
                )


# ----------------------------------------------------------------------
def flow_rules() -> List[Rule]:
    """Fresh instances of the dataflow rules (``repro lint --flow``)."""
    return [
        AwaitBoundaryRaceRule(),
        SharedMemoryWriteRule(),
        RngTagCollisionRule(),
    ]


#: ids of the dataflow rules, for CLI gating.
FLOW_RULE_IDS: Tuple[str, ...] = tuple(
    rule.rule_id for rule in flow_rules()
)
