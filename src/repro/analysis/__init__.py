"""Static analysis for the EdgeHD reproduction: ``repro lint``.

A small pluggable AST lint engine (:mod:`repro.analysis.engine`) plus
the repo-specific rules (:mod:`repro.analysis.rules`) that pin the
conventions the reproduction's guarantees rest on — RNG discipline,
asyncio hygiene in the serving runtime, packed-payload dtype
contracts, greppable metric names, and defensive API hygiene.

Run it from the command line::

    repro lint src/                 # humans
    repro lint src/ --format json   # tools
    repro lint src/ --select REPRO101,REPRO105
    repro lint --list-rules

or programmatically::

    from repro.analysis import lint_paths
    findings = lint_paths(["src"])

``tests/test_analysis_selfcheck.py`` runs the engine over ``src/`` as
a tier-1 smoke: the repository itself must stay finding-free.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from repro.analysis.engine import (
    PARSE_ERROR_ID,
    SEVERITIES,
    FileContext,
    Finding,
    LintEngine,
    Rule,
)
from repro.analysis.flow import (
    FLOW_RULE_IDS,
    AwaitBoundaryRaceRule,
    ControlFlowGraph,
    RngTagCollisionRule,
    SharedMemoryWriteRule,
    build_cfg,
    flow_rules,
)
from repro.analysis.reporters import render_json, render_text, summarize
from repro.analysis.rules import (
    DEFAULT_RULES,
    RULE_INDEX,
    AsyncBlockingCallRule,
    LegacyBackendStringRule,
    MutableDefaultRule,
    ObsLiteralNameRule,
    PackedDtypeRule,
    RngDisciplineRule,
    SilentBroadExceptRule,
    UnawaitedCoroutineRule,
    UnvalidatedArrayApiRule,
    default_rules,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintEngine",
    "Rule",
    "PARSE_ERROR_ID",
    "SEVERITIES",
    "DEFAULT_RULES",
    "RULE_INDEX",
    "FLOW_RULE_IDS",
    "default_rules",
    "flow_rules",
    "build_cfg",
    "ControlFlowGraph",
    "select_rules",
    "lint_paths",
    "lint_source",
    "render_text",
    "render_json",
    "summarize",
    "RngDisciplineRule",
    "AsyncBlockingCallRule",
    "UnawaitedCoroutineRule",
    "PackedDtypeRule",
    "ObsLiteralNameRule",
    "MutableDefaultRule",
    "SilentBroadExceptRule",
    "UnvalidatedArrayApiRule",
    "LegacyBackendStringRule",
    "AwaitBoundaryRaceRule",
    "SharedMemoryWriteRule",
    "RngTagCollisionRule",
]


def select_rules(
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> List[Rule]:
    """Instantiate the default rules filtered by id.

    ``select`` keeps only the named rules; ``ignore`` drops the named
    ones; both accept ids case-insensitively. Unknown ids raise so a
    typo cannot silently disable enforcement. ``flow=True`` adds the
    dataflow rules (REPRO111-113); naming a dataflow rule in
    ``select`` enables it without the flag.
    """
    known = {rid.upper() for rid in RULE_INDEX}
    for group in (select or []), (ignore or []):
        unknown = {rid.upper() for rid in group} - known
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {sorted(unknown)}; known: {sorted(known)}"
            )
    pool = default_rules()
    if flow or select:
        pool.extend(flow_rules())
    keep = {rid.upper() for rid in select} if select else known
    if select is None and not flow:
        keep -= set(FLOW_RULE_IDS)
    drop = {rid.upper() for rid in ignore} if ignore else set()
    return [
        rule for rule in pool
        if rule.rule_id in keep and rule.rule_id not in drop
    ]


def lint_paths(
    paths: Iterable[Union[str, "object"]],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    flow: bool = False,
) -> List[Finding]:
    """Lint files/directories with the (filtered) default rule set."""
    engine = LintEngine(select_rules(select, ignore, flow=flow))
    return engine.lint_paths([str(p) for p in paths])


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one source string with the full default rule set."""
    return LintEngine(default_rules()).lint_source(source, path=path)
