"""Self-test fixtures for ``repro lint --fixtures``.

Each fixture is a small source file with a *known* expected finding
set for exactly one rule. ``repro lint --fixtures`` lints every case
with only its rule enabled and fails when the produced finding lines
differ — a deployment smoke test that the analyses still detect the
defect classes they were built for (and stay quiet on the fixed
code), runnable anywhere the package is installed.

The centerpiece is :data:`PREFIX_FORWARD`, a condensed transcript of
``ServingRuntime._forward`` as it shipped *before* PR 8: the
``charged_path.append`` after ``await queue.put(req)`` is the exact
await-boundary race REPRO111 exists to catch, pinned here forever as
a regression fixture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.engine import Finding, LintEngine
from repro.analysis.flow import flow_rules
from repro.analysis.rules import default_rules

__all__ = ["FixtureCase", "FIXTURES", "PREFIX_FORWARD", "run_fixtures"]


@dataclass(frozen=True)
class FixtureCase:
    """One lint self-test: a source, a rule, and expected hit lines."""

    name: str
    rule_id: str
    path: str
    source: str
    #: line numbers the rule must flag — () pins a clean case.
    expect: Tuple[int, ...]
    flow: bool = False


#: ``ServingRuntime._forward`` pre-PR-8 (condensed): the append on the
#: success path races the consumer that dequeued at the await.
PREFIX_FORWARD = '''\
import asyncio


class ServingRuntime:
    async def _forward(self, cohort, destination, via_edge=None, origin=None):
        queue = self.nodes[destination].queue
        for req in cohort:
            try:
                await queue.put(req, timeout_s=self.hop_timeout_s)
            except ShedError:
                self._answer(req, shed=True)
                continue
            except QueueTimeout:
                self._degrade_cohort(origin, [req], reason="hop_timeout")
                continue
            if via_edge is not None:
                req.charged_path.append(via_edge)
'''

#: the PR-8 fix: mutate first, undo on the failure edges.
_FIXED_FORWARD = '''\
import asyncio


class ServingRuntime:
    async def _forward(self, cohort, destination, via_edge=None, origin=None):
        queue = self.nodes[destination].queue
        for req in cohort:
            if via_edge is not None:
                req.charged_path.append(via_edge)
            try:
                await queue.put(req, timeout_s=self.hop_timeout_s)
            except ShedError:
                if via_edge is not None:
                    req.charged_path.pop()
                self._answer(req, shed=True)
            except QueueTimeout:
                if via_edge is not None:
                    req.charged_path.pop()
                self._degrade_cohort(origin, [req], reason="hop_timeout")
'''

_SPAWN_MUTATE = '''\
import asyncio


async def fanout(batch, worker):
    task = asyncio.ensure_future(worker(batch))
    await asyncio.sleep(0)
    batch.append("late")
    return task
'''

_SHARED_WRITE = '''\
from repro.serve.shard import SharedModelStore


def worker(name, layout, x):
    model, normalized, packed = SharedModelStore.attach(name, layout)
    model[0] = x
    normalized.fill(0.0)
    return model
'''

_SHARED_READ_ONLY = '''\
from repro.serve.shard import SharedModelStore


def worker(name, layout, x):
    model, normalized, packed = SharedModelStore.attach(name, layout)
    local = model.copy()
    local[0] = x
    return local @ normalized.T
'''

_TAG_COLLISION = '''\
from repro.utils.rng import derive_rng


def chaos(seed):
    return derive_rng(seed, "faults")


def workload(seed):
    return derive_rng(seed, "faults")
'''

_TAG_ADJACENT_HOLES = '''\
from repro.utils.rng import derive_rng


def per_node(seed, level, node):
    return derive_rng(seed, f"node-{level}{node}")
'''

_MULTILINE_SUPPRESSED = '''\
import numpy as np


def sample(n):
    rng = np.random.default_rng(  # repro-lint: disable=REPRO101
        1234
    )
    return rng.normal(size=n)
'''


FIXTURES: Tuple[FixtureCase, ...] = (
    FixtureCase(
        name="prefix-forward-race",
        rule_id="REPRO111",
        path="src/repro/serve/_fixture_forward.py",
        source=PREFIX_FORWARD,
        expect=(17,),
        flow=True,
    ),
    FixtureCase(
        name="fixed-forward-clean",
        rule_id="REPRO111",
        path="src/repro/serve/_fixture_forward_fixed.py",
        source=_FIXED_FORWARD,
        expect=(),
        flow=True,
    ),
    FixtureCase(
        name="spawn-then-mutate",
        rule_id="REPRO111",
        path="src/repro/serve/_fixture_spawn.py",
        source=_SPAWN_MUTATE,
        expect=(7,),
        flow=True,
    ),
    FixtureCase(
        name="shared-view-write",
        rule_id="REPRO112",
        path="src/repro/serve/_fixture_shard.py",
        source=_SHARED_WRITE,
        expect=(6, 7),
        flow=True,
    ),
    FixtureCase(
        name="shared-view-copy-clean",
        rule_id="REPRO112",
        path="src/repro/serve/_fixture_shard_copy.py",
        source=_SHARED_READ_ONLY,
        expect=(),
        flow=True,
    ),
    FixtureCase(
        name="rng-tag-duplicate",
        rule_id="REPRO113",
        path="src/repro/_fixture_tags.py",
        source=_TAG_COLLISION,
        expect=(5, 9),
        flow=True,
    ),
    FixtureCase(
        name="rng-tag-adjacent-holes",
        rule_id="REPRO113",
        path="src/repro/_fixture_tag_holes.py",
        source=_TAG_ADJACENT_HOLES,
        expect=(5,),
        flow=True,
    ),
    FixtureCase(
        name="multiline-suppression",
        rule_id="REPRO101",
        path="src/repro/_fixture_suppress.py",
        source=_MULTILINE_SUPPRESSED,
        expect=(),
    ),
)


def run_fixtures(
    cases: Sequence[FixtureCase] = FIXTURES,
) -> List[Tuple[FixtureCase, List[Finding], bool]]:
    """Lint every fixture in isolation; True = behaved as pinned."""
    results: List[Tuple[FixtureCase, List[Finding], bool]] = []
    for case in cases:
        pool = flow_rules() if case.flow else default_rules()
        rules = [rule for rule in pool if rule.rule_id == case.rule_id]
        findings = LintEngine(rules).lint_source(case.source, path=case.path)
        got = tuple(sorted(f.line for f in findings))
        results.append((case, findings, got == tuple(sorted(case.expect))))
    return results
