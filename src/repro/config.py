"""Global EdgeHD configuration defaults.

Section VI-A of the paper fixes the parameters used throughout the
evaluation unless otherwise noted:

* hypervector dimensionality ``D = 4000``
* retraining batch size ``B = 75`` (batch hypervectors, Sec. IV-B)
* inference compression count ``m = 25`` (position-HV binding, Sec. IV-C)
* confidence threshold ``0.75`` (escalation decision, Sec. IV-C)
* encoder weight sparsity ``80%`` (Sec. V-A / VI-B)
* 20 retraining epochs (Sec. III-B)
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.utils.validation import check_positive, check_probability


@dataclass(frozen=True)
class EdgeHDConfig:
    """Bundle of the tunable EdgeHD parameters with paper defaults."""

    dimension: int = 4000
    batch_size: int = 75
    compression_count: int = 25
    confidence_threshold: float = 0.75
    sparsity: float = 0.8
    retrain_epochs: int = 20
    retrain_learning_rate: float = 1.0
    encoder: str = "rbf"  # "rbf" | "cos-sin" | "linear" | "id-level"
    binarize: bool = True
    #: non-zeros per row of the hierarchical ternary projection (sparse
    #: JL regime): each output dimension mixes this many input
    #: dimensions. Keeps gateway compute linear in D instead of D^2.
    projection_nonzeros: int = 64
    seed: Optional[int] = 0x5EED

    def __post_init__(self) -> None:
        check_positive("dimension", self.dimension)
        check_positive("batch_size", self.batch_size)
        check_positive("compression_count", self.compression_count)
        check_probability("confidence_threshold", self.confidence_threshold)
        check_probability("sparsity", self.sparsity)
        check_positive("retrain_epochs", self.retrain_epochs, allow_zero=True)
        check_positive("retrain_learning_rate", self.retrain_learning_rate)
        check_positive("projection_nonzeros", self.projection_nonzeros)
        if self.encoder not in {"rbf", "cos-sin", "linear", "id-level"}:
            raise ValueError(f"unknown encoder {self.encoder!r}")

    def with_overrides(self, **kwargs: Any) -> "EdgeHDConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = EdgeHDConfig()
