"""Deterministic fault injection for the serving runtime (chaos harness).

The paper's robustness study (Sec. VI-F, Fig. 12) argues that the
holographic HD encoding degrades *gracefully* when dimensions are lost
in flight and messages are dropped. A :class:`FaultPlan` turns those
failure mechanisms into a reproducible chaos schedule for
:class:`~repro.serve.runtime.ServingRuntime`:

* **message drops** — every escalation attempt of every request flips a
  Bernoulli coin through the existing
  :class:`~repro.network.failure.FailureModel`;
* **payload corruption** — in-flight query bundles lose a fraction of
  their dimensions (:func:`~repro.network.failure.drop_dimensions`) or
  contiguous packet-sized blocks
  (:func:`~repro.network.failure.drop_blocks`) per hop;
* **latency jitter** — escalation transfers pay a uniform extra delay;
* **node crashes** — non-root nodes are unreachable during configured
  ``(start_s, end_s)`` windows (relative to serve start); senders
  detect the dead parent by timeout, retry with exponential backoff,
  and finally answer in degraded mode from their own model.

Every stochastic decision derives from ``(seed, structural tag)``
through :func:`~repro.utils.rng.derive_rng` — tags name the edge, the
request index and the attempt number, never wall-clock time or batch
composition. Two runs of the same workload under the same plan
therefore make *identical* fault decisions even though micro-batch
boundaries shift with host timing; this is what makes the chaos suite
in ``tests/test_serve_faults.py`` deterministic.

Modeling choices (kept deliberately one-sided so the "every request
completes" invariant is easy to reason about): only escalation uplinks
drop and corrupt — the 4-byte answer descent is treated as reliable
(an application-level ack), and a transmission toward a crashed parent
spends the detection timeout but is not charged wire bytes or energy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.network.failure import FailureModel, drop_blocks, drop_dimensions
from repro.network.message import Message, MessageKind
from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_probability

__all__ = ["FaultPlan"]

#: a directed (child, parent) escalation edge.
Edge = Tuple[int, int]


@dataclass(frozen=True)
class FaultPlan:
    """A seed-deterministic fault schedule for one serving run.

    All knobs default to "off"; a plan with every knob at zero is
    :attr:`active` ``False`` and the runtime treats it exactly like no
    plan at all (pinned by tests — the PR 3 served-equals-offline
    invariant survives an inert plan bit for bit).
    """

    #: root of every derived fault stream.
    seed: int = 0
    #: per-attempt Bernoulli drop probability on escalation uplinks.
    drop_probability: float = 0.0
    #: maximum uniform extra delay per escalation transfer (seconds).
    latency_jitter_s: float = 0.0
    #: fraction of hypervector dimensions erased per traversed hop.
    dimension_loss: float = 0.0
    #: fraction of contiguous packet-sized blocks erased per hop.
    block_loss: float = 0.0
    #: dimensions per lost packet (see :func:`drop_blocks`).
    block_size: int = 256
    #: node id -> (start_s, end_s) unreachability window, relative to
    #: serve start. The root may never crash.
    crash_windows: Mapping[int, Tuple[float, float]] = field(
        default_factory=dict
    )
    #: total transmission attempts per hop before degrading.
    max_attempts: int = 3
    #: simulated loss-detection (ack) timeout per failed attempt.
    timeout_s: float = 0.02
    #: exponential backoff: ``backoff_base_s * backoff_factor**attempt``.
    backoff_base_s: float = 0.005
    backoff_factor: float = 2.0
    #: bound on how long a sender may block on a full downstream inbox
    #: before answering in degraded mode (block policy only).
    hop_timeout_s: float = 5.0

    def __post_init__(self) -> None:
        check_probability("drop_probability", self.drop_probability)
        check_probability("dimension_loss", self.dimension_loss)
        check_probability("block_loss", self.block_loss)
        if self.latency_jitter_s < 0:
            raise ValueError(
                f"latency_jitter_s must be >= 0, got {self.latency_jitter_s}"
            )
        if self.block_size < 1:
            raise ValueError(
                f"block_size must be >= 1, got {self.block_size}"
            )
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {self.timeout_s}")
        if self.backoff_base_s < 0:
            raise ValueError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.hop_timeout_s <= 0:
            raise ValueError(
                f"hop_timeout_s must be > 0, got {self.hop_timeout_s}"
            )
        windows: Dict[int, Tuple[float, float]] = {}
        for node_id, window in dict(self.crash_windows).items():
            start, end = float(window[0]), float(window[1])
            if start < 0 or end < start:
                raise ValueError(
                    f"crash window for node {node_id} must satisfy "
                    f"0 <= start <= end, got ({start}, {end})"
                )
            windows[int(node_id)] = (start, end)
        object.__setattr__(self, "crash_windows", windows)

    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when any fault mechanism is engaged."""
        return bool(
            self.drop_probability > 0.0
            or self.latency_jitter_s > 0.0
            or self.corrupts_payload
            or self.crash_windows
        )

    @property
    def corrupts_payload(self) -> bool:
        """True when in-flight bundles lose dimensions or blocks."""
        return self.dimension_loss > 0.0 or self.block_loss > 0.0

    # ------------------------------------------------------------------
    def crashed(self, node_id: int, elapsed_s: float) -> bool:
        """Is ``node_id`` inside its crash window at ``elapsed_s``?"""
        window = self.crash_windows.get(node_id)
        if window is None:
            return False
        start, end = window
        return start <= elapsed_s < end

    def message_dropped(
        self, edge: Edge, index: int, attempt: int, payload_bytes: int
    ) -> bool:
        """Does request ``index``'s ``attempt``-th send over ``edge`` drop?

        The decision is a :class:`FailureModel` draw whose stream is
        derived from ``(seed, edge, index, attempt)`` — the same
        request retried on the same hop sees independent coins, while
        two runs of the same plan see identical ones.
        """
        if self.drop_probability == 0.0:
            return False
        model = FailureModel(
            self.drop_probability,
            seed=derive_rng(
                self.seed, f"drop:{edge[0]}->{edge[1]}:{index}:{attempt}"
            ),
        )
        message = Message(
            edge[0], edge[1], MessageKind.COMPRESSED_QUERY, payload_bytes
        )
        return model.message_dropped(message)

    def jitter_s(self, edge: Edge, index: int, attempt: int) -> float:
        """Extra uplink delay for this transfer (uniform, derived)."""
        if self.latency_jitter_s == 0.0:
            return 0.0
        rng = derive_rng(
            self.seed, f"jitter:{edge[0]}->{edge[1]}:{index}:{attempt}"
        )
        return float(rng.uniform(0.0, self.latency_jitter_s))

    def corrupt(
        self, encoded_row: np.ndarray, node_id: int, index: int
    ) -> np.ndarray:
        """Dimension/block loss suffered by one in-flight query row.

        Applied at the receiving node: the runtime recomputes encodings
        from raw features (deterministic, so batching cannot change an
        answer), so the loss the bundle suffered on the wire is
        replayed onto the freshly computed row. The damage pattern
        derives from ``(seed, node, request index)`` only.
        """
        out = encoded_row
        if self.block_loss > 0.0:
            out = drop_blocks(
                out,
                self.block_loss,
                block_size=self.block_size,
                seed=derive_rng(self.seed, f"chaos-block:{node_id}:{index}"),
            )
        if self.dimension_loss > 0.0:
            out = drop_dimensions(
                out,
                self.dimension_loss,
                seed=derive_rng(self.seed, f"chaos-dim:{node_id}:{index}"),
            )
        return out

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        return self.backoff_base_s * self.backoff_factor ** attempt

    # ------------------------------------------------------------------
    def validate_for_cluster(self, n_replicas: int) -> None:
        """Check this plan is usable by the multi-process cluster.

        The cluster reinterprets :attr:`crash_windows` keys as *replica
        indices* (a killed worker process), not hierarchy node ids —
        the subsystem's first-class fault scenario. Only crash-style
        plans are supported there: drop / jitter / corruption model the
        wireless medium between simulated hierarchy nodes, which the
        cluster executes inside one worker per request, so those knobs
        would be silently meaningless. At least one replica must stay
        outside every crash window so the fleet can finish the run.
        """
        if (
            self.drop_probability > 0.0
            or self.latency_jitter_s > 0.0
            or self.corrupts_payload
        ):
            raise ValueError(
                "cluster serving supports crash-only fault plans; "
                "drop/jitter/corruption knobs apply to the single-process "
                "runtime's simulated medium"
            )
        bad = [r for r in self.crash_windows if not 0 <= r < n_replicas]
        if bad:
            raise ValueError(
                f"crash_windows names replica indices {bad} outside "
                f"[0, {n_replicas})"
            )
        if len(self.crash_windows) >= n_replicas:
            raise ValueError(
                f"plan crashes all {n_replicas} replicas; at least one "
                "must survive to drain the run"
            )

    # ------------------------------------------------------------------
    def respawn_times(self) -> Dict[int, float]:
        """Nodes whose crash window *ends* — i.e. replaced nodes.

        A finite window models the elastic control plane's replacement
        loop: the node is unreachable from ``start_s``, and at ``end_s``
        its respawned successor (restored from checkpoint and caught up
        via journal replay) starts answering again. Nodes with an
        infinite window are permanently lost and do not appear here.
        """
        return {
            node_id: end
            for node_id, (_, end) in self.crash_windows.items()
            if math.isfinite(end)
        }

    @classmethod
    def replacement(
        cls,
        node_id: int,
        crash_start_s: float,
        outage_s: float,
        *,
        seed: int = 0,
        **knobs: object,
    ) -> "FaultPlan":
        """Plan for one crash-and-replace cycle of ``node_id``.

        The node is down for exactly ``outage_s`` — the detection lag
        plus restore time of the replacement loop — then serves again.
        Contrast with a bare ``crash_windows={node: (t, inf)}`` plan,
        which models permanent loss. Extra keyword knobs pass through
        to the plan (e.g. ``drop_probability`` for ambient chaos).
        """
        if outage_s <= 0:
            raise ValueError(f"outage_s must be > 0, got {outage_s}")
        return cls(
            seed=seed,
            crash_windows={node_id: (crash_start_s, crash_start_s + outage_s)},
            **knobs,  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------
    @staticmethod
    def sample_crashes(
        seed: SeedLike,
        candidates: Sequence[int],
        n_crashes: int = 1,
        crash_start_s: float = 0.0,
        crash_duration_s: float = math.inf,
    ) -> Dict[int, Tuple[float, float]]:
        """Draw crash windows for ``n_crashes`` of ``candidates``.

        The victims are chosen via ``derive_rng(seed,
        "crash-windows")`` so a chaos benchmark can crash "some
        non-root node" reproducibly. Pass the result as
        ``crash_windows=``; the runtime rejects plans that crash the
        root or unknown node ids.
        """
        pool = [int(c) for c in candidates]
        if n_crashes < 0:
            raise ValueError(f"n_crashes must be >= 0, got {n_crashes}")
        if n_crashes > len(pool):
            raise ValueError(
                f"cannot crash {n_crashes} of {len(pool)} candidate nodes"
            )
        rng = derive_rng(seed, "crash-windows")
        picked = rng.choice(len(pool), size=n_crashes, replace=False)
        end = crash_start_s + crash_duration_s
        return {pool[int(i)]: (crash_start_s, end) for i in picked}
