"""Offline analysis of an exported request trace (``repro serve-report``).

Input is the JSONL written by ``repro serve-bench --trace t.jsonl`` (or
:meth:`~repro.serve.tracing.RequestTraceLog.export_jsonl` directly):
one :class:`~repro.serve.tracing.TraceEvent` per line. From the
``done`` events' stage-timing totals and the per-hop events in between,
the report reconstructs:

* the **per-stage latency breakdown** (p50/p95/p99 of queue wait,
  encode, search, escalation RTT and total);
* **critical-path attribution** per percentile band — which stage and
  which node dominated the requests below p50, between p50 and p95,
  between p95 and p99, and above p99 (the "where does my tail come
  from" table);
* the **degradation root-cause table** — degraded answers grouped by
  the ``reason`` recorded on their ``degraded`` event, with an example
  request id each;
* **SLO attainment** against a latency target, split by outcome;
* one full **hop timeline** — a degraded request's when one exists,
  otherwise the slowest request's — rendered event by event.

Everything here is pure post-processing: no asyncio, no registry, just
the trace file. ``repro serve-report`` is the CLI wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.serve.tracing import TraceEvent, load_request_trace

__all__ = [
    "RequestSummary",
    "summarize_request",
    "build_report",
    "render_report",
    "render_timeline",
    "serve_report",
]

#: stage keys as recorded on ``done`` events, in pipeline order.
_STAGES = ("queue_wait_ms", "encode_ms", "search_ms", "escalation_rtt_ms")

#: percentile bands of the critical-path table: (label, lo_q, hi_q).
_BANDS: Tuple[Tuple[str, float, float], ...] = (
    ("<p50", 0.0, 50.0),
    ("p50-p95", 50.0, 95.0),
    ("p95-p99", 95.0, 99.0),
    (">p99", 99.0, 100.0),
)

#: events whose ``ms``-like attributes charge wall time to a node.
_NODE_TIME_ATTRS = {
    "hop": "queue_wait_ms",
    "encode": "ms",
    "search": "ms",
    "transit": "ms",
    "backoff": "wait_ms",
    "descend": "ms",
}


@dataclass(frozen=True)
class RequestSummary:
    """One request's timeline reduced to the report's inputs."""

    request_id: int
    outcome: str
    total_ms: float
    stage_ms: Mapping[str, float]
    hops: int
    attempts: int
    deciding_node: int
    degraded_reason: Optional[str]
    #: stage that consumed the largest share of total latency.
    dominant_stage: str
    #: node that accumulated the most charged wall time.
    dominant_node: int


def _node_time(events: List[TraceEvent]) -> Dict[int, float]:
    """Wall time charged to each node across one request's events."""
    charged: Dict[int, float] = {}
    for event in events:
        attr = _NODE_TIME_ATTRS.get(event.event)
        if attr is None:
            continue
        ms = event.attrs.get(attr)
        if ms is None:
            continue
        charged[event.node] = charged.get(event.node, 0.0) + float(ms)
    return charged


def summarize_request(events: List[TraceEvent]) -> Optional[RequestSummary]:
    """Reduce one request's events; None when it never finished."""
    done = next((e for e in events if e.event == "done"), None)
    if done is None:
        return None
    stage_ms = {
        stage: float(done.attrs.get(stage, 0.0)) for stage in _STAGES
    }
    dominant_stage = max(stage_ms, key=lambda s: stage_ms[s])
    charged = _node_time(events)
    dominant_node = (
        max(charged, key=lambda n: charged[n]) if charged else done.node
    )
    reason: Optional[str] = None
    for event in events:
        if event.event == "degraded":
            raw = event.attrs.get("reason")
            reason = str(raw) if raw is not None else None
            break
    return RequestSummary(
        request_id=done.request_id,
        outcome=str(done.attrs.get("outcome", "ok")),
        total_ms=float(done.attrs.get("total_ms", done.t_ms)),
        stage_ms=stage_ms,
        hops=int(done.attrs.get("hops", 0)),
        attempts=int(done.attrs.get("attempts", 0)),
        deciding_node=done.node,
        degraded_reason=reason,
        dominant_stage=dominant_stage,
        dominant_node=dominant_node,
    )


def _percentiles(
    values: np.ndarray, qs: Tuple[float, ...] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    if values.size == 0:
        return {f"p{q:g}": 0.0 for q in qs}
    return {f"p{q:g}": float(np.percentile(values, q)) for q in qs}


def _attribution_bands(
    summaries: List[RequestSummary],
) -> List[Dict[str, Any]]:
    """Dominant stage / node per percentile band of total latency."""
    if not summaries:
        return []
    totals = np.asarray([s.total_ms for s in summaries], dtype=np.float64)
    bands: List[Dict[str, Any]] = []
    for label, lo_q, hi_q in _BANDS:
        lo = float(np.percentile(totals, lo_q)) if lo_q > 0 else -np.inf
        hi = float(np.percentile(totals, hi_q)) if hi_q < 100 else np.inf
        members = [s for s in summaries if lo < s.total_ms <= hi] if lo_q > 0 \
            else [s for s in summaries if s.total_ms <= hi]
        if not members:
            bands.append({"band": label, "n": 0})
            continue
        stage_tally: Dict[str, int] = {}
        node_tally: Dict[int, int] = {}
        for s in members:
            stage_tally[s.dominant_stage] = (
                stage_tally.get(s.dominant_stage, 0) + 1
            )
            node_tally[s.dominant_node] = node_tally.get(s.dominant_node, 0) + 1
        top_stage = max(stage_tally, key=lambda k: stage_tally[k])
        top_node = max(node_tally, key=lambda k: node_tally[k])
        bands.append({
            "band": label,
            "n": len(members),
            "range_ms": (
                float(min(s.total_ms for s in members)),
                float(max(s.total_ms for s in members)),
            ),
            "dominant_stage": top_stage,
            "dominant_stage_share": stage_tally[top_stage] / len(members),
            "dominant_node": top_node,
            "dominant_node_share": node_tally[top_node] / len(members),
        })
    return bands


def build_report(
    traces: Mapping[int, List[TraceEvent]],
    slo_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Compute the full report structure from grouped trace events."""
    summaries = [
        s for s in (summarize_request(evs) for evs in traces.values())
        if s is not None
    ]
    summaries.sort(key=lambda s: s.request_id)
    totals = np.asarray([s.total_ms for s in summaries], dtype=np.float64)
    stage_breakdown = {
        stage: _percentiles(np.asarray(
            [s.stage_ms[stage] for s in summaries], dtype=np.float64
        ))
        for stage in _STAGES
    }
    stage_breakdown["total_ms"] = _percentiles(totals)
    outcomes: Dict[str, int] = {}
    for s in summaries:
        outcomes[s.outcome] = outcomes.get(s.outcome, 0) + 1
    root_causes: Dict[str, Dict[str, Any]] = {}
    for s in summaries:
        if s.outcome != "degraded":
            continue
        reason = s.degraded_reason or "unknown"
        entry = root_causes.setdefault(
            reason, {"n": 0, "example": s.request_id}
        )
        entry["n"] += 1
    slo: Optional[Dict[str, Any]] = None
    if slo_ms is not None:
        within = [s for s in summaries if s.total_ms <= slo_ms]
        violators: Dict[str, int] = {}
        for s in summaries:
            if s.total_ms > slo_ms:
                violators[s.outcome] = violators.get(s.outcome, 0) + 1
        slo = {
            "slo_ms": float(slo_ms),
            "n_within": len(within),
            "n_total": len(summaries),
            "attainment": (
                len(within) / len(summaries) if summaries else 0.0
            ),
            "violations_by_outcome": violators,
        }
    return {
        "n_requests": len(traces),
        "n_finished": len(summaries),
        "outcomes": outcomes,
        "stage_breakdown": stage_breakdown,
        "bands": _attribution_bands(summaries),
        "root_causes": root_causes,
        "slo": slo,
        "summaries": summaries,
    }


def _short_stage(stage: str) -> str:
    return stage[:-3] if stage.endswith("_ms") else stage


def render_timeline(events: List[TraceEvent]) -> str:
    """One request's events as an aligned when/what/where table."""
    lines = [f"  {'t_ms':>10}  {'event':<10} {'node':>4}  detail"]
    for event in sorted(events, key=lambda e: e.seq):
        detail = ", ".join(
            f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
            for k, v in event.attrs.items()
        )
        lines.append(
            f"  {event.t_ms:>10.3f}  {event.event:<10} {event.node:>4}  "
            f"{detail}"
        )
    return "\n".join(lines)


def _pick_example(
    traces: Mapping[int, List[TraceEvent]],
    summaries: List[RequestSummary],
    request_id: Optional[int] = None,
) -> Optional[RequestSummary]:
    """An explicit request, else a degraded one, else the slowest."""
    if request_id is not None:
        return next(
            (s for s in summaries if s.request_id == request_id), None
        )
    degraded = [s for s in summaries if s.outcome == "degraded"]
    pool = degraded or summaries
    if not pool:
        return None
    return max(pool, key=lambda s: s.total_ms)


def render_report(
    traces: Mapping[int, List[TraceEvent]],
    slo_ms: Optional[float] = None,
    request_id: Optional[int] = None,
) -> str:
    """Render the full ``serve-report`` text from grouped events."""
    report = build_report(traces, slo_ms=slo_ms)
    summaries: List[RequestSummary] = report["summaries"]
    outcome_txt = ", ".join(
        f"{kind} {n}" for kind, n in sorted(report["outcomes"].items())
    ) or "none"
    lines = [
        f"serve-report: {report['n_requests']} requests traced, "
        f"{report['n_finished']} finished ({outcome_txt})",
        "",
        "per-stage latency breakdown (ms):",
        f"  {'stage':<16} {'p50':>9} {'p95':>9} {'p99':>9}",
    ]
    for stage, pct in report["stage_breakdown"].items():
        lines.append(
            f"  {_short_stage(stage):<16} {pct['p50']:>9.3f} "
            f"{pct['p95']:>9.3f} {pct['p99']:>9.3f}"
        )
    lines += [
        "",
        "critical-path attribution by percentile band:",
        f"  {'band':<8} {'reqs':>5}  {'range (ms)':<19} "
        f"{'dominant stage':<22} {'dominant node':<13}",
    ]
    for band in report["bands"]:
        if not band.get("n"):
            lines.append(f"  {band['band']:<8} {0:>5}  (empty)")
            continue
        lo, hi = band["range_ms"]
        lines.append(
            f"  {band['band']:<8} {band['n']:>5}  "
            f"{lo:>8.3f}-{hi:<9.3f} "
            f"{_short_stage(band['dominant_stage']):<15} "
            f"({band['dominant_stage_share']:>4.0%})  "
            f"node {band['dominant_node']} "
            f"({band['dominant_node_share']:.0%})"
        )
    if report["root_causes"]:
        lines += [
            "",
            "degradation root causes:",
            f"  {'reason':<22} {'requests':>8}  example",
        ]
        for reason, entry in sorted(report["root_causes"].items()):
            lines.append(
                f"  {reason:<22} {entry['n']:>8}  #{entry['example']}"
            )
    if report["slo"] is not None:
        slo = report["slo"]
        lines += [
            "",
            f"SLO attainment (<= {slo['slo_ms']:g} ms): "
            f"{slo['attainment']:.1%} "
            f"({slo['n_within']}/{slo['n_total']} within target)",
        ]
        if slo["violations_by_outcome"]:
            parts = ", ".join(
                f"{kind} {n}"
                for kind, n in sorted(slo["violations_by_outcome"].items())
            )
            lines.append(f"  violations by outcome: {parts}")
    example = _pick_example(traces, summaries, request_id=request_id)
    if example is not None:
        lines += [
            "",
            f"request #{example.request_id} timeline "
            f"({example.outcome}, {example.total_ms:.3f} ms, "
            f"{example.hops} hops, {example.attempts} attempts):",
            render_timeline(traces[example.request_id]),
        ]
    elif request_id is not None:
        lines += ["", f"request #{request_id}: not found in trace"]
    return "\n".join(lines)


def serve_report(
    path: Union[str, Path],
    slo_ms: Optional[float] = None,
    request_id: Optional[int] = None,
) -> str:
    """Load a trace file and render the report (the CLI entry point)."""
    return render_report(
        load_request_trace(path), slo_ms=slo_ms, request_id=request_id
    )
