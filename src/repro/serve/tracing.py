"""Request-level tracing for the serving runtime.

A :class:`TraceContext` rides on every
:class:`~repro.serve.request.ServeRequest` when observability is
enabled: it carries the request id, the hop path (node ids visited) and
a cumulative transmission-attempt counter, and accumulates
:class:`TraceEvent` records for every stage the request passes —
admission, queue wait, batch formation, encode, associative search,
escalation transit, retry/backoff, answer descent and degradation.
Because the *same* request object travels through node inboxes and
escalation bundles, propagation is by construction: every hop appends
to the one context, and a single request's end-to-end causal timeline
is reconstructable from its event list alone.

Event kinds and the stage they witness:

==================  ====================================================
``admitted``        request entered its start leaf's inbox
``hop``             micro-batch formed at a node (queue wait, batch size)
``encode``          cohort encode at a node (batch wall time)
``search``          associative search at a node (batch wall time)
``decide``          a decision-capable node recorded (answer / escalate)
``escalate``        uplink transmission attempt on a (child, parent) edge
``transit``         uplink transfer completed (simulated wire time)
``drop``            fault injection dropped this request's send
``timeout``         ack / hop timeout fired for this request
``backoff``         retry backoff wait before the next attempt
``retry``           request retransmitted after a failed attempt
``shed``            backpressure shed (admission or escalation)
``corrupt``         fault injection damaged this request's payload
``degraded``        answered in degraded mode (``reason`` attribute)
``descend``         answer descent over the charged escalation path
``done``            terminal response (outcome + stage timing totals)
==================  ====================================================

Timestamps are milliseconds since the serving run started, so a trace,
the telemetry time-series and the flight recorder all share one clock.
Event *sequences* are seed-deterministic under a
:class:`~repro.serve.faults.FaultPlan` (fault decisions derive from
structural tags); timestamps and batch sizes are not — comparisons must
use :func:`semantic_timeline`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, Iterator, List, Mapping, Optional, Union

__all__ = [
    "TraceEvent",
    "TraceContext",
    "RequestTraceLog",
    "load_request_trace",
    "semantic_timeline",
]

#: event kinds that are seed-deterministic (timing-independent): the
#: causal skeleton two same-seed chaos runs must agree on.
SEMANTIC_EVENTS = (
    "admitted",
    "escalate",
    "drop",
    "timeout",
    "retry",
    "shed",
    "degraded",
    "done",
)


@dataclass(frozen=True)
class TraceEvent:
    """One step of one request's causal timeline."""

    request_id: int
    seq: int
    t_ms: float
    event: str
    node: int = -1
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "request": self.request_id,
            "seq": self.seq,
            "t_ms": self.t_ms,
            "event": self.event,
            "node": self.node,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        return cls(
            request_id=int(data["request"]),
            seq=int(data["seq"]),
            t_ms=float(data["t_ms"]),
            event=str(data["event"]),
            node=int(data.get("node", -1)),
            attrs=dict(data.get("attrs") or {}),
        )


class TraceContext:
    """Per-request trace state carried on a ``ServeRequest``.

    Mutable on purpose: the request object (and hence this context)
    travels through queues and escalation bundles, so every hop appends
    to one shared timeline.
    """

    __slots__ = ("request_id", "hop_path", "attempts", "events", "_seq")

    def __init__(self, request_id: int) -> None:
        self.request_id = int(request_id)
        #: node ids visited, in order (the hop path).
        self.hop_path: List[int] = []
        #: cumulative uplink transmission attempts across all edges.
        self.attempts = 0
        self.events: List[TraceEvent] = []
        self._seq = 0

    def emit(
        self, event: str, t_ms: float, node: int = -1, **attrs: Any
    ) -> TraceEvent:
        """Append one event to the timeline."""
        record = TraceEvent(
            request_id=self.request_id,
            seq=self._seq,
            t_ms=float(t_ms),
            event=event,
            node=int(node),
            attrs=attrs,
        )
        self._seq += 1
        self.events.append(record)
        return record

    def visit(self, node: int) -> None:
        """Record a hop onto ``node`` (deduplicates immediate repeats)."""
        if not self.hop_path or self.hop_path[-1] != node:
            self.hop_path.append(int(node))


class RequestTraceLog:
    """Bounded ring of completed-request trace events.

    Finished requests flush their whole event list here; ring semantics
    (oldest events first) bound a long serving run, with evictions
    counted in :attr:`dropped`.
    """

    def __init__(self, max_events: int = 500_000) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.max_events = int(max_events)
        self._events: Deque[TraceEvent] = deque(maxlen=self.max_events)
        #: events evicted because the ring was full.
        self.dropped = 0
        #: requests whose timelines were flushed into the log.
        self.n_requests = 0

    def extend(self, events: List[TraceEvent]) -> None:
        for event in events:
            if len(self._events) == self.max_events:
                self.dropped += 1
            self._events.append(event)
        if events:
            self.n_requests += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def by_request(self) -> Dict[int, List[TraceEvent]]:
        """Events grouped by request id, each list in seq order."""
        grouped: Dict[int, List[TraceEvent]] = {}
        for event in self._events:
            grouped.setdefault(event.request_id, []).append(event)
        for events in grouped.values():
            events.sort(key=lambda e: e.seq)
        return grouped

    def export_jsonl(self, path: Union[str, Path]) -> int:
        """One JSON object per event; returns events written."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w") as fh:
            for event in self._events:
                fh.write(json.dumps(event.to_dict()) + "\n")
        return len(self._events)


def load_request_trace(path: Union[str, Path]) -> Dict[int, List[TraceEvent]]:
    """Read an exported trace back as ``{request_id: [events]}``.

    Tolerates (and skips) non-event lines — e.g. span records from
    :meth:`repro.obs.TraceBuffer.export_jsonl` sharing the file — so a
    mixed trace file still yields every request timeline it contains.
    """
    grouped: Dict[int, List[TraceEvent]] = {}
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            data = json.loads(line)
            if not isinstance(data, dict) or "event" not in data:
                continue
            event = TraceEvent.from_dict(data)
            grouped.setdefault(event.request_id, []).append(event)
    for events in grouped.values():
        events.sort(key=lambda e: e.seq)
    return grouped


def semantic_timeline(events: List[TraceEvent]) -> List[str]:
    """Timing-free causal skeleton of one request's timeline.

    Keeps only the seed-deterministic event kinds and renders each as
    ``event@node`` (plus the edge for escalation attempts), dropping
    timestamps, batch sizes and wall-time attributes — the form two
    same-seed chaos runs must reproduce exactly.
    """
    out: List[str] = []
    for event in sorted(events, key=lambda e: e.seq):
        if event.event not in SEMANTIC_EVENTS:
            continue
        tag = f"{event.event}@{event.node}"
        edge = event.attrs.get("edge")
        if edge is not None:
            tag += f":{edge}"
        attempt = event.attrs.get("attempt")
        if attempt is not None:
            tag += f"#a{attempt}"
        reason = event.attrs.get("reason")
        if reason is not None:
            tag += f"({reason})"
        outcome = event.attrs.get("outcome")
        if outcome is not None:
            tag += f"={outcome}"
        out.append(tag)
    return out
