"""Workloads and arrival processes for the serving runtime.

A :class:`ServeWorkload` is a feature matrix plus the end node each
query enters at. :func:`make_workload` assigns start leaves with the
*same* seed derivation as :meth:`HierarchicalInference.run` (tag
``"start-leaves"``), so a served workload and an offline run over the
same features and seed walk identical queries through identical nodes —
the property the equivalence tests pin down.

Arrival processes (all reproducible through :mod:`repro.utils.rng`):

* :func:`poisson_arrivals` — open-loop: memoryless interarrivals at a
  target rate; the generator submits on schedule regardless of how the
  system is coping (the honest way to measure latency under load).
* :func:`uniform_arrivals` — open-loop, deterministic equal spacing.
* closed-loop — no precomputed schedule: ``ServingRuntime.
  serve_closed_loop`` keeps ``n_clients`` requests in flight, each
  client submitting its next query when the previous answer returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.utils.rng import SeedLike, derive_rng
from repro.utils.validation import check_matrix

if TYPE_CHECKING:  # type-only: repro.hierarchy already imports repro.serve
    from repro.hierarchy.inference import HierarchicalInference

__all__ = [
    "ServeWorkload",
    "make_workload",
    "poisson_arrivals",
    "uniform_arrivals",
]


@dataclass
class ServeWorkload:
    """Queries to serve: one feature row + start leaf per request."""

    features: np.ndarray
    start_leaves: np.ndarray
    labels: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.features = check_matrix("features", self.features)
        self.start_leaves = np.asarray(self.start_leaves, dtype=np.int64)
        n = self.features.shape[0]
        if self.start_leaves.shape != (n,):
            raise ValueError(
                f"start_leaves must have shape ({n},), got "
                f"{self.start_leaves.shape}"
            )
        if self.labels is not None:
            self.labels = np.asarray(self.labels)
            if self.labels.shape != (n,):
                raise ValueError(
                    f"labels must have shape ({n},), got {self.labels.shape}"
                )

    def __len__(self) -> int:
        return int(self.features.shape[0])

    def accuracy(self, predicted: np.ndarray) -> float:
        if self.labels is None:
            raise ValueError("workload carries no ground-truth labels")
        return float(np.mean(np.asarray(predicted) == self.labels))


def make_workload(
    features: np.ndarray,
    inference: "HierarchicalInference",
    seed: SeedLike = 0,
    labels: Optional[np.ndarray] = None,
    start_leaves: Optional[np.ndarray] = None,
) -> ServeWorkload:
    """Build a workload over a trained ``HierarchicalInference``.

    When ``start_leaves`` is omitted, queries are spread uniformly over
    the end nodes using the identical rng derivation (seed + tag
    ``"start-leaves"``) as ``HierarchicalInference.run(seed=seed)`` —
    so serving this workload and running offline with the same seed
    process the same (query, entry node) pairs.
    """
    hierarchy = inference.federation.hierarchy
    mat = check_matrix(
        "features", features, cols=inference.federation.partition.n_features
    )
    leaves = hierarchy.leaves()
    n = mat.shape[0]
    if start_leaves is None:
        # Intentionally the same tag as HierarchicalInference.classify:
        # offline and served runs must draw identical start leaves.
        rng = derive_rng(seed, "start-leaves")  # repro-lint: disable=REPRO113
        start_leaves = np.asarray(leaves)[rng.integers(0, len(leaves), size=n)]
    else:
        start_leaves = np.asarray(start_leaves)
        unknown = set(start_leaves.tolist()) - set(leaves)
        if unknown:
            raise ValueError(
                f"start_leaves contains non-leaf ids {sorted(unknown)}"
            )
    return ServeWorkload(
        features=mat, start_leaves=start_leaves, labels=labels
    )


def poisson_arrivals(
    n: int, rate_rps: float, seed: SeedLike = 0
) -> np.ndarray:
    """Absolute arrival times (seconds) of an open-loop Poisson stream.

    Interarrival gaps are exponential with mean ``1 / rate_rps``;
    the stream is reproducible via ``derive_rng(seed,
    "poisson-arrivals")``.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    rng = derive_rng(seed, "poisson-arrivals")
    gaps = rng.exponential(scale=1.0 / rate_rps, size=n)
    return np.cumsum(gaps)


def uniform_arrivals(n: int, rate_rps: float) -> np.ndarray:
    """Deterministic, evenly spaced open-loop arrival times (seconds)."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    return (np.arange(n, dtype=np.float64) + 1.0) / rate_rps
