"""``repro.serve`` — async hierarchical inference serving (Sec. IV-C live).

Turns a trained :class:`~repro.hierarchy.inference.HierarchicalInference`
tree into a live service: requests arrive over time at end nodes, each
node micro-batches its bounded inbox (flush on ``max_batch`` or
``max_wait_ms``), classifies the cohort in one vectorized associative
search, and escalates low-confidence queries upward in compressed
``m``-query bundles whose transfer time and energy are charged through
the configured :class:`~repro.network.medium.Medium`. Bounded queues
apply backpressure under overload — block the producer or shed load,
policy-selectable.

The decision rule at every node is *identical* to the offline batch
walk of :meth:`HierarchicalInference.run`; on the same queries (same
seed) the served answers, escalation decisions and aggregate wire bytes
match the offline outcome exactly (verified by the serving benchmark's
smoke mode and tier-1 tests).

With a :class:`~repro.serve.faults.FaultPlan` the same tree serves
through deterministic chaos — message drops, latency jitter, payload
dimension/block loss, node crash windows — and the runtime answers
every request anyway via retry/backoff, per-hop timeouts, and degraded
local answers (see the chaos benchmark and ``tests/test_serve_faults``).

For throughput beyond one process, :class:`~repro.serve.cluster.
ClusterRuntime` serves the same contract over a fleet of OS worker
processes that attach read-only model replicas from a
:class:`~repro.serve.shard.SharedModelStore` (zero copies, zero
pickling) with consistent-hash request sharding, least-loaded replica
selection and heartbeat-based eviction
(:class:`~repro.serve.registry.ReplicaRegistry`).

Quickstart::

    from repro.serve import ServeConfig, ServingRuntime, make_workload
    from repro.network.medium import get_medium

    runtime = ServingRuntime(inference, get_medium("wifi-802.11ac"),
                             ServeConfig(max_batch=16, max_wait_ms=2.0))
    workload = make_workload(test_x, inference, seed=7)
    result = runtime.serve_open_loop(workload, rate_rps=500.0, seed=7)
    print(result.summary())
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.cluster import (
    ClusterConfig,
    ClusterRuntime,
    ConsistentHashRing,
    WorkerSpec,
)
from repro.serve.faults import FaultPlan
from repro.serve.registry import ReplicaInfo, ReplicaRegistry
from repro.serve.shard import NodeLayout, SharedModelStore
from repro.serve.queueing import (
    BoundedQueue,
    QueueStats,
    QueueTimeout,
    ShedError,
)
from repro.serve.report import (
    build_report,
    render_report,
    render_timeline,
    serve_report,
)
from repro.serve.request import (
    ServeRequest,
    ServeResponse,
    ServeResult,
    StageTimings,
)
from repro.serve.runtime import ServeConfig, ServingRuntime
from repro.serve.tracing import (
    RequestTraceLog,
    TraceContext,
    TraceEvent,
    load_request_trace,
    semantic_timeline,
)
from repro.serve.workload import (
    ServeWorkload,
    make_workload,
    poisson_arrivals,
    uniform_arrivals,
)

__all__ = [
    "BoundedQueue",
    "ClusterConfig",
    "ClusterRuntime",
    "ConsistentHashRing",
    "FaultPlan",
    "MicroBatcher",
    "NodeLayout",
    "QueueStats",
    "QueueTimeout",
    "ReplicaInfo",
    "ReplicaRegistry",
    "RequestTraceLog",
    "ServeConfig",
    "ServeRequest",
    "ServeResponse",
    "ServeResult",
    "ServeWorkload",
    "ServingRuntime",
    "SharedModelStore",
    "ShedError",
    "StageTimings",
    "TraceContext",
    "WorkerSpec",
    "TraceEvent",
    "build_report",
    "load_request_trace",
    "make_workload",
    "poisson_arrivals",
    "render_report",
    "render_timeline",
    "semantic_timeline",
    "serve_report",
    "uniform_arrivals",
]
