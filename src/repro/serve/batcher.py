"""Micro-batching: amortize one associative search over a cohort.

HD inference cost is nearly flat in batch size (one vectorized
popcount/cosine per node — the PR 2 kernel), so grouping requests that
arrive close together is almost free throughput. The flush rule is the
standard two-condition window: emit as soon as ``max_batch`` requests
are waiting **or** ``max_wait_ms`` has elapsed since the first request
of the window, whichever comes first. ``max_wait_ms`` therefore bounds
the queueing latency a lone request can pay waiting for company.
"""

from __future__ import annotations

import asyncio
from typing import Any, List

import repro.serve.sanitizer as sanitizer
from repro.serve.queueing import BoundedQueue

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Pull micro-batches off a :class:`BoundedQueue`."""

    def __init__(
        self, queue: BoundedQueue, max_batch: int, max_wait_ms: float
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.queue = queue
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        #: flush accounting: batches emitted and their size total.
        self.n_batches = 0
        self.n_items = 0
        #: persistent getter task. Wrapping ``queue.get()`` directly in
        #: ``asyncio.wait_for`` can *lose* an item when the timeout
        #: races a successful get (the cancellation discards the
        #: retrieved value); instead the getter survives window
        #: timeouts and its result is simply collected by the next
        #: window.
        self._getter: "asyncio.Task[Any] | None" = None

    async def _get_one(self, timeout: float | None) -> Any:
        """Await one item, preserving the getter across timeouts.

        Returns the item, or raises ``asyncio.TimeoutError`` with the
        pending getter left running (no item can be lost).
        """
        if self._getter is None:
            self._getter = asyncio.ensure_future(self.queue.get())
        done, _ = await asyncio.wait({self._getter}, timeout=timeout)
        if not done:
            raise asyncio.TimeoutError
        getter, self._getter = self._getter, None
        return getter.result()

    def close(self) -> None:
        """Cancel the pending getter (runtime shutdown)."""
        if self._getter is not None:
            self._getter.cancel()
            self._getter = None

    async def next_batch(self) -> List[Any]:
        """Wait for the next micro-batch (never returns empty).

        Waits indefinitely for the first item; then drains whatever is
        immediately available and keeps the window open until the batch
        is full or the deadline passes.
        """
        batch: List[Any] = [await self._get_one(None)]
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_wait_s
        while len(batch) < self.max_batch:
            # Drain synchronously first: items already queued join the
            # batch without paying any wait.
            try:
                while len(batch) < self.max_batch:
                    batch.append(self.queue.get_nowait())
                break
            except asyncio.QueueEmpty:
                pass
            timeout = deadline - loop.time()
            if timeout <= 0:
                break
            try:
                batch.append(await self._get_one(timeout))
            except asyncio.TimeoutError:
                break
        self.n_batches += 1
        self.n_items += len(batch)
        if sanitizer.enabled():
            # Ownership transfers to *this* coroutine (the node's run
            # task) — not to the internal getter future, which would
            # mis-assign the owner to a task that never mutates.
            for item in batch:
                sanitizer.acquire(item)
        return batch

    @property
    def mean_batch_size(self) -> float:
        return self.n_items / self.n_batches if self.n_batches else 0.0
