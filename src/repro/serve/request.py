"""Request / response / result types for the serving runtime.

A :class:`ServeRequest` is one query travelling through the node tree;
it carries the per-stage latency accumulators and the escalation path
so that the final :class:`ServeResponse` can report where time went:
queue wait, encode, associative search, and escalation round-trip.

:class:`ServeResult` aggregates a whole run and computes **exact**
latency percentiles from the recorded per-request values (unlike the
fixed-bucket :mod:`repro.obs` histograms, which approximate) — the
numbers ``BENCH_serving.json`` and ``repro serve-bench`` report.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.serve.tracing import TraceContext

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle
    from repro.hierarchy.inference import InferenceOutcome
    from repro.obs.telemetry import FlightEvent, TelemetryLog
    from repro.serve.tracing import RequestTraceLog

__all__ = ["StageTimings", "ServeRequest", "ServeResponse", "ServeResult"]

#: per-stage latency keys, in pipeline order.
STAGES = ("queue_wait_ms", "encode_ms", "search_ms", "escalation_rtt_ms")


@dataclass
class StageTimings:
    """Cumulative per-stage latency of one request (milliseconds).

    Batch-level stages (encode, search) charge each cohort member the
    full stage wall time — that is the latency the request experienced
    while waiting for its batch to finish.
    """

    queue_wait_ms: float = 0.0
    encode_ms: float = 0.0
    search_ms: float = 0.0
    escalation_rtt_ms: float = 0.0
    total_ms: float = 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "queue_wait_ms": self.queue_wait_ms,
            "encode_ms": self.encode_ms,
            "search_ms": self.search_ms,
            "escalation_rtt_ms": self.escalation_rtt_ms,
            "total_ms": self.total_ms,
        }


@dataclass
class ServeRequest:
    """One in-flight query (runtime-internal bookkeeping)."""

    index: int
    features: np.ndarray
    start_leaf: int
    arrival_s: float = 0.0
    #: set when the request entered its current node's queue.
    enqueued_s: float = 0.0
    timings: StageTimings = field(default_factory=StageTimings)
    #: (label, confidence, node, level) of the last decision-capable
    #: node visited; None until one is reached (mirrors ``chosen`` in
    #: the offline walk).
    decided: Optional[Tuple[int, float, int, int]] = None
    #: (child, parent) edges this request escalated over — the edges
    #: the answer descends (and is charged) on the way back.
    charged_path: List[Tuple[int, int]] = field(default_factory=list)
    future: Optional["asyncio.Future[ServeResponse]"] = None
    #: per-request trace (None when tracing is disabled). The context
    #: travels with the request through queues and escalation bundles,
    #: which is what propagates the request id and hop path end to end.
    trace: Optional[TraceContext] = None


@dataclass(frozen=True)
class ServeResponse:
    """Terminal outcome of one request."""

    index: int
    start_leaf: int
    #: -1 when the request was shed before any node decided.
    label: int
    confidence: float
    deciding_node: int
    deciding_level: int
    #: True when admission or escalation shedding degraded / refused
    #: the request (``deciding_node == -1`` means refused outright).
    shed: bool
    timings: StageTimings
    #: True when fault injection forced a degraded answer: escalation
    #: retries exhausted, a parent crashed, or a per-hop timeout fired
    #: — the label is the best locally available decision, not the one
    #: the fault-free escalation walk would have produced.
    degraded: bool = False

    @property
    def rejected(self) -> bool:
        return self.deciding_node < 0


class ServeResult:
    """Aggregate outcome of one serving run."""

    def __init__(
        self,
        responses: Sequence[ServeResponse],
        makespan_s: float,
        energy_j: float,
        wire_bytes: int,
        escalations: Dict[Tuple[int, int], int],
        n_shed_admission: int,
        n_shed_escalation: int,
        queue_high_water: Dict[int, int],
        n_retries: int = 0,
        n_timeouts: int = 0,
        flight_events: Optional[List["FlightEvent"]] = None,
        telemetry: Optional["TelemetryLog"] = None,
        traces: Optional["RequestTraceLog"] = None,
        topology: Optional[Dict[str, object]] = None,
    ) -> None:
        self.responses = sorted(responses, key=lambda r: r.index)
        self.makespan_s = float(makespan_s)
        self.energy_j = float(energy_j)
        #: bytes actually charged on the wire (per-flush bundles and
        #: fault-injected retransmissions — may exceed the offline
        #: accounting by bundle fragmentation and retries).
        self.wire_bytes = int(wire_bytes)
        #: queries escalated over each (child -> parent) edge (each
        #: request counted once per edge, retransmissions excluded).
        self.escalations = dict(escalations)
        self.n_shed_admission = int(n_shed_admission)
        self.n_shed_escalation = int(n_shed_escalation)
        #: max depth each node's inbox reached (memory bound witness).
        self.queue_high_water = dict(queue_high_water)
        #: fault injection: (request, attempt) retransmissions issued.
        self.n_retries = int(n_retries)
        #: fault injection: loss-detection / per-hop timeouts that fired.
        self.n_timeouts = int(n_timeouts)
        #: flight-recorder dump: fault events with causal request ids
        #: (empty when the run saw no faults / sheds).
        self.flight_events: List["FlightEvent"] = list(flight_events or [])
        #: labeled time-series sampled during the run (None when
        #: observability was disabled).
        self.telemetry = telemetry
        #: per-request trace-event log (None when tracing was disabled).
        self.traces = traces
        #: runtime topology metadata: workers / replicas_per_shard /
        #: n_shards / shared_memory_bytes (plus eviction counts for
        #: cluster runs). ``{"workers": 1}``-style dict for the
        #: single-process runtime; recorded per cell in
        #: ``BENCH_serving.json``.
        self.topology: Dict[str, object] = dict(topology or {"workers": 1})

    # ------------------------------------------------------------------
    @property
    def n_total(self) -> int:
        return len(self.responses)

    @property
    def n_shed(self) -> int:
        return self.n_shed_admission + self.n_shed_escalation

    @property
    def answered(self) -> List[ServeResponse]:
        """Responses carrying a real decision (shed-degraded included)."""
        return [r for r in self.responses if not r.rejected]

    @property
    def n_answered(self) -> int:
        return len(self.answered)

    @property
    def n_degraded(self) -> int:
        """Responses answered in degraded mode under fault injection."""
        return sum(1 for r in self.responses if r.degraded)

    @property
    def degraded_rate(self) -> float:
        """Fraction of all requests that got a degraded answer."""
        if not self.responses:
            return 0.0
        return self.n_degraded / self.n_total

    @property
    def throughput_rps(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.n_answered / self.makespan_s

    # ------------------------------------------------------------------
    def fingerprint(self) -> Tuple[Tuple[int, int, int, int, int, bool, bool], ...]:
        """Timing-free semantic content of the run, for determinism tests.

        One tuple per request (sorted by index): ``(index, start_leaf,
        label, deciding_node, deciding_level, shed, degraded)``. Under
        a fixed seed and :class:`~repro.serve.faults.FaultPlan` every
        fault decision derives from structural tags, so two runs of the
        same workload produce identical fingerprints even though
        wall-clock timings (and hence micro-batch boundaries) differ.
        Confidences are excluded: dense-backend BLAS accumulation order
        varies with batch shape at the last ulp — compare them with
        ``allclose`` separately.
        """
        return tuple(
            (
                r.index,
                r.start_leaf,
                r.label,
                r.deciding_node,
                r.deciding_level,
                r.shed,
                r.degraded,
            )
            for r in self.responses
        )

    # ------------------------------------------------------------------
    def latencies_ms(self, stage: str = "total_ms") -> np.ndarray:
        """Per-request latency array for one stage (answered only)."""
        values = [getattr(r.timings, stage) for r in self.answered]
        return np.asarray(values, dtype=np.float64)

    def percentiles(
        self, stage: str = "total_ms", qs: Sequence[float] = (50, 95, 99)
    ) -> Dict[str, float]:
        """Exact latency percentiles, e.g. ``{"p50": ..., "p99": ...}``."""
        lat = self.latencies_ms(stage)
        if lat.size == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        return {f"p{q:g}": float(np.percentile(lat, q)) for q in qs}

    def stage_breakdown(self) -> Dict[str, Dict[str, float]]:
        """p50/p95/p99 for every pipeline stage plus the total."""
        return {
            stage: self.percentiles(stage)
            for stage in STAGES + ("total_ms",)
        }

    # ------------------------------------------------------------------
    def to_outcome(self) -> "InferenceOutcome":
        """Convert to an offline-comparable ``InferenceOutcome``.

        The message list is rebuilt from the *aggregated* escalation
        counts with the same compressed-bundle arithmetic the offline
        walk uses, so ``total_bytes`` is directly comparable to
        ``HierarchicalInference.run`` on the same queries. Raises if
        any request was shed or answered in degraded mode (neither has
        an offline equivalent).
        """
        from repro.hierarchy.inference import InferenceOutcome

        if self.n_shed:
            raise ValueError(
                f"cannot convert a run with {self.n_shed} shed requests "
                "to an offline outcome"
            )
        if self.n_degraded:
            raise ValueError(
                f"cannot convert a run with {self.n_degraded} degraded "
                "answers to an offline outcome"
            )
        rs = self.responses
        return InferenceOutcome(
            labels=np.asarray([r.label for r in rs], dtype=np.int64),
            deciding_node=np.asarray(
                [r.deciding_node for r in rs], dtype=np.int64
            ),
            deciding_level=np.asarray(
                [r.deciding_level for r in rs], dtype=np.int64
            ),
            confidence=np.asarray([r.confidence for r in rs], dtype=np.float64),
            start_leaf=np.asarray([r.start_leaf for r in rs], dtype=np.int64),
            messages=list(getattr(self, "_offline_messages", [])),
        )

    def summary(self) -> str:
        """Human-readable one-run report."""
        pct = self.percentiles()
        lines = [
            f"requests: {self.n_total} answered: {self.n_answered} "
            f"shed: {self.n_shed} "
            f"(admission {self.n_shed_admission}, "
            f"escalation {self.n_shed_escalation})",
            f"makespan: {self.makespan_s * 1e3:.1f} ms  "
            f"throughput: {self.throughput_rps:.0f} req/s",
            f"latency total: p50 {pct['p50']:.2f} ms  "
            f"p95 {pct['p95']:.2f} ms  p99 {pct['p99']:.2f} ms",
        ]
        for stage in STAGES:
            p = self.percentiles(stage)
            lines.append(
                f"  {stage:<18} p50 {p['p50']:.3f}  p95 {p['p95']:.3f}  "
                f"p99 {p['p99']:.3f}"
            )
        lines.append(
            f"escalated: {sum(self.escalations.values())} over "
            f"{len(self.escalations)} edges  wire: "
            f"{self.wire_bytes / 1024:.1f} KiB  "
            f"energy: {self.energy_j * 1e3:.2f} mJ"
        )
        if self.n_degraded or self.n_retries or self.n_timeouts:
            lines.append(
                f"faults: degraded {self.n_degraded} "
                f"({self.degraded_rate:.1%})  retries {self.n_retries}  "
                f"timeouts {self.n_timeouts}"
            )
        workers = self.topology.get("workers", 1)
        if isinstance(workers, int) and workers > 1:
            lines.append(
                f"cluster: {workers} workers over "
                f"{self.topology.get('n_shards', '?')} shards "
                f"(x{self.topology.get('replicas_per_shard', '?')} replicas)  "
                f"shared model: "
                f"{int(self.topology.get('shared_memory_bytes', 0)) / 1024:.1f} KiB"
            )
        return "\n".join(lines)
