"""``REPRO_SAN=1`` dynamic race sanitizer for the serving runtime.

The static pass (REPRO111 in :mod:`repro.analysis.flow`) over-
approximates: it cannot see aliasing through containers or mutation
buried in helpers. This module is its dynamic complement — a
generation-counting ownership guard wrapped around every in-flight
:class:`~repro.serve.request.ServeRequest` while tests run with
``REPRO_SAN=1`` (or after :func:`enable`), turning the PR-8 class of
interleaving (mutate a request the consumer may already hold) into an
immediate :class:`RaceError` at the mutation site.

Ownership protocol (mirrors the runtime's handoff discipline):

* creation — the creating code may mutate freely (``owner is None``);
* :func:`publish` — called by :class:`~repro.serve.queueing.
  BoundedQueue` *after* a successful enqueue (``ShedError`` /
  ``QueueTimeout`` are raised before the item ever enters the queue,
  so a failed handoff leaves ownership untouched). While enqueued,
  **any** mutation raises: the producer has surrendered the object but
  the consumer has not picked it up — exactly the window the pre-fix
  ``_forward`` append landed in;
* :func:`acquire` — called by :class:`~repro.serve.batcher.
  MicroBatcher` when the *consuming* coroutine (the node's ``run``
  task — not the internal getter future) receives the batch. From
  then on only the owning task may mutate, until it publishes again
  for the next hop.

Mutations are counted (``generation``); :func:`acquire` cross-checks
the generation recorded at publish time so even a mutation path that
bypassed the proxies is caught at the next handoff.

Nested mutable state that stays on the producer side by contract
(``timings``, ``trace``) is deliberately unguarded — the runtime
mutates those from delivery tasks after the decision is final.
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Iterable, List, Optional

from repro.serve.request import ServeRequest

__all__ = [
    "RaceError",
    "OwnershipGuard",
    "GuardedList",
    "SanitizedServeRequest",
    "request_class",
    "enabled",
    "enable",
    "publish",
    "acquire",
]

_enabled: bool = os.environ.get("REPRO_SAN", "") not in ("", "0")


def enabled() -> bool:
    """True when the sanitizer is active (``REPRO_SAN=1`` or tests)."""
    return _enabled


def enable(flag: bool = True) -> None:
    """Toggle the sanitizer at runtime (tests; overrides the env)."""
    global _enabled
    _enabled = flag


class RaceError(AssertionError):
    """A guarded object was mutated outside its ownership window."""


class _Enqueued:
    """Sentinel owner: the object sits in a queue, nobody may touch it."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<enqueued>"


_ENQUEUED = _Enqueued()


def _current_task() -> Optional["asyncio.Task[Any]"]:
    try:
        return asyncio.current_task()
    except RuntimeError:  # no running loop (sync construction in tests)
        return None


class OwnershipGuard:
    """Generation-counting single-owner guard for one request."""

    __slots__ = ("describe", "owner", "generation", "published_generation")

    def __init__(self, describe: str) -> None:
        self.describe = describe
        #: None (creator), :data:`_ENQUEUED`, or the owning task.
        self.owner: Any = None
        self.generation = 0
        self.published_generation = -1

    def on_mutate(self, what: str) -> None:
        """Record a mutation; raise when the caller does not own it."""
        if self.owner is _ENQUEUED:
            raise RaceError(
                f"REPRO_SAN: {what} on {self.describe} while it is "
                f"enqueued for another task (generation "
                f"{self.generation}, published at "
                f"{self.published_generation}) — mutate before the "
                f"handoff, not after the await"
            )
        if self.owner is not None:
            task = _current_task()
            if task is not None and task is not self.owner:
                raise RaceError(
                    f"REPRO_SAN: {what} on {self.describe} from task "
                    f"{task.get_name()!r} but it is owned by "
                    f"{self.owner.get_name()!r}"
                )
        self.generation += 1

    def publish(self) -> None:
        """The current owner handed the object to a queue."""
        self.owner = _ENQUEUED
        self.published_generation = self.generation

    def acquire(self) -> None:
        """The consuming task picked the object up."""
        if (
            self.owner is _ENQUEUED
            and self.generation != self.published_generation
        ):
            raise RaceError(
                f"REPRO_SAN: {self.describe} changed while enqueued "
                f"(generation {self.generation} != published "
                f"{self.published_generation})"
            )
        self.owner = _current_task()


class GuardedList(List[Any]):
    """A list that reports every mutation to its guard."""

    __slots__ = ("_guard",)

    def __init__(self, items: Iterable[Any], guard: OwnershipGuard) -> None:
        super().__init__(items)
        self._guard = guard

    def _check(self, what: str) -> None:
        self._guard.on_mutate(what)

    def append(self, item: Any) -> None:
        self._check("append")
        super().append(item)

    def extend(self, items: Iterable[Any]) -> None:
        self._check("extend")
        super().extend(items)

    def insert(self, index: int, item: Any) -> None:
        self._check("insert")
        super().insert(index, item)

    def remove(self, item: Any) -> None:
        self._check("remove")
        super().remove(item)

    def pop(self, index: int = -1) -> Any:
        self._check("pop")
        return super().pop(index)

    def clear(self) -> None:
        self._check("clear")
        super().clear()

    def sort(self, **kwargs: Any) -> None:
        self._check("sort")
        super().sort(**kwargs)

    def reverse(self) -> None:
        self._check("reverse")
        super().reverse()

    def __setitem__(self, index: Any, value: Any) -> None:
        self._check("setitem")
        super().__setitem__(index, value)

    def __delitem__(self, index: Any) -> None:
        self._check("delitem")
        super().__delitem__(index)

    def __iadd__(self, items: Iterable[Any]) -> "GuardedList":
        self._check("iadd")
        super().extend(items)
        return self


class SanitizedServeRequest(ServeRequest):
    """A :class:`ServeRequest` whose mutations are ownership-checked.

    ``timings`` and ``trace`` hold nested mutable state that the
    runtime legitimately updates from delivery tasks; the guard covers
    direct attribute rebinding and ``charged_path``.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        guard = OwnershipGuard(describe=f"ServeRequest #{self.index}")
        self.__dict__["charged_path"] = GuardedList(self.charged_path, guard)
        self.__dict__["_san_guard"] = guard

    def __setattr__(self, name: str, value: Any) -> None:
        guard = self.__dict__.get("_san_guard")
        if guard is not None:
            guard.on_mutate(f"set .{name}")
        object.__setattr__(self, name, value)


def request_class() -> type:
    """The request class the runtime should instantiate right now."""
    return SanitizedServeRequest if _enabled else ServeRequest


def publish(item: Any) -> None:
    """Queue hook: ``item`` was successfully enqueued."""
    if not _enabled:
        return
    guard = getattr(item, "_san_guard", None)
    if guard is not None:
        guard.publish()


def acquire(item: Any) -> None:
    """Consumer hook: the owning coroutine received ``item``."""
    if not _enabled:
        return
    guard = getattr(item, "_san_guard", None)
    if guard is not None:
        guard.acquire()
