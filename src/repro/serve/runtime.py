"""Asyncio serving runtime over a trained hierarchical inference tree.

Every hierarchy node becomes a :class:`_NodeServer`: a bounded inbox
(:class:`~repro.serve.queueing.BoundedQueue`), a
:class:`~repro.serve.batcher.MicroBatcher`, and a processing loop that
encodes + classifies each micro-batch in one vectorized call and routes
every cohort member with *exactly* the decision rule of the offline
walk in :meth:`HierarchicalInference.run`:

* below ``min_level`` — escalate unconditionally (costs a hop);
* within ``[min_level, cap]`` — record the decision; answer when
  confident, at the cap, or at the root; otherwise escalate;
* above ``cap`` (ragged hierarchies) — answer with the last recorded
  decision, or fall through to the root's model when none exists.

Escalated cohorts travel as compressed ``m``-query bundles (Eq. 3):
the uplink is charged ``ceil(count / m) * compressed_bundle_bytes``
through the edge's :class:`~repro.network.medium.Medium` — transfer
time is simulated with ``asyncio.sleep``, energy and bytes accumulate
in the result. Answers descend the escalation path as 4-byte
predictions, exactly the byte accounting of
:meth:`HierarchicalInference.escalation_messages`.

The runtime computes node encodings from the raw feature rows
(:meth:`EdgeHDFederation.encode_at` — deterministic, so micro-batch
composition cannot change any answer) rather than decoding the noisy
bundles; the offline walk charges wire bytes the same way, which is
what keeps served and offline outcomes identical.

With a :class:`~repro.serve.faults.FaultPlan` the same tree serves
through an unreliable network: escalation attempts drop and pay
latency jitter, in-flight bundles lose dimensions/blocks, and non-root
nodes crash for configured windows. Senders detect failures by
timeout, retry with exponential backoff up to ``max_attempts``, and —
when the parent stays unreachable — answer in **degraded mode** from
the best locally available decision (the node's own model if nothing
decided yet), flagged on :class:`ServeResponse`. Every request always
receives exactly one terminal response; with no plan (or an inert
one) the behaviour is bit-for-bit the fault-free fast path.
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

import repro.obs as obs
from repro.core.compression import compressed_bundle_bytes
from repro.core.search import SearchSpec
from repro.hierarchy.inference import HierarchicalInference
from repro.network.medium import Medium
from repro.obs.telemetry import FlightRecorder, TelemetryLog, TelemetrySampler
import repro.serve.sanitizer as sanitizer
from repro.serve.batcher import MicroBatcher
from repro.serve.faults import FaultPlan
from repro.serve.queueing import POLICIES, BoundedQueue, QueueTimeout, ShedError
from repro.serve.request import ServeRequest, ServeResponse, ServeResult
from repro.serve.tracing import RequestTraceLog, TraceContext
from repro.serve.workload import ServeWorkload, poisson_arrivals

__all__ = ["ServeConfig", "ServingRuntime"]

logger = logging.getLogger(__name__)

#: bytes of one downstream prediction (a class index), as charged by
#: the offline walk.
_PREDICTION_BYTES = 4


@dataclass(frozen=True)
class ServeConfig:
    """Tunables of the serving runtime."""

    #: flush a node's micro-batch at this size ...
    max_batch: int = 32
    #: ... or after this many milliseconds, whichever first.
    max_wait_ms: float = 2.0
    #: bounded inbox depth per node.
    queue_depth: int = 64
    #: backpressure policy: ``"block"`` or ``"shed"``.
    policy: str = "block"
    #: escalation ceiling (``None`` = hierarchy depth), as in
    #: ``HierarchicalInference.run(max_level=...)``.
    max_level: Optional[int] = None
    #: simulated per-flush compute time: ``base + per_query * batch``
    #: seconds (0 = as fast as the hardware allows; used to model slow
    #: nodes and to force overload in tests).
    service_time_base_s: float = 0.0
    service_time_per_query_s: float = 0.0
    #: telemetry sampler tick (queue depth / in-flight / per-node fault
    #: counters); only runs when observability is enabled.
    telemetry_interval_ms: float = 25.0
    #: associative-search override for every node's classify call
    #: (:class:`repro.core.search.SearchSpec`); ``None`` serves with
    #: the inference object's own spec, which is what keeps served
    #: answers bit-identical to the offline walk.
    search: Optional[SearchSpec] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.queue_depth < 1:
            raise ValueError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {self.policy!r}"
            )
        if self.service_time_base_s < 0 or self.service_time_per_query_s < 0:
            raise ValueError("service times must be >= 0")
        if self.telemetry_interval_ms <= 0:
            raise ValueError(
                f"telemetry_interval_ms must be > 0, got "
                f"{self.telemetry_interval_ms}"
            )
        if self.search is not None and not isinstance(self.search, SearchSpec):
            raise TypeError(
                f"search must be a SearchSpec or None, got "
                f"{type(self.search).__name__}"
            )


class _NodeServer:
    """One hierarchy node's inbox, batcher and processing loop."""

    def __init__(
        self, runtime: "ServingRuntime", node_id: int, config: ServeConfig
    ) -> None:
        self.runtime = runtime
        self.node_id = node_id
        self.node = runtime.hierarchy.nodes[node_id]
        self.queue = BoundedQueue(config.queue_depth, config.policy)
        self.batcher = MicroBatcher(
            self.queue, config.max_batch, config.max_wait_ms
        )
        #: size of the most recent micro-batch (telemetry probe reads it).
        self.last_batch = 0

    async def run(self) -> None:
        while True:
            batch = await self.batcher.next_batch()
            await self._process(batch)

    # ------------------------------------------------------------------
    async def _process(self, batch: List[ServeRequest]) -> None:
        rt = self.runtime
        inf = rt.inference
        loop = asyncio.get_running_loop()
        now = loop.time()
        now_ms = (now - rt._t0) * 1e3
        self.last_batch = len(batch)
        for req in batch:
            wait_ms = (now - req.enqueued_s) * 1e3
            req.timings.queue_wait_ms += wait_ms
            if req.trace is not None:
                req.trace.visit(self.node_id)
                req.trace.emit(
                    "hop", now_ms, node=self.node_id,
                    queue_wait_ms=wait_ms, batch=len(batch),
                )
        cfg = rt.config
        service = (
            cfg.service_time_base_s
            + cfg.service_time_per_query_s * len(batch)
        )
        if service > 0:
            await asyncio.sleep(service)

        level = self.node.level
        if level < inf.min_level:
            # Sensing-only tier: never decides, always forwards.
            await self._escalate(batch)
            return
        if level > rt.cap:
            await self._above_cap(batch)
            return

        labels, conf = self._predict(batch)
        answer: List[ServeRequest] = []
        escalate: List[ServeRequest] = []
        for i, req in enumerate(batch):
            req.decided = (int(labels[i]), float(conf[i]), self.node_id, level)
            answers_here = (
                conf[i] >= inf.confidence_threshold
                or level == rt.cap
                or self.node.parent is None
            )
            if answers_here:
                answer.append(req)
            else:
                escalate.append(req)
            if req.trace is not None:
                req.trace.emit(
                    "decide", rt._now_ms(), node=self.node_id, level=level,
                    label=int(labels[i]), confidence=float(conf[i]),
                    action="answer" if answers_here else "escalate",
                )
        for req in answer:
            rt._answer(req)
        if escalate:
            await self._escalate(escalate)

    async def _above_cap(self, batch: List[ServeRequest]) -> None:
        """Ragged hierarchy: this node sits past the escalation cap.

        Queries that already saw a decision-capable node answer with
        that decision; the rest fall through to the root's model — the
        root predicts and answers unconditionally, charging no extra
        wire bytes, exactly as the offline walk's fallback.
        """
        rt = self.runtime
        undecided = [req for req in batch if req.decided is None]
        for req in batch:
            if req.decided is not None:
                if req.trace is not None:
                    req.trace.emit(
                        "decide", rt._now_ms(), node=self.node_id,
                        level=self.node.level, action="answer_cached",
                    )
                rt._answer(req)
        if not undecided:
            return
        if self.node_id != rt.root_id:
            await rt._forward(undecided, rt.root_id, origin=self)
            return
        labels, conf = self._predict(undecided)
        for i, req in enumerate(undecided):
            req.decided = (
                int(labels[i]), float(conf[i]), self.node_id, self.node.level
            )
            if req.trace is not None:
                req.trace.emit(
                    "decide", rt._now_ms(), node=self.node_id,
                    level=self.node.level, label=int(labels[i]),
                    confidence=float(conf[i]), action="answer",
                )
            rt._answer(req)

    # ------------------------------------------------------------------
    def _predict(
        self, batch: List[ServeRequest]
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One vectorized encode + associative search for the cohort."""
        rt = self.runtime
        rows = np.stack([req.features for req in batch])
        t0 = time.perf_counter()
        encoded = rt.federation.encode_at(self.node_id, rows, view="own")
        plan = rt.plan
        if plan is not None and plan.corrupts_payload:
            # Replay the wire damage onto rows that escalated to get
            # here; the pattern derives from (seed, node, request), so
            # batch composition cannot change it.
            encoded = np.asarray(encoded, dtype=np.float64)
            for i, req in enumerate(batch):
                if req.charged_path:
                    encoded[i] = plan.corrupt(
                        encoded[i], self.node_id, req.index
                    )
                    if req.trace is not None:
                        req.trace.emit(
                            "corrupt", rt._now_ms(), node=self.node_id
                        )
                    if obs.enabled():
                        obs.incr("serve.faults.corrupted")
                        rt.flight.record(
                            "corrupt", rt._elapsed(), node=self.node_id,
                            request_id=req.index,
                        )
        t1 = time.perf_counter()
        result = rt.federation.classifiers[self.node_id].predict(
            encoded, search=rt.search
        )
        t2 = time.perf_counter()
        encode_ms = (t1 - t0) * 1e3
        search_ms = (t2 - t1) * 1e3
        now_ms = rt._now_ms() if batch and batch[0].trace is not None else 0.0
        for req in batch:
            req.timings.encode_ms += encode_ms
            req.timings.search_ms += search_ms
            if req.trace is not None:
                req.trace.emit(
                    "encode", now_ms, node=self.node_id,
                    ms=encode_ms, batch=len(batch),
                )
                req.trace.emit(
                    "search", now_ms, node=self.node_id, ms=search_ms
                )
        rt.n_batches += 1
        if obs.enabled():
            obs.incr("serve.batches")
            obs.observe("serve.batch_size", len(batch), bounds=rt._BATCH_BUCKETS)
            obs.observe("serve.latency.encode_ms", encode_ms)
            obs.observe("serve.latency.search_ms", search_ms)
        return result.labels, result.top_confidence

    def _bundle_payload(self, count: int, parent: int) -> int:
        """Wire bytes of ``count`` queries bundled toward ``parent``."""
        rt = self.runtime
        m = rt.inference.compression_count
        parent_in_dim = sum(
            rt.hierarchy.nodes[c].dimension
            for c in rt.hierarchy.nodes[parent].children
        )
        n_bundles = (count + m - 1) // m
        return n_bundles * compressed_bundle_bytes(parent_in_dim, m)

    async def _transmit(
        self,
        cohort: List[ServeRequest],
        parent: int,
        payload: int,
        jitter_s: float = 0.0,
        count_escalation: bool = True,
    ) -> None:
        """Charge and simulate one uplink bundle transfer.

        ``count_escalation`` is False for fault-injected
        retransmissions: the wire bytes and energy are spent again, but
        the request is only counted once per escalation edge so the
        aggregated escalation map stays comparable across runs.
        """
        rt = self.runtime
        medium = rt._edge_medium(self.node_id, parent)
        delay = medium.transfer_time(payload, jitter_s=jitter_s)
        rt.energy_j += medium.transfer_energy(payload)
        rt.wire_bytes += payload
        edge = (self.node_id, parent)
        if count_escalation:
            rt.escalations[edge] = rt.escalations.get(edge, 0) + len(cohort)
            if obs.enabled():
                obs.incr("serve.escalated", len(cohort))
        if obs.enabled():
            obs.incr("serve.escalation.bytes", payload)
        # Store-and-forward: the uplink transfer occupies this node.
        await asyncio.sleep(delay)
        delay_ms = delay * 1e3
        for req in cohort:
            req.timings.escalation_rtt_ms += delay_ms
            if req.trace is not None:
                req.trace.emit(
                    "transit", rt._now_ms(), node=self.node_id,
                    edge=f"{self.node_id}->{parent}", ms=delay_ms,
                    bytes=payload,
                )

    async def _escalate(self, cohort: List[ServeRequest]) -> None:
        """Ship the cohort upward as compressed m-query bundles.

        Without a fault plan this is a single reliable transfer. Under
        a plan each request's send is a per-attempt Bernoulli draw
        (crashed parents fail the whole attempt); dropped requests wait
        out the loss-detection timeout plus exponential backoff and are
        retransmitted, up to ``max_attempts`` total tries, after which
        they are answered in degraded mode instead of hanging.
        """
        rt = self.runtime
        parent = self.node.parent
        assert parent is not None, "root nodes never escalate"
        plan = rt.plan
        edge = (self.node_id, parent)
        edge_tag = f"{self.node_id}->{parent}"
        if plan is None:
            for req in cohort:
                if req.trace is not None:
                    req.trace.attempts += 1
                    req.trace.emit(
                        "escalate", rt._now_ms(), node=self.node_id,
                        edge=edge_tag, attempt=1,
                    )
            payload = self._bundle_payload(len(cohort), parent)
            await self._transmit(cohort, parent, payload)
            await rt._forward(cohort, parent, via_edge=edge, origin=self)
            return
        pending = cohort
        attempt = 0
        counted = False
        while pending:
            attempt += 1
            for req in pending:
                if req.trace is not None:
                    req.trace.attempts += 1
                    req.trace.emit(
                        "escalate", rt._now_ms(), node=self.node_id,
                        edge=edge_tag, attempt=attempt,
                    )
            delivered: List[ServeRequest] = []
            dropped: List[ServeRequest] = []
            parent_dead = plan.crashed(parent, rt._elapsed())
            if parent_dead:
                # Dead parent: the whole attempt fails; nothing reaches
                # the radio on the other side, so no bytes are charged.
                dropped = pending
            else:
                payload = self._bundle_payload(len(pending), parent)
                for req in pending:
                    failed = plan.message_dropped(
                        edge, req.index, attempt, payload
                    )
                    (dropped if failed else delivered).append(req)
                jitter = plan.jitter_s(edge, pending[0].index, attempt)
                await self._transmit(
                    pending, parent, payload, jitter_s=jitter,
                    count_escalation=not counted,
                )
                counted = True
                if delivered:
                    await rt._forward(
                        delivered, parent, via_edge=edge, origin=self
                    )
            if not dropped:
                return
            drop_reason = "parent_crashed" if parent_dead else "message_lost"
            for req in dropped:
                if req.trace is not None:
                    req.trace.emit(
                        "drop", rt._now_ms(), node=self.node_id,
                        edge=edge_tag, attempt=attempt, reason=drop_reason,
                    )
                if obs.enabled():
                    rt.flight.record(
                        "drop", rt._elapsed(), node=self.node_id,
                        request_id=req.index, edge=edge_tag,
                        attempt=attempt, reason=drop_reason,
                    )
            # Loss detection: the sender waits out the ack timeout (and
            # the backoff when a retry is still allowed).
            rt.n_timeouts += 1
            rt.timeouts_by_node[self.node_id] = (
                rt.timeouts_by_node.get(self.node_id, 0) + 1
            )
            if obs.enabled():
                obs.incr("serve.timeouts")
                rt.flight.record(
                    "timeout", rt._elapsed(), node=self.node_id,
                    edge=edge_tag, attempt=attempt, n=len(dropped),
                )
            exhausted = attempt >= plan.max_attempts
            delay = plan.timeout_s + (
                0.0 if exhausted else plan.backoff_s(attempt - 1)
            )
            for req in dropped:
                if req.trace is not None:
                    req.trace.emit(
                        "timeout", rt._now_ms(), node=self.node_id,
                        edge=edge_tag, attempt=attempt,
                    )
                    if not exhausted and delay > 0:
                        req.trace.emit(
                            "backoff", rt._now_ms(), node=self.node_id,
                            attempt=attempt, wait_ms=delay * 1e3,
                        )
            if delay > 0:
                await asyncio.sleep(delay)
                delay_ms = delay * 1e3
                for req in dropped:
                    req.timings.escalation_rtt_ms += delay_ms
            if exhausted:
                if obs.enabled():
                    obs.incr("serve.faults.exhausted", len(dropped))
                rt._degrade_cohort(self, dropped, reason="retries_exhausted")
                return
            rt.n_retries += len(dropped)
            rt.retries_by_node[self.node_id] = (
                rt.retries_by_node.get(self.node_id, 0) + len(dropped)
            )
            if obs.enabled():
                obs.incr("serve.retries", len(dropped))
            for req in dropped:
                if req.trace is not None:
                    req.trace.emit(
                        "retry", rt._now_ms(), node=self.node_id,
                        edge=edge_tag, attempt=attempt + 1,
                    )
            pending = dropped


class ServingRuntime:
    """Serve a trained :class:`HierarchicalInference` tree as a system.

    Parameters
    ----------
    inference:
        The trained escalation pipeline; its threshold, compression
        count, ``min_level`` and :class:`SearchSpec` all apply
        verbatim (``config.search`` may override the spec for this
        runtime only).
    medium:
        Link model charged for every escalation / answer transfer.
    config:
        Batching, queueing and backpressure tunables.
    media_by_level:
        Optional per-child-level medium override, as in
        :class:`~repro.network.simulator.NetworkSimulator`.
    fault_plan:
        Optional deterministic chaos schedule
        (:class:`~repro.serve.faults.FaultPlan`). An inert plan (every
        knob zero) behaves exactly like ``None``.
    """

    _BATCH_BUCKETS = tuple(float(2 ** i) for i in range(0, 11))

    def __init__(
        self,
        inference: HierarchicalInference,
        medium: Medium,
        config: Optional[ServeConfig] = None,
        media_by_level: Optional[Dict[int, Medium]] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.inference = inference
        self.federation = inference.federation
        self.hierarchy = self.federation.hierarchy
        self.medium = medium
        self.media_by_level = media_by_level or {}
        self.config = config or ServeConfig()
        self.cap = inference.effective_cap(self.config.max_level)
        #: resolved associative-search spec every node serves with.
        self.search: SearchSpec = (
            self.config.search
            if self.config.search is not None
            else inference.search
        )
        root = self.hierarchy.root_id
        assert root is not None
        self.root_id: int = root
        self.fault_plan = fault_plan
        if fault_plan is not None:
            unknown = set(fault_plan.crash_windows) - set(self.hierarchy.nodes)
            if unknown:
                raise ValueError(
                    f"crash_windows names unknown nodes {sorted(unknown)}"
                )
            if self.root_id in fault_plan.crash_windows:
                raise ValueError(
                    "the root node cannot crash: it is the escalation "
                    "fallback of last resort"
                )
        #: the plan the serving loops consult; an inert plan is
        #: normalized to None so the fault-free fast path stays
        #: bit-identical to running without one.
        self.plan: Optional[FaultPlan] = (
            fault_plan if fault_plan is not None and fault_plan.active else None
        )
        self._reset_state()

    # ------------------------------------------------------------------
    def _reset_state(self) -> None:
        self.nodes: Dict[int, _NodeServer] = {}
        self.escalations: Dict[Tuple[int, int], int] = {}
        self.energy_j = 0.0
        self.wire_bytes = 0
        self.n_batches = 0
        self.n_shed_admission = 0
        self.n_shed_escalation = 0
        self.n_retries = 0
        self.n_timeouts = 0
        self.n_inflight = 0
        #: per-node fault tallies the telemetry sampler exports as
        #: labeled series (kept even when observability is disabled —
        #: three dict bumps on fault paths cost nothing measurable).
        self.retries_by_node: Dict[int, int] = {}
        self.timeouts_by_node: Dict[int, int] = {}
        self.degraded_by_node: Dict[int, int] = {}
        #: fault events with causal request ids (recorded only while
        #: observability is enabled).
        self.flight = FlightRecorder()
        #: finished requests flush their trace events here.
        self.trace_log = RequestTraceLog()
        #: time-series the sampler recorded (None when obs disabled).
        self.telemetry: Optional[TelemetryLog] = None
        self._responses: List[ServeResponse] = []
        self._deliveries: set = set()
        self._t0 = 0.0
        self._last_completion = 0.0

    def _elapsed(self) -> float:
        """Seconds since the serving run started (crash-window clock)."""
        return asyncio.get_running_loop().time() - self._t0

    def _now_ms(self) -> float:
        """Milliseconds since run start — the shared trace/telemetry
        /flight-recorder clock."""
        return self._elapsed() * 1e3

    def _edge_medium(self, source: int, destination: int) -> Medium:
        lower = min(
            self.hierarchy.nodes[source].level,
            self.hierarchy.nodes[destination].level,
        )
        return self.media_by_level.get(lower, self.medium)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def serve_open_loop(
        self,
        workload: ServeWorkload,
        rate_rps: float,
        seed: int = 0,
        arrivals: Optional[np.ndarray] = None,
    ) -> ServeResult:
        """Open-loop serving: submit on a fixed arrival schedule.

        ``arrivals`` (absolute seconds) overrides the default Poisson
        schedule drawn at ``rate_rps`` from ``seed``. Arrivals are
        honored regardless of system state — under overload the
        bounded queues shed or block per the configured policy.
        """
        if arrivals is None:
            arrivals = poisson_arrivals(len(workload), rate_rps, seed)
        else:
            arrivals = np.asarray(arrivals, dtype=np.float64)
            if arrivals.shape != (len(workload),):
                raise ValueError(
                    f"arrivals must have shape ({len(workload)},), got "
                    f"{arrivals.shape}"
                )
        return asyncio.run(self._serve(workload, arrivals=arrivals))

    def serve_closed_loop(
        self,
        workload: ServeWorkload,
        n_clients: int = 4,
        think_time_s: float = 0.0,
    ) -> ServeResult:
        """Closed-loop serving: ``n_clients`` requests in flight.

        Each client submits its next query once the previous answer
        (or shed notice) came back, after ``think_time_s``.
        """
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {n_clients}")
        if think_time_s < 0:
            raise ValueError(
                f"think_time_s must be >= 0, got {think_time_s}"
            )
        return asyncio.run(
            self._serve(
                workload, n_clients=n_clients, think_time_s=think_time_s
            )
        )

    # ------------------------------------------------------------------
    async def _serve(
        self,
        workload: ServeWorkload,
        arrivals: Optional[np.ndarray] = None,
        n_clients: int = 0,
        think_time_s: float = 0.0,
    ) -> ServeResult:
        self._reset_state()
        loop = asyncio.get_running_loop()
        self._t0 = loop.time()
        self._last_completion = self._t0
        for node_id in self.hierarchy.nodes:
            self.nodes[node_id] = _NodeServer(self, node_id, self.config)
        node_tasks = [
            asyncio.ensure_future(server.run())
            for server in self.nodes.values()
        ]
        tracing = obs.enabled()
        request_cls = sanitizer.request_class()
        requests = [
            request_cls(
                index=i,
                features=workload.features[i],
                start_leaf=int(workload.start_leaves[i]),
                future=loop.create_future(),
                trace=TraceContext(i) if tracing else None,
            )
            for i in range(len(workload))
        ]
        sampler: Optional[TelemetrySampler] = None
        sampler_task: Optional["asyncio.Task[None]"] = None
        if tracing:
            self.telemetry = TelemetryLog()
            sampler = TelemetrySampler(
                self._telemetry_readings,
                interval_s=self.config.telemetry_interval_ms / 1e3,
                log=self.telemetry,
                registry=obs.get_registry(),
                clock=self._elapsed,
            )
            sampler_task = asyncio.ensure_future(sampler.run())
        with obs.span(
            "serve", n=len(requests), policy=self.config.policy,
            max_batch=self.config.max_batch,
        ):
            try:
                if arrivals is not None:
                    await self._open_loop(requests, arrivals)
                else:
                    clients = [
                        asyncio.ensure_future(
                            self._client(requests[c::n_clients], think_time_s)
                        )
                        for c in range(n_clients)
                    ]
                    await asyncio.gather(*clients)
                await asyncio.gather(*(req.future for req in requests))
            finally:
                if sampler_task is not None:
                    sampler_task.cancel()
                    await asyncio.gather(sampler_task, return_exceptions=True)
                if sampler is not None:
                    # Final tick so even sub-interval runs get a sample.
                    sampler.sample_once()
                for task in node_tasks:
                    task.cancel()
                await asyncio.gather(*node_tasks, return_exceptions=True)
                for server in self.nodes.values():
                    server.batcher.close()
                for task in list(self._deliveries):
                    task.cancel()
        makespan = max(self._last_completion - self._t0, 0.0)
        result = ServeResult(
            responses=self._responses,
            makespan_s=makespan,
            energy_j=self.energy_j,
            wire_bytes=self.wire_bytes,
            escalations=self.escalations,
            n_shed_admission=self.n_shed_admission,
            n_shed_escalation=self.n_shed_escalation,
            queue_high_water={
                nid: server.queue.stats.high_water
                for nid, server in self.nodes.items()
            },
            n_retries=self.n_retries,
            n_timeouts=self.n_timeouts,
            flight_events=self.flight.events() if tracing else None,
            telemetry=self.telemetry,
            traces=self.trace_log if tracing else None,
            topology={
                "workers": 1,
                "replicas_per_shard": 1,
                "n_shards": 1,
                "shared_memory_bytes": 0,
            },
        )
        # Offline-comparable message list (aggregated bundle math).
        result._offline_messages = self.inference.escalation_messages(
            self.escalations
        )
        logger.info(
            "serve: %d requests, %d answered, %d shed, %.0f req/s",
            result.n_total, result.n_answered, result.n_shed,
            result.throughput_rps,
        )
        return result

    async def _open_loop(
        self, requests: List[ServeRequest], arrivals: np.ndarray
    ) -> None:
        loop = asyncio.get_running_loop()
        for req, at in zip(requests, arrivals):
            delay = self._t0 + float(at) - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            await self.submit(req)

    async def _client(
        self, requests: List[ServeRequest], think_time_s: float
    ) -> None:
        for req in requests:
            await self.submit(req)
            await req.future
            if think_time_s > 0:
                await asyncio.sleep(think_time_s)

    # ------------------------------------------------------------------
    async def submit(self, req: ServeRequest) -> None:
        """Admit one request at its start leaf (policy applies).

        A crashed entry node refuses admission outright: the request
        completes immediately as a degraded rejection rather than
        waiting on a dead inbox.
        """
        loop = asyncio.get_running_loop()
        req.arrival_s = loop.time()
        req.enqueued_s = req.arrival_s
        self.n_inflight += 1
        if obs.enabled():
            obs.incr("serve.requests")
        if req.trace is not None:
            req.trace.emit("admitted", self._now_ms(), node=req.start_leaf)
        if self.plan is not None and self.plan.crashed(
            req.start_leaf, self._elapsed()
        ):
            if req.trace is not None:
                req.trace.emit(
                    "degraded", self._now_ms(), node=req.start_leaf,
                    reason="crashed_admission",
                )
            if obs.enabled():
                obs.incr("serve.faults.crashed_admission")
                self.flight.record(
                    "crash_admission", self._elapsed(), node=req.start_leaf,
                    request_id=req.index,
                )
            self._finish(req, label=-1, confidence=0.0, node=-1, level=-1,
                         shed=False, degraded=True)
            return
        try:
            await self.nodes[req.start_leaf].queue.put(req)
        except ShedError:
            self.n_shed_admission += 1
            if req.trace is not None:
                req.trace.emit(
                    "shed", self._now_ms(), node=req.start_leaf,
                    reason="admission",
                )
            if obs.enabled():
                obs.incr("serve.shed.admission")
                self.flight.record(
                    "shed", self._elapsed(), node=req.start_leaf,
                    request_id=req.index, reason="admission",
                )
            self._finish(req, label=-1, confidence=0.0, node=-1, level=-1,
                         shed=True)

    async def _forward(
        self,
        cohort: List[ServeRequest],
        destination: int,
        via_edge: Optional[Tuple[int, int]] = None,
        origin: Optional[_NodeServer] = None,
    ) -> None:
        """Hand a cohort to another node's inbox (policy applies).

        ``via_edge`` marks a charged escalation edge: on success it
        joins the request's answer-descent path; on shed the request
        degrades to its last decision (the uplink was already spent —
        the parent dropped the bundle). Under a fault plan the blocking
        put is bounded by ``hop_timeout_s``: when it expires the
        request is answered in degraded mode at ``origin`` (the sending
        node) instead of wedging the sender forever.
        """
        loop = asyncio.get_running_loop()
        queue = self.nodes[destination].queue
        plan = self.plan
        timeout_s = plan.hop_timeout_s if plan is not None else None
        for req in cohort:
            req.enqueued_s = loop.time()
            # Charge the edge *before* the put: once the request is in
            # the destination inbox the batcher may classify it on any
            # scheduler tick, and damage replay keys off charged_path —
            # appending after the await races the consumer. The failure
            # arms below un-charge it (the consumer never saw it).
            if via_edge is not None:
                req.charged_path.append(via_edge)
            try:
                await queue.put(req, timeout_s=timeout_s)
            except ShedError:
                if via_edge is not None:
                    req.charged_path.pop()
                self.n_shed_escalation += 1
                if req.trace is not None:
                    req.trace.emit(
                        "shed", self._now_ms(), node=destination,
                        reason="escalation",
                    )
                if obs.enabled():
                    obs.incr("serve.shed.escalation")
                    self.flight.record(
                        "shed", self._elapsed(), node=destination,
                        request_id=req.index, reason="escalation",
                    )
                if req.decided is not None:
                    self._answer(req, shed=True)
                else:
                    self._finish(req, label=-1, confidence=0.0, node=-1,
                                 level=-1, shed=True)
                continue
            except QueueTimeout:
                if via_edge is not None:
                    req.charged_path.pop()
                self.n_timeouts += 1
                self.timeouts_by_node[destination] = (
                    self.timeouts_by_node.get(destination, 0) + 1
                )
                if req.trace is not None:
                    req.trace.emit(
                        "timeout", self._now_ms(), node=destination,
                        reason="hop_timeout",
                    )
                if obs.enabled():
                    obs.incr("serve.timeouts")
                    self.flight.record(
                        "timeout", self._elapsed(), node=destination,
                        request_id=req.index, reason="hop_timeout",
                    )
                if origin is not None:
                    self._degrade_cohort(origin, [req], reason="hop_timeout")
                    continue
                if req.trace is not None:
                    req.trace.emit(
                        "degraded", self._now_ms(), node=destination,
                        reason="hop_timeout",
                    )
                if obs.enabled():
                    self.flight.record(
                        "degraded", self._elapsed(), node=destination,
                        request_id=req.index, reason="hop_timeout",
                    )
                if req.decided is not None:
                    self._answer(req, degraded=True)
                else:
                    self._finish(req, label=-1, confidence=0.0, node=-1,
                                 level=-1, shed=False, degraded=True)
                continue

    def _degrade_cohort(
        self,
        server: _NodeServer,
        cohort: List[ServeRequest],
        reason: str = "retries_exhausted",
    ) -> None:
        """Answer ``cohort`` in degraded mode at ``server``'s node.

        Requests that already passed a decision-capable node answer
        with that decision; the rest are classified by this node's own
        model — even below ``min_level`` — because a sensing node whose
        uplink is gone answering from its local model is the graceful
        degradation the paper's robustness study argues for (better a
        low-tier answer than none).
        """
        undecided = [req for req in cohort if req.decided is None]
        if undecided:
            labels, conf = server._predict(undecided)
            level = server.node.level
            for i, req in enumerate(undecided):
                req.decided = (
                    int(labels[i]), float(conf[i]), server.node_id, level
                )
        for req in cohort:
            if req.trace is not None:
                req.trace.emit(
                    "degraded", self._now_ms(), node=server.node_id,
                    reason=reason,
                )
            if obs.enabled():
                self.flight.record(
                    "degraded", self._elapsed(), node=server.node_id,
                    request_id=req.index, reason=reason,
                )
            self._answer(req, degraded=True)

    # ------------------------------------------------------------------
    # answers
    # ------------------------------------------------------------------
    def _answer(
        self, req: ServeRequest, shed: bool = False, degraded: bool = False
    ) -> None:
        """Complete a request with its recorded decision.

        The 4-byte prediction descends every escalation edge the query
        climbed; each hop charges its medium's time and energy.
        """
        assert req.decided is not None
        label, confidence, node, level = req.decided
        delay = 0.0
        for child, parent in reversed(req.charged_path):
            medium = self._edge_medium(parent, child)
            delay += medium.transfer_time(_PREDICTION_BYTES)
            self.energy_j += medium.transfer_energy(_PREDICTION_BYTES)
            self.wire_bytes += _PREDICTION_BYTES
        if req.trace is not None and req.charged_path:
            req.trace.emit(
                "descend", self._now_ms(), node=node,
                hops=len(req.charged_path), ms=delay * 1e3,
            )
        if delay > 0:
            req.timings.escalation_rtt_ms += delay * 1e3
            task = asyncio.ensure_future(
                self._deliver(
                    req, delay, label, confidence, node, level, shed, degraded
                )
            )
            self._deliveries.add(task)
            task.add_done_callback(self._deliveries.discard)
        else:
            self._finish(req, label, confidence, node, level, shed, degraded)

    async def _deliver(
        self,
        req: ServeRequest,
        delay: float,
        label: int,
        confidence: float,
        node: int,
        level: int,
        shed: bool,
        degraded: bool,
    ) -> None:
        await asyncio.sleep(delay)
        self._finish(req, label, confidence, node, level, shed, degraded)

    def _finish(
        self,
        req: ServeRequest,
        label: int,
        confidence: float,
        node: int,
        level: int,
        shed: bool,
        degraded: bool = False,
    ) -> None:
        loop = asyncio.get_running_loop()
        now = loop.time()
        self._last_completion = max(self._last_completion, now)
        self.n_inflight -= 1
        if degraded:
            self.degraded_by_node[node] = (
                self.degraded_by_node.get(node, 0) + 1
            )
        req.timings.total_ms = (now - req.arrival_s) * 1e3
        response = ServeResponse(
            index=req.index,
            start_leaf=req.start_leaf,
            label=label,
            confidence=confidence,
            deciding_node=node,
            deciding_level=level,
            shed=shed,
            timings=req.timings,
            degraded=degraded,
        )
        self._responses.append(response)
        if req.trace is not None:
            t = req.timings
            outcome = "shed" if shed else ("degraded" if degraded else "ok")
            req.trace.emit(
                "done", self._now_ms(), node=node,
                outcome=outcome, label=label, level=level,
                total_ms=t.total_ms,
                queue_wait_ms=t.queue_wait_ms,
                encode_ms=t.encode_ms,
                search_ms=t.search_ms,
                escalation_rtt_ms=t.escalation_rtt_ms,
                hops=len(req.trace.hop_path),
                attempts=req.trace.attempts,
            )
            self.trace_log.extend(req.trace.events)
        if obs.enabled():
            self._record_response(response)
        if req.future is not None and not req.future.done():
            req.future.set_result(response)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def _telemetry_readings(
        self,
    ) -> Iterable[Tuple[str, Mapping[str, object], float]]:
        """One sampler tick's labeled readings (the sampler's probe)."""
        readings: List[Tuple[str, Mapping[str, object], float]] = [
            ("serve.telemetry.inflight", {}, float(self.n_inflight)),
            ("serve.telemetry.batches", {}, float(self.n_batches)),
        ]
        for nid, server in self.nodes.items():
            labels = {"node": nid}
            readings.append(
                ("serve.telemetry.queue_depth", labels, float(len(server.queue)))
            )
            readings.append(
                ("serve.telemetry.batch_size", labels, float(server.last_batch))
            )
        counters: Tuple[Tuple[str, Dict[int, int]], ...] = (
            ("serve.telemetry.retries", self.retries_by_node),
            ("serve.telemetry.timeouts", self.timeouts_by_node),
            ("serve.telemetry.degraded", self.degraded_by_node),
        )
        for name, by_node in counters:
            for nid, count in by_node.items():
                readings.append((name, {"node": nid}, float(count)))
        return readings

    def _record_response(self, response: ServeResponse) -> None:
        t = response.timings
        obs.incr("serve.responses")
        if response.degraded:
            obs.incr("serve.degraded_answers")
        if response.rejected:
            obs.incr("serve.rejected")
            return
        if not response.shed:
            obs.incr(f"serve.decided.l{response.deciding_level}")
        obs.observe("serve.latency.total_ms", t.total_ms)
        obs.observe("serve.latency.queue_wait_ms", t.queue_wait_ms)
        if t.escalation_rtt_ms > 0:
            obs.observe("serve.latency.escalation_rtt_ms", t.escalation_rtt_ms)
