"""Shared-memory model shards for the multi-process serving cluster.

A trained federation's learned state is, per node, three matrices: the
float64 class hypervectors, their pre-normalized rows (dense cosine
path), and the bit-packed uint64 sign model (popcount path). A
:class:`SharedModelStore` lays all three out for *every* node in one
``multiprocessing.shared_memory`` block and hands out a JSON-safe
manifest of offsets. Worker processes rebuild the federation's
*structure* from seeds (encoders and projections regenerate
deterministically, exactly as :mod:`repro.hierarchy.checkpoint`
assumes) and then :meth:`attach` + :meth:`install` the learned state as
**read-only zero-copy views** — no model matrix is ever pickled to or
duplicated in a worker, no matter how many replicas run.

Every worker holds the *full* store, not a slice of it: the cluster
shards the request space (which end nodes a worker fronts), while the
upper-tier models are shared read-only by all replicas — the
shared-memory realization of the paper's hierarchy, where gateway and
central models serve every subtree below them.

Lifecycle: the router :meth:`publish`\\ es (owner), workers
:meth:`attach` (read-only). ``close()`` detaches a mapping;
``unlink()`` (owner only) releases the segment. The store is a context
manager over that lifecycle.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

from repro.core.hypervector import normalize_rows
from repro.core.kernels import (
    PackedBits,
    attach_packed,
    pack_bits_into,
    packed_nbytes,
    words_per_row,
)

if TYPE_CHECKING:  # runtime import would cycle through repro.hierarchy
    from repro.hierarchy.federation import EdgeHDFederation

__all__ = ["SharedModelStore", "NodeLayout"]

_FORMAT_VERSION = 1
_F64 = 8


@dataclass(frozen=True)
class NodeLayout:
    """Byte offsets of one node's three model matrices in the block."""

    node_id: int
    dimension: int
    model_offset: int
    normalized_offset: int
    packed_offset: int

    def to_dict(self) -> dict:
        return {
            "node_id": self.node_id,
            "dimension": self.dimension,
            "model_offset": self.model_offset,
            "normalized_offset": self.normalized_offset,
            "packed_offset": self.packed_offset,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeLayout":
        return cls(
            node_id=int(data["node_id"]),
            dimension=int(data["dimension"]),
            model_offset=int(data["model_offset"]),
            normalized_offset=int(data["normalized_offset"]),
            packed_offset=int(data["packed_offset"]),
        )


def _plan_layout(
    n_classes: int, node_dimensions: Dict[int, int]
) -> Tuple[Dict[int, NodeLayout], int]:
    """Assign offsets node by node; every matrix is 8-byte aligned.

    float64 and uint64 elements are both 8 bytes wide, so packing the
    matrices back to back keeps natural alignment with zero padding.
    """
    layouts: Dict[int, NodeLayout] = {}
    offset = 0
    for node_id in sorted(node_dimensions):
        dim = node_dimensions[node_id]
        dense = n_classes * dim * _F64
        packed = packed_nbytes(n_classes, dim)
        layouts[node_id] = NodeLayout(
            node_id=node_id,
            dimension=dim,
            model_offset=offset,
            normalized_offset=offset + dense,
            packed_offset=offset + 2 * dense,
        )
        offset += 2 * dense + packed
    return layouts, offset


class SharedModelStore:
    """Packed + dense model replicas over one shared-memory block."""

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        n_classes: int,
        layouts: Dict[int, NodeLayout],
        nbytes: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.n_classes = int(n_classes)
        self.layouts = layouts
        self.nbytes = int(nbytes)
        self._owner = bool(owner)
        self._closed = False

    # ------------------------------------------------------------------
    # publish / attach
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, federation: "EdgeHDFederation") -> "SharedModelStore":
        """Copy a trained federation's models into a fresh shared block.

        The one-and-only copy: publishing writes each node's class
        hypervectors, their normalized rows and the packed sign model
        into the segment; every subsequent :meth:`attach` is a view.
        Raises ``RuntimeError`` on untrained nodes, mirroring
        :func:`repro.hierarchy.checkpoint.save_federation`.
        """
        node_dimensions: Dict[int, int] = {}
        for node_id, clf in federation.classifiers.items():
            if clf.class_hypervectors is None:
                raise RuntimeError(
                    f"node {node_id} is untrained; run fit_offline() first"
                )
            node_dimensions[node_id] = clf.dimension
        layouts, nbytes = _plan_layout(federation.n_classes, node_dimensions)
        shm = shared_memory.SharedMemory(create=True, size=max(nbytes, 1))
        store = cls(
            shm, federation.n_classes, layouts, nbytes, owner=True
        )
        for node_id, layout in layouts.items():
            clf = federation.classifiers[node_id]
            model, normalized, packed = store._views(layout, writable=True)
            model[:] = clf.class_hypervectors
            normalized[:] = normalize_rows(clf.class_hypervectors)
            pack_bits_into(clf.class_hypervectors, packed.words)
        return store

    @classmethod
    def attach(cls, manifest: dict) -> "SharedModelStore":
        """Map an existing store from its :meth:`manifest` (read-only)."""
        if manifest.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported store manifest version "
                f"{manifest.get('format_version')}"
            )
        # Python < 3.13 registers attached segments with the resource
        # tracker as if this process owned them — a spawn-child tracker
        # then unlinks the block at exit while the owner still uses it.
        # Suppress registration entirely; only the publishing owner
        # manages the segment lifetime (3.13+ has track=False for this).
        try:
            shm = shared_memory.SharedMemory(name=manifest["name"], track=False)
        except TypeError:  # pragma: no cover - interpreter < 3.13
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register
            resource_tracker.register = lambda *args, **kwargs: None
            try:
                shm = shared_memory.SharedMemory(name=manifest["name"])
            finally:
                resource_tracker.register = original_register
        layouts = {
            int(key): NodeLayout.from_dict(value)
            for key, value in manifest["nodes"].items()
        }
        return cls(
            shm,
            int(manifest["n_classes"]),
            layouts,
            int(manifest["nbytes"]),
            owner=False,
        )

    def manifest(self) -> dict:
        """JSON-safe attachment recipe (ships in the pickled worker spec)."""
        return {
            "format_version": _FORMAT_VERSION,
            "name": self._shm.name,
            "nbytes": self.nbytes,
            "n_classes": self.n_classes,
            "nodes": {
                str(node_id): layout.to_dict()
                for node_id, layout in self.layouts.items()
            },
        }

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def _views(
        self, layout: NodeLayout, writable: bool = False
    ) -> Tuple[np.ndarray, np.ndarray, PackedBits]:
        shape = (self.n_classes, layout.dimension)
        count = shape[0] * shape[1]
        buf = self._shm.buf
        model = np.frombuffer(
            buf, dtype=np.float64, count=count, offset=layout.model_offset
        ).reshape(shape)
        normalized = np.frombuffer(
            buf, dtype=np.float64, count=count,
            offset=layout.normalized_offset,
        ).reshape(shape)
        packed = attach_packed(
            buf, self.n_classes, layout.dimension,
            offset=layout.packed_offset,
        )
        if not writable:
            model.flags.writeable = False
            normalized.flags.writeable = False
            packed.words.flags.writeable = False
        return model, normalized, packed

    def node_views(
        self, node_id: int
    ) -> Tuple[np.ndarray, np.ndarray, PackedBits]:
        """Read-only ``(model, normalized, packed)`` views for one node."""
        if node_id not in self.layouts:
            raise KeyError(f"store holds no model for node {node_id}")
        return self._views(self.layouts[node_id])

    def install(self, federation: "EdgeHDFederation") -> dict:
        """Attach every node's shared model into ``federation``.

        Returns an evidence report the worker ships back to the router:
        per-store byte size, node count, and whether every installed
        array is a true zero-copy view into the shared block (no
        ``OWNDATA``, memory shared with the segment buffer).
        """
        expected = set(federation.classifiers)
        if expected != set(self.layouts):
            raise ValueError(
                f"store layout covers nodes {sorted(self.layouts)} but the "
                f"federation has {sorted(expected)}"
            )
        probe = np.frombuffer(self._shm.buf, dtype=np.uint8)
        zero_copy = True
        for node_id, clf in federation.classifiers.items():
            layout = self.layouts[node_id]
            if clf.dimension != layout.dimension:
                raise ValueError(
                    f"node {node_id}: store dimension {layout.dimension} "
                    f"!= classifier dimension {clf.dimension}"
                )
            model, normalized, packed = self.node_views(node_id)
            clf.attach_model(model, normalized, packed)
            zero_copy = zero_copy and not model.flags.owndata
            zero_copy = zero_copy and np.shares_memory(model, probe)
            zero_copy = zero_copy and np.shares_memory(packed.words, probe)
        return {
            "nodes": len(self.layouts),
            "nbytes": self.nbytes,
            "zero_copy": bool(zero_copy),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    def packed_words(self, node_id: int) -> int:
        """uint64 words per packed row at ``node_id`` (introspection)."""
        return words_per_row(self.layouts[node_id].dimension)

    def close(self) -> None:
        """Detach this process's mapping (views become invalid).

        If installed views still reference the block (classifiers keep
        them until the process exits), the mmap cannot be unmapped yet;
        the store drops its handles instead and the OS reclaims the
        mapping at process exit.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except BufferError:
            self._shm._mmap = None
            if self._shm._fd >= 0:
                os.close(self._shm._fd)
                self._shm._fd = -1

    def unlink(self) -> None:
        """Release the segment itself. Owner only; call after close."""
        if not self._owner:
            raise RuntimeError("only the publishing owner may unlink")
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedModelStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
        if self._owner:
            self.unlink()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SharedModelStore(name={self._shm.name!r}, "
            f"nodes={len(self.layouts)}, nbytes={self.nbytes}, "
            f"owner={self._owner})"
        )
