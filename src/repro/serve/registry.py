"""Heartbeat-based replica registry for the serving cluster.

The router tracks every worker replica here: which shard it serves, how
many requests it has in flight, and when it last sent a heartbeat. The
registry is a pure in-process data structure — no sockets, no threads —
so replica-selection and eviction policy are unit-testable without
spawning a single process. :mod:`repro.serve.cluster` feeds it wall
-clock timestamps from the router loop.

Selection policy: :meth:`ReplicaRegistry.pick` prefers the
least-loaded *healthy* replica of the request's home shard, falling
back to any healthy replica (every worker attaches the full
:class:`~repro.serve.shard.SharedModelStore`, so any replica can answer
any request — sharding is an affinity optimization, not a capability
boundary). Replicas that miss heartbeats for longer than
``heartbeat_timeout_s`` are evicted by :meth:`evict_stale`; their
outstanding work is re-dispatched by the router, composing with
:class:`repro.serve.faults.FaultPlan` worker-kill scenarios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["ReplicaInfo", "ReplicaRegistry"]


@dataclass
class ReplicaInfo:
    """Mutable registry record for one worker replica."""

    replica_id: int
    shard_id: int
    healthy: bool = True
    last_beat_s: float = 0.0
    in_flight: int = 0
    n_dispatched: int = 0
    n_completed: int = 0
    n_beats: int = 0


class ReplicaRegistry:
    """Health and load bookkeeping over a fleet of replicas."""

    def __init__(self, heartbeat_timeout_s: float = 1.0) -> None:
        if heartbeat_timeout_s <= 0:
            raise ValueError(
                f"heartbeat_timeout_s must be positive, got {heartbeat_timeout_s}"
            )
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self._replicas: Dict[int, ReplicaInfo] = {}
        self.n_evicted = 0
        self.n_resurrected = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, replica_id: int, shard_id: int, now: float) -> ReplicaInfo:
        if replica_id in self._replicas:
            raise ValueError(f"replica {replica_id} already registered")
        info = ReplicaInfo(
            replica_id=replica_id, shard_id=shard_id, last_beat_s=now
        )
        self._replicas[replica_id] = info
        return info

    def __contains__(self, replica_id: int) -> bool:
        return replica_id in self._replicas

    def __len__(self) -> int:
        return len(self._replicas)

    def get(self, replica_id: int) -> ReplicaInfo:
        return self._replicas[replica_id]

    def replicas(self) -> List[ReplicaInfo]:
        return list(self._replicas.values())

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def beat(self, replica_id: int, now: float) -> bool:
        """Record a heartbeat (or any sign of life) from a replica.

        A beat from an evicted replica *resurrects* it: the worker was
        slow, not dead (a genuinely crashed process never beats again).
        Its stranded batches were already re-dispatched at eviction, so
        it comes back with an empty in-flight count and immediately
        rejoins the selection pool — without this, one slow spell under
        CPU contention permanently shrinks the fleet. Returns ``True``
        when the beat resurrected the replica.
        """
        info = self._replicas.get(replica_id)
        if info is None:
            return False
        resurrected = not info.healthy
        if resurrected:
            info.healthy = True
            info.in_flight = 0
            self.n_resurrected += 1
        info.last_beat_s = now
        info.n_beats += 1
        return resurrected

    def evict_stale(self, now: float) -> List[ReplicaInfo]:
        """Mark replicas whose last beat is too old; return newly evicted."""
        evicted = []
        for info in self._replicas.values():
            if info.healthy and now - info.last_beat_s > self.heartbeat_timeout_s:
                info.healthy = False
                self.n_evicted += 1
                evicted.append(info)
        return evicted

    def deregister(self, replica_id: int) -> Optional[ReplicaInfo]:
        """Remove a replica's record entirely (planned drain).

        Unlike :meth:`mark_unhealthy` — which keeps the record so a
        late heartbeat can resurrect it — deregistration is for nodes
        leaving on purpose: a later beat from the removed id is ignored
        and its id is free for the control plane to never reuse.
        Returns the removed record, or ``None`` if it was not tracked.
        """
        return self._replicas.pop(replica_id, None)

    def lease_remaining(self, replica_id: int, now: float) -> float:
        """Seconds until the replica's lease expires (<= 0: expired).

        The lease is ``heartbeat_timeout_s`` past the last beat — the
        contract :meth:`evict_stale` enforces. Exposed so control-plane
        monitors can schedule detection sweeps instead of polling.
        """
        info = self._replicas[replica_id]
        return info.last_beat_s + self.heartbeat_timeout_s - now

    def mark_unhealthy(self, replica_id: int) -> Optional[ReplicaInfo]:
        """Immediately evict a replica (e.g. its process exited)."""
        info = self._replicas.get(replica_id)
        if info is None or not info.healthy:
            return None
        info.healthy = False
        self.n_evicted += 1
        return info

    # ------------------------------------------------------------------
    # load accounting
    # ------------------------------------------------------------------
    def dispatch(self, replica_id: int, n_requests: int = 1) -> None:
        info = self._replicas[replica_id]
        info.in_flight += n_requests
        info.n_dispatched += n_requests

    def complete(self, replica_id: int, n_requests: int = 1) -> None:
        info = self._replicas[replica_id]
        info.in_flight = max(0, info.in_flight - n_requests)
        info.n_completed += n_requests

    def shard_in_flight(self, shard_id: int) -> int:
        """Outstanding requests across a shard's healthy replicas."""
        return sum(
            info.in_flight
            for info in self._replicas.values()
            if info.shard_id == shard_id and info.healthy
        )

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def healthy_replicas(self, shard_id: Optional[int] = None) -> List[ReplicaInfo]:
        return [
            info
            for info in self._replicas.values()
            if info.healthy and (shard_id is None or info.shard_id == shard_id)
        ]

    def pick(self, shard_id: int) -> Optional[ReplicaInfo]:
        """Least-loaded healthy replica for a shard.

        Falls back to the least-loaded healthy replica of *any* shard
        when the home shard has none (degraded-but-correct: every
        replica holds the full shared model). Returns ``None`` when the
        whole fleet is down; the router then answers locally and marks
        responses degraded. Ties break on lowest replica id so replaying
        the same trace picks the same replicas.
        """
        candidates = self.healthy_replicas(shard_id)
        if not candidates:
            candidates = self.healthy_replicas()
        if not candidates:
            return None
        return min(candidates, key=lambda info: (info.in_flight, info.replica_id))

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-safe registry state (for telemetry / debugging)."""
        return {
            "n_replicas": len(self._replicas),
            "n_healthy": len(self.healthy_replicas()),
            "n_evicted": self.n_evicted,
            "n_resurrected": self.n_resurrected,
            "replicas": [
                {
                    "replica_id": info.replica_id,
                    "shard_id": info.shard_id,
                    "healthy": info.healthy,
                    "in_flight": info.in_flight,
                    "n_dispatched": info.n_dispatched,
                    "n_completed": info.n_completed,
                    "n_beats": info.n_beats,
                }
                for info in self._replicas.values()
            ],
        }

