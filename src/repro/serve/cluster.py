"""Multi-process sharded serving cluster (router + worker replicas).

The single-process :class:`~repro.serve.runtime.ServingRuntime`
simulates the whole hierarchy inside one asyncio loop, which caps
sustained throughput at what one GIL can encode and search. This module
breaks that ceiling with real OS processes while keeping the paper's
semantics exact:

* a **router** (this process) admits the open-loop arrival schedule,
  micro-batches requests per *shard*, and dispatches each batch to a
  worker replica chosen by consistent-hash + least-loaded selection
  (:class:`~repro.serve.registry.ReplicaRegistry`);
* **workers** rebuild the federation's structure from seeds (encoders
  and projections are deterministic), attach the learned models from a
  :class:`~repro.serve.shard.SharedModelStore` — read-only, zero-copy,
  never pickled — and replay the exact offline escalation walk
  (:meth:`HierarchicalInference.run`) on their cohort;
* a **heartbeat registry** evicts replicas that stop beating and the
  router re-dispatches their outstanding batches, so a killed worker
  (via :meth:`FaultPlan.validate_for_cluster` crash windows keyed by
  *replica index*) is a first-class fault scenario. When the whole
  fleet is down the router answers locally and marks responses
  degraded.

Sharding partitions the *request space*: a consistent-hash ring maps
each start leaf to a shard, giving per-subtree batch affinity, while
every replica holds the full shared model and can stand in for any
shard. Because :meth:`HierarchicalInference.run` is per-query
deterministic regardless of batch composition, and per-edge escalation
counts are additive across cohorts, a ``workers=1`` cluster answers
bit-identically to the offline walk — same labels, deciding nodes,
levels and wire bytes.

Wire/energy accounting is simulated exactly as the offline walk
charges it (escalations climb *inside* a worker, not between
processes): per-request escalation round-trips are added to reported
latency without sleeping, and run totals come from the aggregated
escalation counts via :meth:`HierarchicalInference.escalation_messages`.
"""

from __future__ import annotations

import bisect
import hashlib
import logging
import queue as queue_mod
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import multiprocessing as mp

import numpy as np

import repro.obs as obs
from repro.config import EdgeHDConfig
from repro.core.search import SearchSpec
from repro.data.partition import FeaturePartition
from repro.hierarchy.federation import EdgeHDFederation
from repro.hierarchy.inference import HierarchicalInference
from repro.hierarchy.topology import Hierarchy
from repro.network.medium import Medium
from repro.obs.registry import MetricsRegistry
from repro.serve.faults import FaultPlan
from repro.serve.registry import ReplicaRegistry
from repro.serve.request import (
    ServeResponse,
    ServeResult,
    StageTimings,
)
from repro.serve.runtime import _PREDICTION_BYTES, ServeConfig
from repro.serve.shard import SharedModelStore
from repro.serve.workload import ServeWorkload, poisson_arrivals

__all__ = ["ClusterConfig", "ClusterRuntime", "ConsistentHashRing", "WorkerSpec"]

logger = logging.getLogger(__name__)


# ----------------------------------------------------------------------
# configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClusterConfig:
    """Process-topology tunables of the serving cluster."""

    #: total worker processes (replicas) to spawn.
    workers: int = 2
    #: replicas per shard; ``n_shards = ceil(workers / replicas)``.
    replicas_per_shard: int = 1
    #: idle workers send a heartbeat this often.
    heartbeat_interval_s: float = 0.05
    #: replicas silent for longer than this are evicted and their
    #: outstanding batches re-dispatched. Workers beat when idle *and*
    #: at every batch start, so this only needs to exceed the slowest
    #: single batch (a late beat resurrects the replica regardless).
    heartbeat_timeout_s: float = 3.0
    #: virtual points per shard on the consistent-hash ring.
    hash_points: int = 64
    #: multiprocessing start method (``None`` = fork when available,
    #: else the platform default).
    start_method: Optional[str] = None
    #: max seconds to wait for every worker to attach and report ready.
    ready_timeout_s: float = 60.0
    #: max seconds to wait for workers to exit on close().
    drain_timeout_s: float = 10.0
    #: spawn a replacement worker (fresh replica id, same shard) when a
    #: replica is evicted — the elastic control plane's replacement
    #: loop applied to the process fleet. The replacement attaches the
    #: same shared model store, so catch-up is a zero-copy attach.
    respawn: bool = False
    #: upper bound on replacement workers per run (runaway guard for
    #: hosts where contention evicts replicas repeatedly).
    max_respawns: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.max_respawns < 0:
            raise ValueError(
                f"max_respawns must be >= 0, got {self.max_respawns}"
            )
        if self.replicas_per_shard < 1:
            raise ValueError(
                f"replicas_per_shard must be >= 1, got "
                f"{self.replicas_per_shard}"
            )
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be > 0")
        if self.heartbeat_timeout_s <= self.heartbeat_interval_s:
            raise ValueError(
                "heartbeat_timeout_s must exceed heartbeat_interval_s"
            )
        if self.hash_points < 1:
            raise ValueError(f"hash_points must be >= 1, got {self.hash_points}")
        if self.ready_timeout_s <= 0 or self.drain_timeout_s <= 0:
            raise ValueError("timeouts must be > 0")

    @property
    def n_shards(self) -> int:
        return -(-self.workers // self.replicas_per_shard)


# ----------------------------------------------------------------------
# consistent hashing
# ----------------------------------------------------------------------
class ConsistentHashRing:
    """Consistent-hash ring mapping keys (leaf ids) to shard ids.

    Each shard owns ``points`` virtual positions (blake2b of
    ``"shard:<id>:<point>"``); a key lands on the first position
    clockwise of its own hash. Adding or removing a shard moves only
    ~1/n of the key space, so scaling the worker fleet re-homes few
    subtrees.
    """

    def __init__(self, shard_ids: Sequence[int], points: int = 64) -> None:
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        if points < 1:
            raise ValueError(f"points must be >= 1, got {points}")
        entries = []
        for shard_id in shard_ids:
            for point in range(points):
                entries.append((self._digest(f"shard:{shard_id}:{point}"), shard_id))
        entries.sort()
        self._hashes = [h for h, _ in entries]
        self._shards = [s for _, s in entries]

    @staticmethod
    def _digest(key: str) -> int:
        raw = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
        return int.from_bytes(raw, "big")

    def lookup(self, key: int) -> int:
        """Shard owning ``key`` (wraps around the ring)."""
        h = self._digest(f"leaf:{key}")
        idx = bisect.bisect_right(self._hashes, h)
        if idx == len(self._hashes):
            idx = 0
        return self._shards[idx]


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild + attach its serving stack.

    Deliberately model-free: the learned arrays travel via the
    shared-memory ``manifest``; the rest is plain-data structure
    (hierarchy, partition, config) from which encoders and projections
    regenerate deterministically, exactly as
    :mod:`repro.hierarchy.checkpoint` relies on.
    """

    hierarchy: Hierarchy
    partition: FeaturePartition
    n_classes: int
    config: EdgeHDConfig
    holographic: bool
    confidence_threshold: float
    compression_count: int
    min_level: int
    max_level: Optional[int]
    search: SearchSpec
    manifest: dict
    replica_id: int
    shard_id: int
    heartbeat_interval_s: float
    fault_plan: Optional[FaultPlan] = None


def _worker_main(spec: WorkerSpec, task_q, result_q) -> None:
    """Worker replica entry point (runs in a child process).

    Protocol (result queue): ``("ready", id, zero_copy_report)`` once
    attached; ``("hb", id, seq)`` while idle; ``("done", id, batch_id,
    indices, labels, confidences, nodes, levels, escalation_triples,
    encode_ms, search_ms)`` per batch; ``("error", id, traceback)`` on
    failure; ``("bye", id, metrics_snapshot)`` on clean shutdown. A
    fault-plan crash window for this replica index makes the process
    vanish silently — no bye, no more heartbeats — which is exactly
    what a ``kill -9`` looks like to the router.
    """
    t_start = time.monotonic()
    store = None
    metrics = MetricsRegistry()
    labels = {"replica": str(spec.replica_id), "shard": str(spec.shard_id)}
    try:
        federation = EdgeHDFederation(
            spec.hierarchy,
            spec.partition,
            spec.n_classes,
            spec.config,
            holographic=spec.holographic,
        )
        store = SharedModelStore.attach(spec.manifest)
        report = store.install(federation)
        inference = HierarchicalInference(
            federation,
            confidence_threshold=spec.confidence_threshold,
            compression_count=spec.compression_count,
            min_level=spec.min_level,
            search=spec.search,
        )
        # Warm the BLAS / encoder paths before accepting traffic so the
        # first real batch doesn't pay one-time setup cost.
        warm = np.zeros((1, spec.partition.n_features))
        leaf0 = spec.hierarchy.leaves()[0]
        inference.run(
            warm,
            start_leaves=np.asarray([leaf0], dtype=np.int64),
            max_level=spec.max_level,
        )
        result_q.put(("ready", spec.replica_id, report))
        crash = (
            spec.fault_plan.crash_windows.get(spec.replica_id)
            if spec.fault_plan is not None
            else None
        )
        seq = 0
        while True:
            if crash is not None and time.monotonic() - t_start >= crash[0]:
                return  # simulated kill: vanish without a bye
            try:
                msg = task_q.get(timeout=spec.heartbeat_interval_s)
            except queue_mod.Empty:
                seq += 1
                result_q.put(("hb", spec.replica_id, seq))
                continue
            if msg[0] == "stop":
                break
            _, batch_id, indices, rows, leaves = msg
            # Renew the lease up front so a batch that takes a while to
            # process doesn't read as a dead replica to the router.
            seq += 1
            result_q.put(("hb", spec.replica_id, seq))
            # Encode only the entry leaves present in this batch
            # eagerly (timed as the encode stage); escalation
            # materializes internal-node encodings on demand inside
            # ``run`` (timed as search). Confidence gating stops most
            # queries at their leaf, so untouched subtrees are never
            # projected — the bulk of the old encode-everything cost.
            n_batch = len(indices)
            leaves_arr = np.asarray(leaves, dtype=np.int64)
            t0 = time.perf_counter()
            encodings = {
                int(leaf): federation.encode_leaf(int(leaf), rows)
                for leaf in np.unique(leaves_arr)
            }
            t1 = time.perf_counter()
            outcome = inference.run(
                rows,
                start_leaves=leaves_arr,
                max_level=spec.max_level,
                encodings=encodings,
            )
            t2 = time.perf_counter()
            encode_s = t1 - t0
            search_s = t2 - t1
            out_labels = outcome.labels
            out_confs = outcome.confidence
            out_nodes = outcome.deciding_node
            out_levels = outcome.deciding_level
            batch_escalations = outcome.escalations
            metrics.counter("cluster.worker.batches", labels).inc()
            metrics.counter("cluster.worker.requests", labels).inc(n_batch)
            metrics.counter(
                "cluster.worker.escalated", labels
            ).inc(sum(batch_escalations.values()))
            result_q.put(
                (
                    "done",
                    spec.replica_id,
                    batch_id,
                    indices,
                    out_labels.tolist(),
                    out_confs.tolist(),
                    out_nodes.tolist(),
                    out_levels.tolist(),
                    [(c, p, n) for (c, p), n in batch_escalations.items()],
                    encode_s * 1e3,
                    search_s * 1e3,
                )
            )
    except Exception:  # pragma: no cover - surfaced as a router error
        import traceback

        logger.exception("worker %d failed", spec.replica_id)
        result_q.put(("error", spec.replica_id, traceback.format_exc()))
        return
    finally:
        if store is not None:
            store.close()
    result_q.put(("bye", spec.replica_id, metrics.snapshot()))


# ----------------------------------------------------------------------
# router
# ----------------------------------------------------------------------
@dataclass
class _Dispatch:
    """Router-side record of one in-flight batch."""

    batch_id: int
    shard_id: int
    replica_id: int
    indices: List[int]
    dispatched_wall: float


class ClusterRuntime:
    """Router over a fleet of shared-memory worker replicas.

    Mirrors :class:`~repro.serve.runtime.ServingRuntime`'s contract —
    same :class:`ServeConfig` knobs (max_batch / max_wait_ms /
    queue_depth / policy / max_level / search), same
    :class:`~repro.serve.request.ServeResult` output, same offline
    message accounting — but executes requests on ``cluster.workers``
    OS processes. Request tracing / flight recording stay a
    single-process feature; per-worker metrics arrive as labeled
    ``cluster.worker.*`` series merged into the global registry.

    Use as a context manager (or call :meth:`start` / :meth:`close`):

    >>> with ClusterRuntime(inference, medium, cfg, cluster) as rt:
    ...     result = rt.serve_open_loop(workload, rate_rps=1500.0)
    """

    def __init__(
        self,
        inference: HierarchicalInference,
        medium: Medium,
        config: Optional[ServeConfig] = None,
        cluster: Optional[ClusterConfig] = None,
        media_by_level: Optional[Dict[int, Medium]] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        self.inference = inference
        self.federation = inference.federation
        self.hierarchy = self.federation.hierarchy
        self.medium = medium
        self.media_by_level = media_by_level or {}
        self.config = config or ServeConfig()
        self.cluster = cluster or ClusterConfig()
        self.cap = inference.effective_cap(self.config.max_level)
        self.search: SearchSpec = (
            self.config.search
            if self.config.search is not None
            else inference.search
        )
        if fault_plan is not None:
            fault_plan.validate_for_cluster(self.cluster.workers)
        #: crash-only plan (or None); inert plans normalize to None.
        self.plan: Optional[FaultPlan] = (
            fault_plan if fault_plan is not None and fault_plan.active else None
        )
        self.ring = ConsistentHashRing(
            range(self.cluster.n_shards), points=self.cluster.hash_points
        )
        #: leaf id -> shard id (the ring is stable, so cache it).
        self.shard_of_leaf: Dict[int, int] = {
            leaf: self.ring.lookup(leaf) for leaf in self.hierarchy.leaves()
        }
        self.registry = ReplicaRegistry(
            heartbeat_timeout_s=self.cluster.heartbeat_timeout_s
        )
        self._edge_rtt_s = self._precompute_edge_rtt()
        self._store: Optional[SharedModelStore] = None
        self._procs: List[mp.process.BaseProcess] = []
        self._task_qs: List = []
        self._result_q = None
        self._zero_copy_reports: Dict[int, dict] = {}
        self._started = False
        self._ctx: Optional[mp.context.BaseContext] = None
        self._manifest: Optional[dict] = None
        #: shard a replica id serves — replacements inherit their
        #: predecessor's shard, and ids are never reused.
        self._shard_of_replica: Dict[int, int] = {}
        self.n_respawned = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self, replica_id: int, shard_id: int) -> None:
        """Spawn one worker process attached to the shared store.

        Used both for the initial fleet and for eviction-triggered
        replacements; ``replica_id`` must be fresh (task queues are
        indexed by it and ids are never reused).
        """
        assert self._ctx is not None and self._manifest is not None
        assert replica_id == len(self._task_qs)
        spec = WorkerSpec(
            hierarchy=self.hierarchy,
            partition=self.federation.partition,
            n_classes=self.federation.n_classes,
            config=self.federation.config,
            holographic=self.federation.holographic,
            confidence_threshold=self.inference.confidence_threshold,
            compression_count=self.inference.compression_count,
            min_level=self.inference.min_level,
            max_level=self.config.max_level,
            search=self.search,
            manifest=self._manifest,
            replica_id=replica_id,
            shard_id=shard_id,
            heartbeat_interval_s=self.cluster.heartbeat_interval_s,
            fault_plan=self.plan,
        )
        task_q = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(spec, task_q, self._result_q),
            daemon=True,
            name=f"repro-worker-{replica_id}",
        )
        proc.start()
        self._task_qs.append(task_q)
        self._procs.append(proc)
        self._shard_of_replica[replica_id] = shard_id

    def start(self) -> None:
        """Publish the shared store and spawn the worker fleet."""
        if self._started:
            return
        method = self.cluster.start_method
        if method is None:
            method = (
                "fork" if "fork" in mp.get_all_start_methods() else None
            )
        ctx = mp.get_context(method)
        self._ctx = ctx
        self._store = SharedModelStore.publish(self.federation)
        self._manifest = self._store.manifest()
        self._result_q = ctx.Queue()
        self._task_qs = []
        self._procs = []
        for replica_id in range(self.cluster.workers):
            self._spawn_worker(replica_id, replica_id % self.cluster.n_shards)
        deadline = time.monotonic() + self.cluster.ready_timeout_s
        while len(self._zero_copy_reports) < self.cluster.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise RuntimeError(
                    f"only {len(self._zero_copy_reports)} of "
                    f"{self.cluster.workers} workers became ready within "
                    f"{self.cluster.ready_timeout_s}s"
                )
            try:
                msg = self._result_q.get(timeout=min(remaining, 0.25))
            except queue_mod.Empty:
                continue
            if msg[0] == "error":
                self.close()
                raise RuntimeError(
                    f"worker {msg[1]} failed to start:\n{msg[2]}"
                )
            if msg[0] == "ready":
                replica_id, report = msg[1], msg[2]
                self._zero_copy_reports[replica_id] = report
                self.registry.register(
                    replica_id,
                    self._shard_of_replica[replica_id],
                    time.monotonic(),
                )
        self._started = True
        logger.info(
            "cluster: %d workers over %d shards ready (%.1f KiB shared)",
            self.cluster.workers, self.cluster.n_shards,
            (self._store.nbytes if self._store else 0) / 1024,
        )

    def close(self) -> None:
        """Stop workers, collect their metrics, release shared memory."""
        for task_q in self._task_qs:
            try:
                task_q.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - queue broken
                pass
        deadline = time.monotonic() + self.cluster.drain_timeout_s
        expect_bye = {
            info.replica_id
            for info in self.registry.replicas()
            if info.healthy
        } or set(self._zero_copy_reports)
        byes: Dict[int, dict] = {}
        while (
            self._result_q is not None
            and len(byes) < len(expect_bye)
            and time.monotonic() < deadline
        ):
            try:
                msg = self._result_q.get(timeout=0.1)
            except queue_mod.Empty:
                if not any(proc.is_alive() for proc in self._procs):
                    break
                continue
            if msg[0] == "bye":
                byes[msg[1]] = msg[2]
        if obs.enabled():
            registry = obs.get_registry()
            for snapshot in byes.values():
                scratch = MetricsRegistry()
                scratch.load_snapshot(snapshot)
                registry.merge(scratch)
        for proc in self._procs:
            proc.join(timeout=max(deadline - time.monotonic(), 0.1))
        for proc in self._procs:
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1.0)
        for task_q in self._task_qs:
            task_q.cancel_join_thread()
            task_q.close()
        if self._result_q is not None:
            self._result_q.cancel_join_thread()
            self._result_q.close()
        self._task_qs = []
        self._result_q = None
        self._procs = []
        if self._store is not None:
            self._store.close()
            self._store.unlink()
            self._store = None
        self._started = False

    def __enter__(self) -> "ClusterRuntime":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def zero_copy(self) -> bool:
        """Did every worker attach without copying a model array?"""
        return bool(self._zero_copy_reports) and all(
            report.get("zero_copy", False)
            for report in self._zero_copy_reports.values()
        )

    def topology(self) -> Dict[str, object]:
        """Topology metadata recorded in every benchmark cell."""
        return {
            "workers": self.cluster.workers,
            "replicas_per_shard": self.cluster.replicas_per_shard,
            "n_shards": self.cluster.n_shards,
            "shared_memory_bytes": self._store.nbytes if self._store else 0,
            "evictions": self.registry.n_evicted,
        }

    # ------------------------------------------------------------------
    # simulated escalation accounting
    # ------------------------------------------------------------------
    def _edge_medium(self, source: int, destination: int) -> Medium:
        lower = min(
            self.hierarchy.nodes[source].level,
            self.hierarchy.nodes[destination].level,
        )
        return self.media_by_level.get(lower, self.medium)

    def _precompute_edge_rtt(self) -> Dict[Tuple[int, int], float]:
        """Per-(child, parent) simulated escalation round-trip seconds.

        The uplink ships one compressed bundle sized for the parent's
        input dimensionality; the downlink returns a prediction. The
        walk itself runs inside one worker, so this cost is added to
        reported latency without sleeping — the same modeling the
        offline byte accounting uses.
        """
        from repro.core.compression import compressed_bundle_bytes

        m = self.inference.compression_count
        rtt: Dict[Tuple[int, int], float] = {}
        for node_id, node in self.hierarchy.nodes.items():
            parent = node.parent
            if parent is None:
                continue
            parent_in_dim = sum(
                self.hierarchy.nodes[c].dimension
                for c in self.hierarchy.nodes[parent].children
            )
            medium = self._edge_medium(node_id, parent)
            rtt[(node_id, parent)] = medium.transfer_time(
                compressed_bundle_bytes(parent_in_dim, m)
            ) + medium.transfer_time(_PREDICTION_BYTES)
        return rtt

    def _escalation_rtt_ms(self, start_leaf: int, deciding_node: int) -> float:
        """Simulated climb latency from ``start_leaf`` to its decider."""
        if deciding_node == start_leaf:
            return 0.0
        total = 0.0
        path = self.hierarchy.path_to_root(start_leaf)
        for child, parent in zip(path, path[1:]):
            total += self._edge_rtt_s.get((child, parent), 0.0)
            if parent == deciding_node:
                break
        return total * 1e3

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def serve_open_loop(
        self,
        workload: ServeWorkload,
        rate_rps: float,
        seed: int = 0,
        arrivals: Optional[np.ndarray] = None,
    ) -> ServeResult:
        """Open-loop serving over the worker fleet.

        Same contract as
        :meth:`repro.serve.runtime.ServingRuntime.serve_open_loop`:
        ``arrivals`` (absolute seconds) overrides the Poisson schedule
        drawn at ``rate_rps`` from ``seed``.
        """
        if not self._started:
            self.start()
        n = len(workload)
        if arrivals is None:
            arrivals = poisson_arrivals(n, rate_rps, seed)
        else:
            arrivals = np.asarray(arrivals, dtype=np.float64)
            if arrivals.shape != (n,):
                raise ValueError(
                    f"arrivals must have shape ({n},), got {arrivals.shape}"
                )
        order = np.argsort(arrivals, kind="stable")
        cfg = self.config
        max_wait_s = cfg.max_wait_ms / 1e3

        responses: Dict[int, ServeResponse] = {}
        escalations: Dict[Tuple[int, int], int] = {}
        buffers: Dict[int, List[int]] = {
            shard: [] for shard in range(self.cluster.n_shards)
        }
        buffer_open_wall: Dict[int, float] = {}
        outstanding: Dict[int, _Dispatch] = {}
        high_water: Dict[int, int] = {
            shard: 0 for shard in range(self.cluster.n_shards)
        }
        n_shed_admission = 0
        n_retries = 0
        n_timeouts = 0
        n_batches = 0
        last_completion_wall: float

        t0 = time.monotonic()
        last_completion_wall = t0

        def shard_pending(shard: int) -> int:
            queued = len(buffers[shard])
            in_flight = sum(
                len(d.indices)
                for d in outstanding.values()
                if d.shard_id == shard
            )
            return queued + in_flight

        def dispatch(shard: int, indices: List[int]) -> None:
            nonlocal n_batches, last_completion_wall
            info = self.registry.pick(shard)
            if info is None:
                # Whole fleet down: the router still owns the original
                # federation, so it answers locally in degraded mode.
                self._answer_locally(
                    workload, indices, t0, arrivals, responses, escalations
                )
                last_completion_wall = time.monotonic()
                return
            batch_id = n_batches
            n_batches += 1
            rows = np.stack([workload.features[i] for i in indices])
            leaves = [int(workload.start_leaves[i]) for i in indices]
            self._task_qs[info.replica_id].put(
                ("batch", batch_id, indices, rows, leaves)
            )
            self.registry.dispatch(info.replica_id, len(indices))
            outstanding[batch_id] = _Dispatch(
                batch_id=batch_id,
                shard_id=shard,
                replica_id=info.replica_id,
                indices=indices,
                dispatched_wall=time.monotonic(),
            )

        def flush(shard: int) -> None:
            indices = buffers[shard]
            if not indices:
                return
            buffers[shard] = []
            buffer_open_wall.pop(shard, None)
            dispatch(shard, indices)

        arrival_ptr = 0
        while len(responses) < n:
            now = time.monotonic()
            rel = now - t0
            # 1. admit due arrivals into shard buffers
            while arrival_ptr < n and arrivals[order[arrival_ptr]] <= rel:
                idx = int(order[arrival_ptr])
                arrival_ptr += 1
                shard = self.shard_of_leaf[int(workload.start_leaves[idx])]
                if (
                    cfg.policy == "shed"
                    and shard_pending(shard) >= cfg.queue_depth
                ):
                    n_shed_admission += 1
                    responses[idx] = ServeResponse(
                        index=idx,
                        start_leaf=int(workload.start_leaves[idx]),
                        label=-1,
                        confidence=0.0,
                        deciding_node=-1,
                        deciding_level=-1,
                        shed=True,
                        timings=StageTimings(),
                    )
                    continue
                if not buffers[shard]:
                    buffer_open_wall[shard] = now
                buffers[shard].append(idx)
                high_water[shard] = max(high_water[shard], shard_pending(shard))
                if len(buffers[shard]) >= cfg.max_batch:
                    flush(shard)
            # 2. flush batches whose wait window expired (or when no
            #    arrivals remain — nothing more to coalesce with)
            for shard in list(buffers):
                if not buffers[shard]:
                    continue
                waited = now - buffer_open_wall.get(shard, now)
                if waited >= max_wait_s or arrival_ptr >= n:
                    flush(shard)
            # 3. evict silent replicas, re-dispatch their batches and —
            #    with respawn enabled — spawn a replacement worker, so a
            #    crash window becomes a replacement scenario instead of
            #    a permanently smaller fleet.
            for info in self.registry.evict_stale(now):
                n_timeouts += 1
                stranded = [
                    d for d in outstanding.values()
                    if d.replica_id == info.replica_id
                ]
                logger.warning(
                    "cluster: evicting replica %d (shard %d), "
                    "re-dispatching %d batches",
                    info.replica_id, info.shard_id, len(stranded),
                )
                if obs.enabled():
                    obs.incr("cluster.evictions")
                for d in stranded:
                    del outstanding[d.batch_id]
                    n_retries += len(d.indices)
                    dispatch(d.shard_id, d.indices)
                if (
                    self.cluster.respawn
                    and self.n_respawned < self.cluster.max_respawns
                ):
                    new_id = len(self._task_qs)
                    self.n_respawned += 1
                    logger.info(
                        "cluster: respawning shard %d as replica %d",
                        info.shard_id, new_id,
                    )
                    if obs.enabled():
                        obs.incr("cluster.respawns")
                    self._spawn_worker(new_id, info.shard_id)
            # 4. drain worker results (block briefly to avoid spinning)
            timeout = self._drain_timeout(
                arrival_ptr, n, order, arrivals, rel, buffer_open_wall,
                t0, max_wait_s,
            )
            try:
                assert self._result_q is not None
                msg = self._result_q.get(timeout=timeout)
            except queue_mod.Empty:
                continue
            while msg is not None:
                done_wall = time.monotonic()
                kind = msg[0]
                if kind == "hb":
                    self.registry.beat(msg[1], done_wall)
                elif kind == "error":
                    self.close()
                    raise RuntimeError(f"worker {msg[1]} crashed:\n{msg[2]}")
                elif kind == "done":
                    (_, replica_id, batch_id, indices, labels, confs,
                     nodes, levels, triples, encode_ms, search_ms) = msg
                    self.registry.beat(replica_id, done_wall)
                    d = outstanding.pop(batch_id, None)
                    if d is not None:
                        if replica_id in self.registry:
                            self.registry.complete(replica_id, len(indices))
                        for c, p, count in triples:
                            edge = (int(c), int(p))
                            escalations[edge] = (
                                escalations.get(edge, 0) + int(count)
                            )
                        for pos, idx in enumerate(indices):
                            arrival_wall = t0 + float(arrivals[idx])
                            dispatch_wall = (
                                d.dispatched_wall if d else done_wall
                            )
                            leaf = int(workload.start_leaves[idx])
                            rtt_ms = self._escalation_rtt_ms(
                                leaf, int(nodes[pos])
                            )
                            queue_wait_ms = max(
                                (dispatch_wall - arrival_wall) * 1e3, 0.0
                            )
                            total_ms = (
                                max((done_wall - arrival_wall) * 1e3, 0.0)
                                + rtt_ms
                            )
                            responses[idx] = ServeResponse(
                                index=idx,
                                start_leaf=leaf,
                                label=int(labels[pos]),
                                confidence=float(confs[pos]),
                                deciding_node=int(nodes[pos]),
                                deciding_level=int(levels[pos]),
                                shed=False,
                                timings=StageTimings(
                                    queue_wait_ms=queue_wait_ms,
                                    encode_ms=float(encode_ms),
                                    search_ms=float(search_ms),
                                    escalation_rtt_ms=rtt_ms,
                                    total_ms=total_ms,
                                ),
                            )
                        last_completion_wall = done_wall
                elif kind == "ready":
                    # A replacement worker came up mid-run: register it
                    # on its predecessor's shard so the picker can use
                    # it. (Without respawn there is nothing to arrive.)
                    replica_id, report = msg[1], msg[2]
                    if replica_id not in self.registry:
                        self._zero_copy_reports[replica_id] = report
                        self.registry.register(
                            replica_id,
                            self._shard_of_replica[replica_id],
                            done_wall,
                        )
                # "bye" during a run: ignore.
                try:
                    assert self._result_q is not None
                    msg = self._result_q.get_nowait()
                except queue_mod.Empty:
                    msg = None

        makespan = max(last_completion_wall - t0, 0.0)
        messages = self.inference.escalation_messages(escalations)
        wire_bytes = sum(m.payload_bytes for m in messages)
        energy_j = sum(
            self._edge_medium(m.source, m.destination).transfer_energy(
                m.payload_bytes
            )
            for m in messages
        )
        result = ServeResult(
            responses=list(responses.values()),
            makespan_s=makespan,
            energy_j=energy_j,
            wire_bytes=wire_bytes,
            escalations=escalations,
            n_shed_admission=n_shed_admission,
            n_shed_escalation=0,
            queue_high_water=high_water,
            n_retries=n_retries,
            n_timeouts=n_timeouts,
            topology=self.topology(),
        )
        result._offline_messages = messages
        logger.info(
            "cluster serve: %d requests, %d answered, %d shed, "
            "%d evictions, %.0f req/s",
            result.n_total, result.n_answered, result.n_shed,
            self.registry.n_evicted, result.throughput_rps,
        )
        return result

    def _drain_timeout(
        self,
        arrival_ptr: int,
        n: int,
        order: np.ndarray,
        arrivals: np.ndarray,
        rel: float,
        buffer_open_wall: Dict[int, float],
        t0: float,
        max_wait_s: float,
    ) -> float:
        """Longest the router may block on results without missing an
        arrival admission or a batch-flush deadline."""
        timeout = self.cluster.heartbeat_interval_s
        if arrival_ptr < n:
            timeout = min(
                timeout, max(arrivals[order[arrival_ptr]] - rel, 0.0)
            )
        if buffer_open_wall:
            next_flush = min(buffer_open_wall.values()) + max_wait_s
            timeout = min(timeout, max(next_flush - (t0 + rel), 0.0))
        return max(timeout, 1e-4)

    def _answer_locally(
        self,
        workload: ServeWorkload,
        indices: List[int],
        t0: float,
        arrivals: np.ndarray,
        responses: Dict[int, ServeResponse],
        escalations: Dict[Tuple[int, int], int],
    ) -> None:
        """Fleet-down fallback: the router runs the walk itself.

        Answers are computed from the same models and are therefore
        *correct*, but they are flagged degraded: the cluster failed to
        provide the isolation/throughput it was asked for, and callers
        (and ``degraded_rate``) should see that.
        """
        rows = np.stack([workload.features[i] for i in indices])
        leaves = np.asarray(
            [int(workload.start_leaves[i]) for i in indices], dtype=np.int64
        )
        t_enc = time.perf_counter()
        outcome = self.inference.run(
            rows, start_leaves=leaves, max_level=self.config.max_level
        )
        elapsed_ms = (time.perf_counter() - t_enc) * 1e3
        done_wall = time.monotonic()
        for edge, count in outcome.escalations.items():
            escalations[edge] = escalations.get(edge, 0) + count
        if obs.enabled():
            obs.incr("cluster.local_fallback", len(indices))
        for pos, idx in enumerate(indices):
            leaf = int(leaves[pos])
            rtt_ms = self._escalation_rtt_ms(
                leaf, int(outcome.deciding_node[pos])
            )
            arrival_wall = t0 + float(arrivals[idx])
            responses[idx] = ServeResponse(
                index=idx,
                start_leaf=leaf,
                label=int(outcome.labels[pos]),
                confidence=float(outcome.confidence[pos]),
                deciding_node=int(outcome.deciding_node[pos]),
                deciding_level=int(outcome.deciding_level[pos]),
                shed=False,
                degraded=True,
                timings=StageTimings(
                    queue_wait_ms=max(
                        (done_wall - arrival_wall) * 1e3 - elapsed_ms, 0.0
                    ),
                    search_ms=elapsed_ms,
                    escalation_rtt_ms=rtt_ms,
                    total_ms=max((done_wall - arrival_wall) * 1e3, 0.0)
                    + rtt_ms,
                ),
            )
