"""Bounded request queues with selectable backpressure policy.

Every node in the serving tree owns one :class:`BoundedQueue`. Under
overload the queue never grows past ``maxsize``; what happens to the
excess is the *policy*:

* ``"block"`` — the producer awaits until space frees up. Backpressure
  propagates: a slow parent stalls its children's escalations, which
  fills their inboxes, which eventually stalls admission. Memory stays
  bounded and no request is lost, at the cost of rising admission
  delay.
* ``"shed"`` — ``offer`` fails immediately when full and the caller
  decides how to degrade (reject at admission, answer with the current
  low-confidence decision at escalation). Latency stays bounded at the
  cost of lost work, counted in :class:`QueueStats`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any, Optional

import repro.serve.sanitizer as sanitizer

__all__ = ["BoundedQueue", "QueueStats", "QueueTimeout", "ShedError", "POLICIES"]

POLICIES = ("block", "shed")


class ShedError(Exception):
    """Raised by :meth:`BoundedQueue.offer` when a full queue sheds."""


class QueueTimeout(Exception):
    """Raised by :meth:`BoundedQueue.put` when a bounded blocking wait
    (``timeout_s``) expires with the queue still full. The item was
    *not* enqueued; the caller decides how to degrade."""


@dataclass
class QueueStats:
    """Occupancy and loss counters for one queue."""

    enqueued: int = 0
    shed: int = 0
    #: blocking puts abandoned after their ``timeout_s`` bound.
    timeouts: int = 0
    #: deepest occupancy ever observed (bounded-memory witness).
    high_water: int = 0


class BoundedQueue:
    """An ``asyncio.Queue`` wrapper enforcing one backpressure policy."""

    def __init__(self, maxsize: int, policy: str = "block") -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        if policy not in POLICIES:
            raise ValueError(
                f"policy must be one of {POLICIES}, got {policy!r}"
            )
        self.maxsize = int(maxsize)
        self.policy = policy
        self.stats = QueueStats()
        self._queue: asyncio.Queue = asyncio.Queue(maxsize=self.maxsize)

    def __len__(self) -> int:
        return self._queue.qsize()

    async def put(self, item: Any, timeout_s: Optional[float] = None) -> None:
        """Enqueue under the configured policy.

        Blocks under ``"block"``; raises :class:`ShedError` (after
        counting the shed) under ``"shed"`` when full. ``timeout_s``
        bounds the blocking wait: when it expires with the queue still
        full, :class:`QueueTimeout` is raised (and counted) and the
        item is not enqueued — the fault-injected serving path uses
        this as its per-hop timeout so a stalled or crashed consumer
        can never wedge a producer forever.
        """
        if self.policy == "shed":
            try:
                self._queue.put_nowait(item)
            except asyncio.QueueFull:
                self.stats.shed += 1
                raise ShedError(
                    f"queue full ({self.maxsize}), item shed"
                ) from None
        elif timeout_s is None:
            await self._queue.put(item)
        else:
            try:
                await asyncio.wait_for(self._queue.put(item), timeout=timeout_s)
            except asyncio.TimeoutError:
                self.stats.timeouts += 1
                raise QueueTimeout(
                    f"queue full ({self.maxsize}) for {timeout_s} s"
                ) from None
        # Only a *successful* enqueue hands the item over: the shed /
        # timeout raises above fire before the item enters the queue.
        sanitizer.publish(item)
        self.stats.enqueued += 1
        depth = self._queue.qsize()
        if depth > self.stats.high_water:
            self.stats.high_water = depth

    def offer(self, item: Any) -> bool:
        """Non-blocking enqueue; returns False (and counts a shed) when
        full. Usable under either policy — with ``"block"`` semantics a
        False return lets the caller choose to fall back to ``put``."""
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self.stats.shed += 1
            return False
        sanitizer.publish(item)
        self.stats.enqueued += 1
        depth = self._queue.qsize()
        if depth > self.stats.high_water:
            self.stats.high_water = depth
        return True

    async def get(self) -> Any:
        return await self._queue.get()

    def get_nowait(self) -> Any:
        return self._queue.get_nowait()

    def empty(self) -> bool:
        return self._queue.empty()
