"""Elastic topology control plane: runtime join / drain / replacement.

The paper constructs its hierarchy once and assumes it static; a real
IoT fleet churns. This module adds the lifecycle layer over
:class:`~repro.hierarchy.federation.EdgeHDFederation` that makes churn
a first-class, *reproducible* event:

* **join** — a new end node is admitted at runtime. It takes over a
  feature range from donor leaves, trains locally, and its class model
  is hierarchically re-encoded into its ancestors' class hypervectors.
  Only the new/donor leaves and their ancestor paths retrain — the
  additive HD model structure makes the merge cheap (Ge & Parhi) — and
  because per-node seeds are keyed by node id, the joined node is
  bit-identical to one constructed at build time from the same grown
  topology.
* **drain** — an end node leaves; its feature columns re-partition onto
  sibling leaves, emptied gateways cascade away, and the dirtied
  ancestors re-encode. Node ids are never reused.
* **checkpoint / restore** — full topology state (structure, partition,
  config, models, residuals, propagation counter) round-trips through
  the v2 format in :mod:`repro.hierarchy.checkpoint`.
* **replacement** — crash → heartbeat detection over
  :class:`~repro.serve.registry.ReplicaRegistry` leases → respawn →
  catch-up from the last checkpoint plus residual-journal replay. The
  recovered node ends bit-identical to one that never crashed, and
  :meth:`TopologyController.fingerprint` witnesses the whole run.

Everything is driven by explicit virtual-clock timestamps, so the
entire replacement loop is deterministic under a fixed seed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from enum import Enum
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

import repro.obs as obs
from repro.core.hypervector import sign_binarize
from repro.core.online import ResidualAccumulator
from repro.data.partition import FeaturePartition
from repro.hierarchy.checkpoint import (
    load_topology_state,
    save_topology_state,
    validate_topology_meta,
)
from repro.hierarchy.federation import (
    EdgeHDFederation,
    FederatedTrainingReport,
    batch_groups,
)
from repro.hierarchy.inference import HierarchicalInference
from repro.hierarchy.online import OnlineLearner
from repro.utils.rng import derive_rng
from repro.utils.validation import check_labels, check_matrix

__all__ = [
    "NodeState",
    "TransitionRecord",
    "FeedbackEvent",
    "NodeLeaseMonitor",
    "JoinResult",
    "DrainResult",
    "TopologyController",
    "ScenarioSpec",
    "ScenarioResult",
    "run_replacement_scenario",
]


class NodeState(str, Enum):
    """Lifecycle state of one hierarchy node under the control plane."""

    ACTIVE = "active"
    JOINING = "joining"
    DRAINING = "draining"
    CRASHED = "crashed"
    RESTORING = "restoring"


@dataclass(frozen=True)
class TransitionRecord:
    """One lifecycle transition, for the audit log and the fingerprint."""

    kind: str
    node_id: int
    detail: Tuple[Tuple[str, str], ...] = ()


@dataclass
class FeedbackEvent:
    """One journaled feedback event (the unit of catch-up replay)."""

    node_id: int
    query_hv: np.ndarray
    predicted_class: int
    true_class: Optional[int]


class NodeLeaseMonitor:
    """Heartbeat leases for hierarchy nodes, on the PR 8 replica registry.

    Every node holds a lease refreshed by :meth:`beat`; a node whose
    lease lapses past ``lease_timeout_s`` is reported by
    :meth:`expired` exactly once. The registry's shard id doubles as
    the node's hierarchy level, so its summary groups by tier.
    """

    def __init__(self, lease_timeout_s: float = 1.0) -> None:
        # Imported lazily: repro.serve imports repro.hierarchy, so a
        # module-level import here would be circular at package init.
        from repro.serve.registry import ReplicaRegistry

        self.registry = ReplicaRegistry(heartbeat_timeout_s=lease_timeout_s)

    def track(self, node_id: int, level: int, now: float) -> None:
        self.registry.register(node_id, shard_id=level, now=now)

    def release(self, node_id: int) -> None:
        self.registry.deregister(node_id)

    def beat(self, node_id: int, now: float) -> bool:
        """Refresh a node's lease; True when the beat resurrected it."""
        return self.registry.beat(node_id, now)

    def expired(self, now: float) -> List[int]:
        """Node ids whose lease newly lapsed (each reported once)."""
        return sorted(
            info.replica_id for info in self.registry.evict_stale(now)
        )

    def lease_remaining(self, node_id: int, now: float) -> float:
        return self.registry.lease_remaining(node_id, now)


@dataclass
class JoinResult:
    """Outcome of admitting a new end node."""

    node_id: int
    columns: Tuple[int, ...]
    donors: Tuple[int, ...]
    refit_nodes: Tuple[int, ...]
    report: FederatedTrainingReport


@dataclass
class DrainResult:
    """Outcome of draining an end node."""

    removed_nodes: Tuple[int, ...]
    recipients: Tuple[int, ...]
    refit_nodes: Tuple[int, ...]
    report: FederatedTrainingReport


class TopologyController:
    """Lifecycle state machine over a federation and its online learner.

    Owns the training data (mutations retrain only the dirtied nodes
    against it), the per-node lifecycle states, the feedback journal
    that crash recovery replays, and the lease monitor that detects
    silent nodes. All clocks are explicit ``now`` floats — virtual
    time — so every flow is deterministic and unit-testable.
    """

    def __init__(
        self,
        federation: EdgeHDFederation,
        train_x: np.ndarray,
        train_y: np.ndarray,
        *,
        learner: Optional[OnlineLearner] = None,
        lease_timeout_s: float = 1.0,
        now: float = 0.0,
    ) -> None:
        self.federation = federation
        self._mat = check_matrix(
            "train_x", train_x, cols=federation.partition.n_features
        )
        self._y = check_labels(
            "train_y", train_y, n_classes=federation.n_classes
        )
        if self._mat.shape[0] != self._y.shape[0]:
            raise ValueError(
                f"{self._mat.shape[0]} samples but {self._y.shape[0]} labels"
            )
        if learner is not None and learner.federation is not federation:
            raise ValueError("learner is attached to a different federation")
        self.learner = learner
        self._groups = batch_groups(self._y, federation.config.batch_size)
        self._batch_labels = np.array(
            [cls for cls, _ in self._groups], dtype=np.int64
        )
        self.states: Dict[int, NodeState] = {
            nid: NodeState.ACTIVE for nid in federation.hierarchy.nodes
        }
        self.transitions: List[TransitionRecord] = []
        self.journal: List[FeedbackEvent] = []
        self.n_checkpoints = 0
        self.monitor = NodeLeaseMonitor(lease_timeout_s=lease_timeout_s)
        for nid, node in sorted(federation.hierarchy.nodes.items()):
            self.monitor.track(nid, node.level, now)
        #: per-node forwarded batch hypervectors — the training artifact
        #: a parent needs to re-encode when a child changes. Pure
        #: function of (training data, structure), so it can always be
        #: recomputed; cached so mutations touch only dirty subtrees.
        self._batch_hvs: Dict[int, np.ndarray] = {}
        self._trained = False

    # ------------------------------------------------------------------
    # training / artifacts
    # ------------------------------------------------------------------
    def fit(self, retrain_epochs: Optional[int] = None) -> FederatedTrainingReport:
        """Full offline training pass; caches the re-encode artifacts."""
        report = self.federation.fit_offline(
            self._mat, self._y, retrain_epochs
        )
        self.refresh_artifacts()
        self._trained = True
        return report

    def attach_trained(self) -> None:
        """Adopt an already-trained federation (e.g. a restored one)."""
        for nid, clf in self.federation.classifiers.items():
            if clf.class_hypervectors is None:
                raise RuntimeError(
                    f"node {nid} is untrained; call fit() instead"
                )
        self.refresh_artifacts()
        self._trained = True

    def refresh_artifacts(self) -> None:
        """Recompute every node's forwarded batch hypervectors.

        Identical arithmetic to the training pass (leaf: binarized
        per-group bundles; internal: binarized hierarchical encoding of
        the children's forwarded batches), but touching no model state.
        """
        fed = self.federation
        hierarchy = fed.hierarchy
        self._batch_hvs.clear()
        for nid in hierarchy.postorder():
            node = hierarchy.nodes[nid]
            if node.is_leaf:
                encoded = fed.encode_leaf(nid, self._mat)
                batches = sign_binarize(
                    np.stack(
                        [encoded[idx].sum(axis=0) for _, idx in self._groups]
                    )
                ).astype(np.float64)
            else:
                child_batches = [self._batch_hvs[c] for c in node.children]
                raw = fed.combine_children(
                    nid, child_batches, binarize=False
                ).astype(np.float64)
                batches = sign_binarize(raw).astype(np.float64)
            self._batch_hvs[nid] = batches

    def _require_trained(self) -> None:
        if not self._trained:
            raise RuntimeError(
                "controller has no trained federation; call fit() first"
            )

    # ------------------------------------------------------------------
    # structural mutations
    # ------------------------------------------------------------------
    def _structure_snapshot(self):
        hierarchy = self.federation.hierarchy
        partition = self.federation.partition
        dims = {nid: n.dimension for nid, n in hierarchy.nodes.items()}
        children = {
            nid: tuple(n.children)
            for nid, n in hierarchy.nodes.items()
            if not n.is_leaf
        }
        slices = {
            nid: partition.slices[n.leaf_index]
            for nid, n in hierarchy.nodes.items()
            if n.is_leaf
        }
        return dims, children, slices

    def _dirty_nodes(self, pre_dims, pre_children, pre_slices) -> List[int]:
        """Postorder list of nodes whose artifacts a mutation invalidated."""
        hierarchy = self.federation.hierarchy
        partition = self.federation.partition
        dirty: set[int] = set()
        order: List[int] = []
        for nid in hierarchy.postorder():
            node = hierarchy.nodes[nid]
            stale = nid not in pre_dims or node.dimension != pre_dims[nid]
            if node.is_leaf:
                stale = stale or partition.slices[node.leaf_index] != pre_slices.get(nid)
            else:
                stale = (
                    stale
                    or tuple(node.children) != pre_children.get(nid)
                    or any(c in dirty for c in node.children)
                )
            if stale:
                dirty.add(nid)
                order.append(nid)
        return order

    def _refit(self, dirty: List[int], epochs: Optional[int]) -> FederatedTrainingReport:
        """Rebuild + retrain exactly the dirty nodes, children-first.

        Clean children contribute their *current* class models and
        cached batch hypervectors, so a dirty parent re-encodes without
        its clean subtrees recomputing anything.
        """
        fed = self.federation
        hierarchy = fed.hierarchy
        epochs = fed.config.retrain_epochs if epochs is None else epochs
        report = FederatedTrainingReport()
        report.n_batches = len(self._groups)
        dirty_set = set(dirty)
        class_models: Dict[int, np.ndarray] = {}
        for nid in dirty:
            for child in hierarchy.nodes[nid].children:
                if child not in dirty_set and child not in class_models:
                    model = fed.classifiers[child].class_hypervectors
                    assert model is not None
                    class_models[child] = model.copy()
        for nid in dirty:
            fed.rebuild_node(nid)
            fed._fit_node(
                nid, self._mat, self._y, epochs, report, self._groups,
                self._batch_labels, class_models, self._batch_hvs,
            )
        return report

    def _reset_residuals(self) -> None:
        """Fresh (empty) accumulators sized to the current topology."""
        if self.learner is None:
            return
        fed = self.federation
        self.learner.residuals = {
            nid: ResidualAccumulator(fed.n_classes, node.dimension)
            for nid, node in fed.hierarchy.nodes.items()
        }

    def _flush_residuals(self) -> None:
        """Propagation barrier before a structural mutation.

        Pending residuals live in the *old* topology's node spaces;
        folding them in first means a mutation never discards feedback.
        """
        if self.learner is not None and self.learner.pending_feedback() > 0:
            self.learner.propagate()

    def _record(self, kind: str, node_id: int, **detail: object) -> None:
        self.transitions.append(
            TransitionRecord(
                kind=kind,
                node_id=node_id,
                detail=tuple(
                    (k, str(v)) for k, v in sorted(detail.items())
                ),
            )
        )

    def join(
        self,
        parent_id: int,
        columns: Optional[Sequence[int]] = None,
        *,
        epochs: Optional[int] = None,
        now: float = 0.0,
    ) -> JoinResult:
        """Admit a new end node under ``parent_id`` at runtime.

        ``columns`` names the global feature columns the new node takes
        over (each currently owned by some donor leaf, every donor must
        keep at least one column). When omitted, the richest leaf
        donates the second half of its range. The new leaf trains on
        its slice, donors retrain on their narrowed slices, and the
        ancestor paths re-encode — nothing else recomputes. With no
        pending online state, the grown system is bit-identical to one
        constructed at build time with the same topology and partition.
        """
        self._require_trained()
        fed = self.federation
        hierarchy = fed.hierarchy
        if parent_id not in hierarchy.nodes:
            raise KeyError(f"unknown parent node {parent_id}")
        if hierarchy.nodes[parent_id].is_leaf:
            raise ValueError(
                f"cannot join under end node {parent_id}; the parent must "
                "be a gateway or the central node"
            )
        old_slices = list(fed.partition.slices)
        if columns is None:
            donor_index = max(
                range(len(old_slices)),
                key=lambda i: (len(old_slices[i]), -i),
            )
            donor_cols = list(old_slices[donor_index])
            if len(donor_cols) < 2:
                raise ValueError(
                    "no leaf has a column to spare; pass columns= explicitly"
                )
            keep = (len(donor_cols) + 1) // 2
            moved = donor_cols[keep:]
        else:
            moved = [int(c) for c in columns]
        moved_set = set(moved)
        if not moved_set:
            raise ValueError("the joining node needs at least one column")
        if len(moved_set) != len(moved):
            raise ValueError(f"duplicate columns in {sorted(moved)}")
        owned = {c for s in old_slices for c in s}
        missing = moved_set - owned
        if missing:
            raise ValueError(
                f"columns {sorted(missing)} are not part of the feature space"
            )
        donors: List[int] = []
        new_slices: List[tuple[int, ...]] = []
        leaves_before = hierarchy.leaves()
        for leaf_index, s in enumerate(old_slices):
            remaining = tuple(c for c in s if c not in moved_set)
            if remaining != s:
                if not remaining:
                    raise ValueError(
                        f"join would leave end node "
                        f"{leaves_before[leaf_index]} without columns; "
                        "drain it instead"
                    )
                donors.append(leaves_before[leaf_index])
            new_slices.append(remaining)
        new_slices.append(tuple(sorted(moved)))

        self._flush_residuals()
        pre = self._structure_snapshot()
        new_id = hierarchy.graft_leaf(parent_id)
        self.states[new_id] = NodeState.JOINING
        fed.partition = FeaturePartition(slices=tuple(new_slices))
        fed.partition.validate()
        hierarchy.allocate_dimensions(
            fed.config.dimension, fed.partition.feature_counts()
        )
        dirty = self._dirty_nodes(*pre)
        report = self._refit(dirty, epochs)
        self._reset_residuals()
        self.monitor.track(new_id, hierarchy.nodes[new_id].level, now)
        self.states[new_id] = NodeState.ACTIVE
        self._record(
            "join", new_id, parent=parent_id, columns=sorted(moved),
            donors=donors, refit=dirty,
        )
        obs.incr("topology.join")
        return JoinResult(
            node_id=new_id,
            columns=tuple(sorted(moved)),
            donors=tuple(donors),
            refit_nodes=tuple(dirty),
            report=report,
        )

    def drain(
        self,
        leaf_id: int,
        *,
        epochs: Optional[int] = None,
        now: float = 0.0,
    ) -> DrainResult:
        """Remove an end node, re-partitioning its columns onto siblings.

        The drained leaf's columns go round-robin to the sibling leaves
        under the same parent (any other leaves when no sibling leaf
        exists); gateways left childless cascade away; recipients and
        their ancestor paths re-encode. Node ids are never reused, so a
        later join of the same columns reproduces the original models.
        """
        self._require_trained()
        fed = self.federation
        hierarchy = fed.hierarchy
        node = hierarchy.nodes.get(leaf_id)
        if node is None:
            raise KeyError(f"unknown node {leaf_id}")
        if not node.is_leaf:
            raise ValueError(f"node {leaf_id} is not an end node")
        if self.states.get(leaf_id) is NodeState.CRASHED:
            raise ValueError(
                f"node {leaf_id} is crashed; respawn it before draining"
            )
        leaves_before = hierarchy.leaves()
        if len(leaves_before) <= 1:
            raise ValueError("cannot drain the last end node")
        siblings = [
            c for c in hierarchy.nodes[node.parent].children
            if c != leaf_id and hierarchy.nodes[c].is_leaf
        ]
        recipients = siblings or [l for l in leaves_before if l != leaf_id]
        recipients = sorted(
            recipients, key=lambda l: hierarchy.nodes[l].leaf_index
        )
        pre_slices_by_leaf = {
            l: fed.partition.slices[hierarchy.nodes[l].leaf_index]
            for l in leaves_before
        }
        drained_cols = list(pre_slices_by_leaf[leaf_id])
        grants: Dict[int, List[int]] = {l: [] for l in recipients}
        for i, col in enumerate(drained_cols):
            grants[recipients[i % len(recipients)]].append(col)

        self._flush_residuals()
        self.states[leaf_id] = NodeState.DRAINING
        pre = self._structure_snapshot()
        removed = hierarchy.remove_leaf(leaf_id)
        new_slices: List[tuple[int, ...]] = [()] * len(hierarchy.leaves())
        for l in hierarchy.leaves():
            cols = pre_slices_by_leaf[l] + tuple(grants.get(l, ()))
            new_slices[hierarchy.nodes[l].leaf_index] = cols
        fed.partition = FeaturePartition(slices=tuple(new_slices))
        fed.partition.validate()
        hierarchy.allocate_dimensions(
            fed.config.dimension, fed.partition.feature_counts()
        )
        dirty = self._dirty_nodes(*pre)
        report = self._refit(dirty, epochs)
        for rid in removed:
            fed.discard_node(rid)
            self._batch_hvs.pop(rid, None)
            self.states.pop(rid, None)
            self.monitor.release(rid)
        self._reset_residuals()
        self._record(
            "drain", leaf_id, removed=removed,
            recipients=recipients, refit=dirty,
        )
        obs.incr("topology.drain")
        return DrainResult(
            removed_nodes=tuple(removed),
            recipients=tuple(recipients),
            refit_nodes=tuple(dirty),
            report=report,
        )

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: Union[str, Path]) -> None:
        """Save the full topology state (v2) including the journal mark."""
        self._require_trained()
        save_topology_state(
            self.federation,
            path,
            learner=self.learner,
            node_states={
                nid: state.value for nid, state in self.states.items()
            },
            journal_seq=len(self.journal),
        )
        self.n_checkpoints += 1
        obs.incr("topology.checkpoints")

    @classmethod
    def restore(
        cls,
        path: Union[str, Path],
        train_x: np.ndarray,
        train_y: np.ndarray,
        *,
        lease_timeout_s: float = 1.0,
        now: float = 0.0,
    ) -> "TopologyController":
        """Reconstruct a controller (federation + learner) from a v2 file."""
        ckpt = load_topology_state(path)
        assert ckpt.federation is not None
        learner = ckpt.build_learner()
        controller = cls(
            ckpt.federation, train_x, train_y, learner=learner,
            lease_timeout_s=lease_timeout_s, now=now,
        )
        for nid, state in ckpt.node_states.items():
            controller.states[nid] = NodeState(state)
        controller.attach_trained()
        return controller

    # ------------------------------------------------------------------
    # online feedback journal
    # ------------------------------------------------------------------
    def record_feedback(
        self,
        node_id: int,
        query_hv: np.ndarray,
        predicted_class: int,
        true_class: Optional[int] = None,
    ) -> bool:
        """Journal one feedback event and apply it if the node is up.

        Feedback for a crashed node is journaled but not applied — the
        gateway buffers it — and :meth:`respawn` replays it during
        catch-up. Returns True when the event was applied live.
        """
        if self.learner is None:
            raise RuntimeError("controller has no online learner attached")
        if node_id not in self.federation.hierarchy.nodes:
            raise KeyError(f"unknown node {node_id}")
        event = FeedbackEvent(
            node_id=node_id,
            query_hv=np.asarray(query_hv, dtype=np.float64).copy(),
            predicted_class=int(predicted_class),
            true_class=None if true_class is None else int(true_class),
        )
        self.journal.append(event)
        if self.states.get(node_id) is NodeState.CRASHED:
            obs.incr("topology.feedback.buffered")
            return False
        self.learner.record_feedback(
            node_id, event.query_hv, event.predicted_class, event.true_class
        )
        return True

    # ------------------------------------------------------------------
    # crash / detect / respawn
    # ------------------------------------------------------------------
    def fail(self, node_id: int, *, now: float = 0.0) -> None:
        """Simulate a hard crash: the node loses all volatile state.

        Its model and residual accumulator are wiped (the encoder and
        projection regenerate from the seed — they are firmware, not
        state) and it stops heartbeating, so the lease monitor will
        report it. The root cannot crash: it is the escalation fallback
        of last resort, exactly as in the serving runtime.
        """
        hierarchy = self.federation.hierarchy
        if node_id not in hierarchy.nodes:
            raise KeyError(f"unknown node {node_id}")
        if node_id == hierarchy.root_id:
            raise ValueError("the central node cannot crash")
        if self.states.get(node_id) is NodeState.CRASHED:
            raise ValueError(f"node {node_id} is already crashed")
        self.federation.rebuild_node(node_id)
        if self.learner is not None:
            node = hierarchy.nodes[node_id]
            self.learner.residuals[node_id] = ResidualAccumulator(
                self.federation.n_classes, node.dimension
            )
        self.states[node_id] = NodeState.CRASHED
        self._record("fail", node_id, at=now)
        obs.incr("topology.failures")

    def heartbeat_active(self, now: float) -> None:
        """Refresh leases of every non-crashed node (crashed stay silent)."""
        for nid in sorted(self.states):
            if self.states[nid] is not NodeState.CRASHED:
                self.monitor.beat(nid, now)

    def detect_failures(self, now: float) -> List[int]:
        """Sweep leases; newly expired nodes transition to CRASHED."""
        detected = []
        for nid in self.monitor.expired(now):
            detected.append(nid)
            if self.states.get(nid) is not NodeState.CRASHED:
                self.states[nid] = NodeState.CRASHED
            self._record("detect", nid, at=now)
            obs.incr("topology.detections")
        return detected

    def respawn(
        self,
        node_id: int,
        checkpoint_path: Union[str, Path],
        *,
        now: float = 0.0,
    ) -> int:
        """Replace a crashed node: restore from checkpoint, replay journal.

        The node's model and residual accumulator install verbatim from
        the checkpoint, then every journaled feedback event for this
        node since the checkpoint's journal mark replays in order —
        both the events the crash destroyed and the ones buffered while
        it was down. Returns the number of replayed events. After the
        next propagation the node is bit-identical to one that never
        crashed.
        """
        if self.states.get(node_id) is not NodeState.CRASHED:
            raise ValueError(f"node {node_id} is not crashed")
        self.states[node_id] = NodeState.RESTORING
        ckpt = load_topology_state(checkpoint_path, reconstruct=False)
        validate_topology_meta(ckpt.meta, self.federation, checkpoint_path)
        self.federation.classifiers[node_id].set_model(ckpt.models[node_id])
        replayed = 0
        if self.learner is not None:
            node = self.federation.hierarchy.nodes[node_id]
            acc = ResidualAccumulator(self.federation.n_classes, node.dimension)
            snap = ckpt.residuals.get(node_id)
            if snap is not None:
                acc.negative = snap.negative.copy()
                acc.positive = snap.positive.copy()
                acc.negative_counts = snap.negative_counts.copy()
                acc.positive_counts = snap.positive_counts.copy()
                acc.feedback_count = int(snap.feedback_count)
            self.learner.residuals[node_id] = acc
            for event in self.journal[ckpt.journal_seq:]:
                if event.node_id == node_id:
                    self.learner.record_feedback(
                        node_id, event.query_hv,
                        event.predicted_class, event.true_class,
                    )
                    replayed += 1
        resurrected = self.monitor.beat(node_id, now)
        self.states[node_id] = NodeState.ACTIVE
        self._record(
            "respawn", node_id, at=now, replayed=replayed,
            resurrected=resurrected,
        )
        obs.incr("topology.respawns")
        return replayed

    # ------------------------------------------------------------------
    # witness
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """SHA-256 over the complete control-plane state.

        Covers structure (hierarchy, partition, config), lifecycle
        (states, transition log), learning state (model bytes, residual
        stacks, propagation counter) and the journal position. Two
        same-seed runs of any scenario produce identical fingerprints;
        any divergence — one flipped model bit, one extra transition —
        changes it.
        """
        fed = self.federation
        payload = {
            "hierarchy": fed.hierarchy.spec(),
            "partition": [list(s) for s in fed.partition.slices],
            "config": asdict(fed.config),
            "holographic": fed.holographic,
            "n_classes": fed.n_classes,
            "states": {
                str(nid): state.value
                for nid, state in sorted(self.states.items())
            },
            "transitions": [
                (t.kind, t.node_id, list(t.detail)) for t in self.transitions
            ],
            "journal_seq": len(self.journal),
            "propagations": (
                self.learner._propagations if self.learner is not None else 0
            ),
        }
        digest = hashlib.sha256()
        digest.update(json.dumps(payload, sort_keys=True).encode("utf-8"))
        for nid in sorted(fed.classifiers):
            model = fed.classifiers[nid].class_hypervectors
            digest.update(f"model:{nid}".encode("utf-8"))
            digest.update(b"untrained" if model is None else model.tobytes())
        if self.learner is not None:
            for nid in sorted(self.learner.residuals):
                acc = self.learner.residuals[nid]
                digest.update(f"residual:{nid}:{acc.feedback_count}".encode())
                digest.update(acc.negative.tobytes())
                digest.update(acc.positive.tobytes())
                digest.update(acc.negative_counts.tobytes())
                digest.update(acc.positive_counts.tobytes())
        return digest.hexdigest()


# ----------------------------------------------------------------------
# replacement scenario harness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioSpec:
    """Deterministic schedule for one crash-replacement scenario.

    The feedback stream splits into ``n_steps`` segments; each segment
    records feedback, then hits the propagation barrier and a
    checkpoint. During segment ``crash_step`` the victim leaf crashes
    mid-segment — after half of the segment's feedback was applied and
    with the other half arriving while it is down — is detected by
    lease expiry, and respawns from the latest checkpoint before the
    barrier. Mid-outage the system serves a workload under a
    :class:`~repro.serve.faults.FaultPlan` with the victim's crash
    window (plus message drops), and serves it again fault-free after
    recovery.
    """

    n_steps: int = 3
    crash_step: int = 1
    crash_leaf: Optional[int] = None
    lease_timeout_s: float = 0.5
    heartbeat_period_s: float = 0.25
    step_duration_s: float = 2.0
    drop_probability: float = 0.1
    serve_rate_rps: float = 2000.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.crash_step < self.n_steps:
            raise ValueError(
                f"crash_step {self.crash_step} outside 0..{self.n_steps - 1}"
            )


@dataclass
class ScenarioResult:
    """Witnessed outcome of one scenario run."""

    fingerprint: str
    controller_fingerprint: str
    outage_serve: object
    final_serve: object
    n_lost_outage: int
    n_lost_final: int
    n_replayed: int
    detected_at_s: Optional[float]
    events: List[str] = field(default_factory=list)


def _serve_phase(inference, serve_x, spec: ScenarioSpec, plan):
    from repro.network.medium import get_medium
    from repro.serve import ServeConfig, ServingRuntime, make_workload

    workload = make_workload(serve_x, inference, seed=spec.seed)
    runtime = ServingRuntime(
        inference,
        get_medium("wired-1gbps"),
        ServeConfig(max_batch=16, max_wait_ms=1.0, queue_depth=4096),
        fault_plan=plan,
    )
    result = runtime.serve_open_loop(
        workload, rate_rps=spec.serve_rate_rps, seed=spec.seed
    )
    return result, len(workload) - result.n_total


def run_replacement_scenario(
    controller: TopologyController,
    inference: HierarchicalInference,
    stream_x: np.ndarray,
    stream_y: np.ndarray,
    serve_x: np.ndarray,
    checkpoint_path: Union[str, Path],
    spec: ScenarioSpec = ScenarioSpec(),
    *,
    inject_crash: bool = True,
) -> ScenarioResult:
    """Run the complete replacement loop on a virtual clock.

    With ``inject_crash=False`` the identical schedule runs without the
    crash — the uninterrupted baseline a recovered run must match
    bit-for-bit. The returned fingerprint hashes the controller state
    and both serve phases, so two same-seed runs are comparable with a
    single string equality.
    """
    import math

    from repro.serve.faults import FaultPlan

    if controller.learner is None:
        raise ValueError("scenario requires a controller with a learner")
    fed = controller.federation
    hierarchy = fed.hierarchy
    leaves = hierarchy.leaves()
    victim = spec.crash_leaf if spec.crash_leaf is not None else leaves[0]
    if victim not in leaves:
        raise ValueError(f"crash_leaf {victim} is not an end node")
    stream_x = check_matrix(
        "stream_x", stream_x, cols=fed.partition.n_features
    )
    stream_y = check_labels(
        "stream_y", stream_y, n_classes=fed.n_classes
    )
    events: List[str] = []
    clock = 0.0
    detected_at: Optional[float] = None
    n_replayed = 0
    outage_serve = None
    n_lost_outage = 0
    controller.heartbeat_active(clock)
    controller.checkpoint(checkpoint_path)
    bounds = np.linspace(0, stream_x.shape[0], spec.n_steps + 1).astype(int)
    for step in range(spec.n_steps):
        lo, hi = int(bounds[step]), int(bounds[step + 1])
        chunk_x, chunk_y = stream_x[lo:hi], stream_y[lo:hi]
        # Entry leaves for this segment's queries. The victim stays in
        # the pool even in the crash segment: its predictions happen
        # *before* it goes down; only the delayed labels (feedback)
        # land after — the paper's feedback model, and exactly what
        # the buffer-and-replay path exists for.
        rng = derive_rng(spec.seed + step, "scenario-entry-leaves")
        start = np.asarray(leaves)[
            rng.integers(0, len(leaves), size=chunk_x.shape[0])
        ]
        feedback: List[Tuple[int, np.ndarray, int, int]] = []
        if chunk_x.shape[0] > 0:
            encodings = fed.encode_all(chunk_x)
            outcome = inference.run(
                chunk_x, start_leaves=start, encodings=encodings
            )
            for i in np.flatnonzero(outcome.labels != chunk_y):
                nid = int(outcome.deciding_node[i])
                feedback.append(
                    (
                        nid,
                        encodings[nid][i].astype(np.float64),
                        int(outcome.labels[i]),
                        int(chunk_y[i]),
                    )
                )
        # The crash lands mid-segment: half the feedback was delivered
        # (and the victim's share of it dies with the node), the other
        # half arrives while it is down (buffered, replayed on respawn).
        cut = len(feedback) // 2 if step == spec.crash_step else len(feedback)
        for nid, hv, pred, true in feedback[:cut]:
            controller.record_feedback(nid, hv, pred, true)
        if inject_crash and step == spec.crash_step:
            controller.fail(victim, now=clock)
            events.append(f"fail:{victim}@{clock:.2f}")
        for nid, hv, pred, true in feedback[cut:]:
            controller.record_feedback(nid, hv, pred, true)
        if step == spec.crash_step:
            # Mid-outage serving: the victim's crash window refuses its
            # queries at admission; drops inject retries elsewhere. The
            # baseline serves the same workload fault-free.
            plan = (
                FaultPlan(
                    seed=spec.seed,
                    drop_probability=spec.drop_probability,
                    crash_windows={victim: (0.0, math.inf)},
                )
                if inject_crash
                else None
            )
            outage_serve, n_lost_outage = _serve_phase(
                inference, serve_x, spec, plan
            )
        if inject_crash and step == spec.crash_step:
            while detected_at is None:
                clock += spec.heartbeat_period_s
                controller.heartbeat_active(clock)
                if victim in controller.detect_failures(clock):
                    detected_at = clock
            events.append(f"detect:{victim}@{detected_at:.2f}")
            n_replayed = controller.respawn(
                victim, checkpoint_path, now=clock
            )
            events.append(f"respawn:{victim}:replayed={n_replayed}")
        # Propagation barrier + checkpoint close every segment — the
        # paper's "every midnight" moment, and the recovery point the
        # next crash would catch up from.
        controller.learner.propagate()
        controller.checkpoint(checkpoint_path)
        clock += spec.step_duration_s
        controller.heartbeat_active(clock)
        events.append(f"barrier:{step}@{clock:.2f}")
    final_serve, n_lost_final = _serve_phase(inference, serve_x, spec, None)
    controller_fp = controller.fingerprint()
    digest = hashlib.sha256()
    digest.update(controller_fp.encode("utf-8"))
    if outage_serve is not None:
        digest.update(repr(outage_serve.fingerprint()).encode("utf-8"))
    digest.update(repr(final_serve.fingerprint()).encode("utf-8"))
    digest.update(f"lost:{n_lost_outage}:{n_lost_final}".encode("utf-8"))
    digest.update(f"replayed:{n_replayed}".encode("utf-8"))
    return ScenarioResult(
        fingerprint=digest.hexdigest(),
        controller_fingerprint=controller_fp,
        outage_serve=outage_serve,
        final_serve=final_serve,
        n_lost_outage=n_lost_outage,
        n_lost_final=n_lost_final,
        n_replayed=n_replayed,
        detected_at_s=detected_at,
        events=events,
    )
