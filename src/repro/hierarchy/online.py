"""Hierarchical online learning from user feedback (Sec. IV-D, Fig. 5).

During runtime each inference is answered by some node (local answer or
escalated). When the user flags a wrong answer, the deciding node adds
the query hypervector to its per-class *residual* accumulator instead
of updating the model immediately. At a propagation point (e.g. "every
midnight"), bottom-up over the hierarchy:

1. each node folds its residuals into its own model;
2. residual stacks travel to the parent, which hierarchically encodes
   the children's residuals into its own space, merges them with its
   local residuals, and repeats.

The :class:`OnlineSession` drives a feedback stream in steps and
records the per-level accuracy / confidence / inference-location
metrics that Figs. 8 and 9 report.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

import repro.obs as obs
from repro.core.online import ResidualAccumulator
from repro.hierarchy.federation import EdgeHDFederation
from repro.hierarchy.inference import HierarchicalInference
from repro.network.message import Message, MessageKind
from repro.utils.validation import check_labels, check_matrix, check_vector

__all__ = ["OnlineLearner", "OnlineSession", "OnlineStepMetrics"]

logger = logging.getLogger(__name__)


class OnlineLearner:
    """Residual-based online updates over a trained federation."""

    def __init__(
        self,
        federation: EdgeHDFederation,
        learning_rate: float = 1.0,
        feedback_includes_label: bool = False,
        aggregate_children: bool = True,
        normalize: bool = False,
    ) -> None:
        """``aggregate_children=True`` is the Fig. 5b flow: a parent
        merges the hierarchical encoding of its children's residuals
        into its own before applying. Disable it when feedback is
        recorded *path-wide* (every handler of a query records its own
        residual), where upward aggregation would double-count.

        ``normalize=True`` rescales every class hypervector to unit L2
        norm when the learner is attached, and records unit-norm query
        hypervectors. Class hypervectors grow with the offline sample
        count while a feedback query is O(1); without normalization a
        well-trained model is immovable by feedback (the OnlineHD
        recipe, the paper's ref [32]). Cosine classification is
        invariant to the rescaling.
        """
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.federation = federation
        self.learning_rate = float(learning_rate)
        self.feedback_includes_label = bool(feedback_includes_label)
        self.aggregate_children = bool(aggregate_children)
        self.normalize = bool(normalize)
        #: 1/(1 + decay * t) learning-rate schedule over propagations;
        #: keeps repeated mean-correction updates from oscillating.
        self.learning_rate_decay = 0.5
        self._propagations = 0
        if normalize:
            from repro.core.hypervector import normalize_rows

            for clf in federation.classifiers.values():
                if clf.class_hypervectors is not None:
                    clf.set_model(normalize_rows(clf.class_hypervectors))
        self.residuals: Dict[int, ResidualAccumulator] = {
            node_id: ResidualAccumulator(federation.n_classes, node.dimension)
            for node_id, node in federation.hierarchy.nodes.items()
        }

    # ------------------------------------------------------------------
    def record_feedback(
        self,
        node_id: int,
        query_hv: np.ndarray,
        predicted_class: int,
        true_class: Optional[int] = None,
    ) -> None:
        """Record one negative feedback at the deciding node."""
        label = true_class if self.feedback_includes_label else None
        query = check_vector(
            "query_hv", query_hv, length=self.residuals[node_id].dimension
        )
        if self.normalize:
            norm = np.linalg.norm(query)
            if norm > 0:
                query = query / norm
        self.residuals[node_id].record_negative(query, predicted_class, label)
        obs.incr("online.feedback.events")

    def pending_feedback(self) -> int:
        """Total feedback events not yet propagated."""
        return sum(r.feedback_count for r in self.residuals.values())

    # ------------------------------------------------------------------
    @obs.traced("propagate")
    def propagate(self) -> List[Message]:
        """Apply + propagate all residuals bottom-up; returns transfers.

        Implements Fig. 5b: the *effective* residual of a node is its
        own accumulator merged with the hierarchical encoding of its
        children's effective residuals; each node applies its effective
        residual to its model, then the stacks move one level up.
        """
        federation = self.federation
        hierarchy = federation.hierarchy
        messages: List[Message] = []
        effective_lr = self.learning_rate / (
            1.0 + self.learning_rate_decay * self._propagations
        )
        self._propagations += 1
        # effective (negative, positive, count) per node, in node space.
        effective: Dict[int, tuple[np.ndarray, np.ndarray, int]] = {}
        for node_id in hierarchy.postorder():
            node = hierarchy.nodes[node_id]
            own = self.residuals[node_id]
            neg, pos = own.snapshot()
            count = own.feedback_count
            if not node.is_leaf and self.aggregate_children:
                child_negs = [effective[c][0] for c in node.children]
                child_poss = [effective[c][1] for c in node.children]
                child_count = sum(effective[c][2] for c in node.children)
                if child_count > 0:
                    neg += federation.combine_children(
                        node_id, child_negs, binarize=False
                    )
                    pos += federation.combine_children(
                        node_id, child_poss, binarize=False
                    )
                    count += child_count
            effective[node_id] = (neg, pos, count)
            if count > 0:
                if self.aggregate_children and not node.is_leaf:
                    merged = ResidualAccumulator(
                        federation.n_classes, node.dimension
                    )
                    merged.load(neg, pos, count)
                    source = merged
                else:
                    source = own
                source.apply_to(
                    federation.classifiers[node_id],
                    learning_rate=effective_lr,
                    average=self.normalize,
                    renormalize=self.normalize,
                )
                obs.incr("online.residual_updates")
            if (
                node.parent is not None
                and count > 0
                and self.aggregate_children
            ):
                messages.append(
                    Message(
                        source=node_id,
                        destination=node.parent,
                        kind=MessageKind.RESIDUALS,
                        payload_bytes=4 * (neg.size + pos.size),
                    )
                )
                obs.incr("online.residual_bytes", 4 * (neg.size + pos.size))
            own.clear()
        obs.incr("online.propagations")
        logger.debug(
            "propagate: %d residual transfers, lr %.4f",
            len(messages), effective_lr,
        )
        return messages


@dataclass
class OnlineStepMetrics:
    """Snapshot of system quality after one propagation step."""

    step: int
    samples_seen: int
    accuracy_by_level: Dict[int, float]
    mean_confidence_by_level: Dict[int, float]
    inference_frequency_by_level: Dict[int, float]
    feedback_events: int
    messages: List[Message] = field(default_factory=list)

    @property
    def central_accuracy(self) -> float:
        return self.accuracy_by_level[max(self.accuracy_by_level)]

    @property
    def end_node_accuracy(self) -> float:
        return self.accuracy_by_level[min(self.accuracy_by_level)]


class OnlineSession:
    """Drive a feedback stream through the hierarchy in steps (Fig. 8/9).

    The stream is split into ``n_steps`` equal segments. Within a
    segment every sample is classified with escalation-based inference;
    misclassified samples generate negative feedback at the deciding
    node. After each segment residuals propagate and a metrics snapshot
    is taken on the held-out test set.
    """

    def __init__(
        self,
        federation: EdgeHDFederation,
        learner: Optional[OnlineLearner] = None,
        inference: Optional[HierarchicalInference] = None,
        feedback_mode: str = "deciding",
    ) -> None:
        """``feedback_mode="deciding"`` records feedback only at the
        node that produced the wrong answer (the literal Sec. IV-D
        flow); ``"path"`` lets every node that handled the escalated
        query record its own mistake too — no extra communication, and
        the behaviour that makes inference migrate to the edge over
        time (Fig. 8c)."""
        if feedback_mode not in {"deciding", "path"}:
            raise ValueError(
                f"feedback_mode must be 'deciding' or 'path', got {feedback_mode!r}"
            )
        self.federation = federation
        self.learner = learner or OnlineLearner(federation)
        self.inference = inference or HierarchicalInference(federation)
        self.feedback_mode = feedback_mode

    # ------------------------------------------------------------------
    def _snapshot(
        self,
        step: int,
        samples_seen: int,
        feedback_events: int,
        test_x: np.ndarray,
        test_y: np.ndarray,
        messages: List[Message],
    ) -> OnlineStepMetrics:
        hierarchy = self.federation.hierarchy
        encodings = self.federation.encode_all(test_x)
        acc: Dict[int, list[float]] = {}
        conf: Dict[int, list[float]] = {}
        for node_id, enc in encodings.items():
            level = hierarchy.nodes[node_id].level
            pred = self.federation.classifiers[node_id].predict(enc)
            acc.setdefault(level, []).append(float(np.mean(pred.labels == test_y)))
            conf.setdefault(level, []).append(float(np.mean(pred.top_confidence)))
        outcome = self.inference.run(test_x)
        return OnlineStepMetrics(
            step=step,
            samples_seen=samples_seen,
            accuracy_by_level={l: float(np.mean(v)) for l, v in sorted(acc.items())},
            mean_confidence_by_level={
                l: float(np.mean(v)) for l, v in sorted(conf.items())
            },
            inference_frequency_by_level=outcome.level_frequency(hierarchy.depth),
            feedback_events=feedback_events,
            messages=messages,
        )

    def run(
        self,
        stream_x: np.ndarray,
        stream_y: np.ndarray,
        test_x: np.ndarray,
        test_y: np.ndarray,
        n_steps: int = 10,
        chunk_size: int = 256,
    ) -> List[OnlineStepMetrics]:
        """Consume the stream in ``n_steps`` segments, snapshotting each.

        Returns ``n_steps + 1`` metric records; index 0 is the state of
        the offline-trained system before any feedback.
        """
        sx = check_matrix("stream_x", stream_x, cols=self.federation.partition.n_features)
        sy = check_labels("stream_y", stream_y, n_classes=self.federation.n_classes)
        tx = check_matrix("test_x", test_x, cols=self.federation.partition.n_features)
        ty = check_labels("test_y", test_y, n_classes=self.federation.n_classes)
        if sx.shape[0] != sy.shape[0]:
            raise ValueError("stream features/labels length mismatch")
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

        metrics = [self._snapshot(0, 0, 0, tx, ty, [])]
        bounds = np.linspace(0, sx.shape[0], n_steps + 1).astype(int)
        seen = 0
        for step in range(1, n_steps + 1):
            lo, hi = bounds[step - 1], bounds[step]
            feedback = 0
            for start in range(lo, hi, chunk_size):
                stop = min(start + chunk_size, hi)
                feedback += self._process_chunk(sx[start:stop], sy[start:stop])
            seen += hi - lo
            messages = self.learner.propagate()
            metrics.append(self._snapshot(step, seen, feedback, tx, ty, messages))
        return metrics

    def _process_chunk(self, chunk_x: np.ndarray, chunk_y: np.ndarray) -> int:
        """Classify a chunk, recording negative feedback for mistakes.

        When the final (possibly escalated) answer is flagged wrong,
        every node that *handled* the query on its way up — from the
        first decision-capable level to the deciding node — checks its
        own prediction and records the query in its residuals if it was
        also wrong. The query hypervector is already present at those
        nodes (they encoded/escalated it), so this costs no extra
        communication, and it is what lets low-level models catch up
        and inference migrate toward the edge (Fig. 8c).
        """
        if chunk_x.shape[0] == 0:
            return 0
        federation = self.federation
        hierarchy = federation.hierarchy
        encodings = federation.encode_all(chunk_x)
        outcome = self.inference.run(chunk_x, encodings=encodings)
        wrong = np.flatnonzero(outcome.labels != chunk_y)
        if wrong.size == 0:
            return 0
        if self.feedback_mode == "deciding":
            for i in wrong:
                node_id = int(outcome.deciding_node[i])
                self.learner.record_feedback(
                    node_id,
                    encodings[node_id][i].astype(np.float64),
                    predicted_class=int(outcome.labels[i]),
                    true_class=int(chunk_y[i]),
                )
            return int(wrong.size)
        # Path mode: per-node predicted labels for the whole chunk
        # (reuses the hierarchical encodings).
        node_labels = {
            node_id: federation.classifiers[node_id].predict_labels(enc)
            for node_id, enc in encodings.items()
        }
        min_level = getattr(self.inference, "min_level", 1)
        for i in wrong:
            deciding = int(outcome.deciding_node[i])
            deciding_level = hierarchy.nodes[deciding].level
            # Handlers: the nodes on the query's escalation path, i.e.
            # the start leaf's ancestors up to the deciding node, that
            # are allowed to decide.
            path = hierarchy.path_to_root(int(outcome.start_leaf[i]))
            handled = [
                nid for nid in path
                if min_level <= hierarchy.nodes[nid].level <= deciding_level
            ]
            true = int(chunk_y[i])
            for node_id in handled:
                pred = int(node_labels[node_id][i])
                if pred == true:
                    continue
                self.learner.record_feedback(
                    node_id,
                    encodings[node_id][i].astype(np.float64),
                    predicted_class=pred,
                    true_class=true,
                )
        return int(wrong.size)
