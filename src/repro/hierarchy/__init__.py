"""Hierarchy-level orchestration: topology, federation, inference, online."""

from repro.hierarchy.checkpoint import (
    CheckpointError,
    load_federation,
    save_federation,
)
from repro.hierarchy.deployment import DeploymentReport, SimulatedDeployment
from repro.hierarchy.federation import (
    EdgeHDFederation,
    FederatedTrainingReport,
    batch_groups,
)
from repro.hierarchy.inference import HierarchicalInference, InferenceOutcome
from repro.hierarchy.online import OnlineLearner, OnlineSession, OnlineStepMetrics
from repro.hierarchy.topology import (
    Hierarchy,
    Node,
    build_deep_tree,
    build_pecan,
    build_star,
    build_tree,
)

__all__ = [
    "CheckpointError",
    "load_federation",
    "save_federation",
    "DeploymentReport",
    "SimulatedDeployment",
    "EdgeHDFederation",
    "FederatedTrainingReport",
    "batch_groups",
    "HierarchicalInference",
    "InferenceOutcome",
    "OnlineLearner",
    "OnlineSession",
    "OnlineStepMetrics",
    "Hierarchy",
    "Node",
    "build_deep_tree",
    "build_pecan",
    "build_star",
    "build_tree",
]
