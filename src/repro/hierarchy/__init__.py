"""Hierarchy-level orchestration: topology, federation, inference, online."""

from repro.hierarchy.checkpoint import (
    CheckpointError,
    TopologyCheckpoint,
    load_federation,
    load_topology_state,
    save_federation,
    save_topology_state,
)
from repro.hierarchy.control import (
    DrainResult,
    FeedbackEvent,
    JoinResult,
    NodeLeaseMonitor,
    NodeState,
    ScenarioResult,
    ScenarioSpec,
    TopologyController,
    TransitionRecord,
    run_replacement_scenario,
)
from repro.hierarchy.deployment import DeploymentReport, SimulatedDeployment
from repro.hierarchy.federation import (
    EdgeHDFederation,
    FederatedTrainingReport,
    batch_groups,
)
from repro.hierarchy.inference import HierarchicalInference, InferenceOutcome
from repro.hierarchy.online import OnlineLearner, OnlineSession, OnlineStepMetrics
from repro.hierarchy.topology import (
    Hierarchy,
    Node,
    build_deep_tree,
    build_pecan,
    build_star,
    build_tree,
)

__all__ = [
    "CheckpointError",
    "TopologyCheckpoint",
    "load_federation",
    "load_topology_state",
    "save_federation",
    "save_topology_state",
    "DrainResult",
    "FeedbackEvent",
    "JoinResult",
    "NodeLeaseMonitor",
    "NodeState",
    "ScenarioResult",
    "ScenarioSpec",
    "TopologyController",
    "TransitionRecord",
    "run_replacement_scenario",
    "DeploymentReport",
    "SimulatedDeployment",
    "EdgeHDFederation",
    "FederatedTrainingReport",
    "batch_groups",
    "HierarchicalInference",
    "InferenceOutcome",
    "OnlineLearner",
    "OnlineSession",
    "OnlineStepMetrics",
    "Hierarchy",
    "Node",
    "build_deep_tree",
    "build_pecan",
    "build_star",
    "build_tree",
]
