"""IoT hierarchy topologies: STAR, TREE and deep trees (Sec. VI-A/G).

A hierarchy is a rooted tree. *End nodes* (leaves, level 1) own sensor
feature subsets; *gateway* nodes aggregate children; the *central* node
is the root. The paper evaluates

* **STAR** — every end node connects directly to the central node;
* **TREE** — three levels, gateways with two end-node children each
  (a leftover end node attaches straight to the central node, exactly
  as described for APRI/PDP);
* deeper trees (depth 3..7) for the Fig. 13 study, and the PECAN
  appliance→house→street→city layout.

Dimensionality allocation (Sec. IV-A): with global dimension ``D`` and
``n`` total features, a node covering ``n_i`` features receives
``d_i = round(D * n_i / n)`` dimensions; the root always gets ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Node", "Hierarchy", "build_star", "build_tree", "build_deep_tree", "build_pecan"]


@dataclass
class Node:
    """One device in the hierarchy."""

    node_id: int
    parent: Optional[int]
    children: List[int] = field(default_factory=list)
    #: 1 for end nodes, increasing toward the root.
    level: int = 1
    #: index into the feature partition; None for internal nodes.
    leaf_index: Optional[int] = None
    #: hypervector dimensionality assigned by allocate_dimensions().
    dimension: int = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def is_root(self) -> bool:
        return self.parent is None


class Hierarchy:
    """Rooted tree of devices with dimension bookkeeping."""

    def __init__(self) -> None:
        self.nodes: Dict[int, Node] = {}
        self.root_id: Optional[int] = None
        self._next_id = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, parent: Optional[int] = None, leaf_index: Optional[int] = None) -> int:
        """Add a node under ``parent`` (or as root) and return its id."""
        if parent is None and self.root_id is not None:
            raise ValueError("hierarchy already has a root")
        if parent is not None and parent not in self.nodes:
            raise KeyError(f"unknown parent node {parent}")
        node_id = self._next_id
        self._next_id += 1
        node = Node(node_id=node_id, parent=parent, leaf_index=leaf_index)
        self.nodes[node_id] = node
        if parent is None:
            self.root_id = node_id
        else:
            self.nodes[parent].children.append(node_id)
        return node_id

    @property
    def id_bound(self) -> int:
        """Smallest integer exceeding every node id ever assigned.

        Ids are never reused after a drain, so this only grows; it is
        the stable count to draw per-node seed streams against (seed
        ``i`` must not depend on how many nodes currently exist).
        """
        return self._next_id

    def graft_leaf(self, parent: int) -> int:
        """Admit a new end node under ``parent`` at runtime.

        The new node takes the next free leaf index (so existing leaf
        indices — and therefore existing feature slices — are
        untouched) and the hierarchy is re-finalized. Returns the new
        node id. ``parent`` must be a gateway or the central node:
        grafting under an end node would silently convert it into a
        gateway and orphan its feature slice.
        """
        if parent not in self.nodes:
            raise KeyError(f"unknown parent node {parent}")
        if self.nodes[parent].is_leaf:
            raise ValueError(
                f"cannot graft under end node {parent}; the parent must "
                "be a gateway or the central node"
            )
        node_id = self.add_node(parent=parent, leaf_index=len(self.leaves()))
        self.finalize()
        return node_id

    def remove_leaf(self, leaf_id: int) -> List[int]:
        """Drain an end node, cascading through emptied gateways.

        Gateways left childless are removed too (they would have
        nothing to aggregate and would fail finalization), and the
        remaining leaf indices are compacted to keep the 0..L-1
        invariant. Returns every removed node id, the leaf first.
        Removed ids are never reused — see :attr:`id_bound`.
        """
        node = self.nodes.get(leaf_id)
        if node is None:
            raise KeyError(f"unknown node {leaf_id}")
        if not node.is_leaf:
            raise ValueError(f"node {leaf_id} is not an end node")
        if len(self.leaves()) <= 1:
            raise ValueError("cannot remove the last end node")
        assert node.parent is not None  # >1 leaf implies a non-leaf root
        removed_index = node.leaf_index
        removed = [leaf_id]
        self.nodes[node.parent].children.remove(leaf_id)
        current: Optional[int] = node.parent
        del self.nodes[leaf_id]
        while current is not None:
            gateway = self.nodes[current]
            if gateway.children or gateway.parent is None:
                break
            removed.append(current)
            self.nodes[gateway.parent].children.remove(current)
            del self.nodes[current]
            current = gateway.parent
        assert removed_index is not None
        for n in self.nodes.values():
            if n.is_leaf and n.leaf_index is not None and n.leaf_index > removed_index:
                n.leaf_index -= 1
        self.finalize()
        return removed

    def spec(self) -> dict:
        """JSON-safe structural description for checkpointing.

        Captures ids, parents, leaf indices and the id bound; children
        order is recoverable because ids are assigned in insertion
        order (``add_node`` appends, so a parent's children are always
        sorted by id).
        """
        return {
            "next_id": self._next_id,
            "nodes": [
                {
                    "id": n.node_id,
                    "parent": n.parent,
                    "leaf_index": n.leaf_index,
                }
                for n in sorted(self.nodes.values(), key=lambda n: n.node_id)
            ],
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "Hierarchy":
        """Reconstruct a (possibly id-gapped) hierarchy from :meth:`spec`.

        Bypasses sequential id assignment so drained topologies restore
        with their original ids — required for the node-id-keyed seed
        streams to regenerate identical encoders and projections.
        """
        h = cls()
        entries = sorted(spec["nodes"], key=lambda e: int(e["id"]))
        for entry in entries:
            node_id = int(entry["id"])
            parent = entry["parent"]
            parent = None if parent is None else int(parent)
            leaf_index = entry["leaf_index"]
            leaf_index = None if leaf_index is None else int(leaf_index)
            if node_id in h.nodes:
                raise ValueError(f"duplicate node id {node_id} in spec")
            if parent is None:
                if h.root_id is not None:
                    raise ValueError("spec has multiple roots")
                h.root_id = node_id
            elif parent not in h.nodes:
                raise ValueError(
                    f"spec node {node_id} references missing parent {parent}"
                )
            h.nodes[node_id] = Node(
                node_id=node_id, parent=parent, leaf_index=leaf_index
            )
            if parent is not None:
                h.nodes[parent].children.append(node_id)
        next_id = int(spec["next_id"])
        if h.nodes and next_id <= max(h.nodes):
            raise ValueError(
                f"spec next_id {next_id} does not exceed max node id {max(h.nodes)}"
            )
        h._next_id = next_id
        return h.finalize()

    def finalize(self) -> "Hierarchy":
        """Compute levels and validate structure. Call after building."""
        if self.root_id is None:
            raise ValueError("hierarchy has no root")
        # Levels: leaves are level 1; internal = 1 + max(child levels).
        for node_id in self.postorder():
            node = self.nodes[node_id]
            if node.is_leaf:
                node.level = 1
                if node.leaf_index is None:
                    raise ValueError(f"leaf {node_id} has no leaf_index")
            else:
                node.level = 1 + max(self.nodes[c].level for c in node.children)
        leaf_indices = sorted(
            n.leaf_index for n in self.nodes.values() if n.is_leaf
        )
        if leaf_indices != list(range(len(leaf_indices))):
            raise ValueError(
                f"leaf indices must be 0..L-1 without gaps, got {leaf_indices}"
            )
        return self

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def postorder(self) -> Iterator[int]:
        """Children-before-parent traversal from the root."""
        if self.root_id is None:
            return iter(())

        def walk(node_id: int) -> Iterator[int]:
            for child in self.nodes[node_id].children:
                yield from walk(child)
            yield node_id

        return walk(self.root_id)

    def preorder(self) -> Iterator[int]:
        """Parent-before-children traversal from the root."""
        if self.root_id is None:
            return iter(())

        def walk(node_id: int) -> Iterator[int]:
            yield node_id
            for child in self.nodes[node_id].children:
                yield from walk(child)

        return walk(self.root_id)

    def leaves(self) -> List[int]:
        """End-node ids ordered by leaf_index."""
        found = [n for n in self.nodes.values() if n.is_leaf]
        return [n.node_id for n in sorted(found, key=lambda n: n.leaf_index)]

    def internal_nodes(self) -> List[int]:
        """Gateway + central node ids in postorder."""
        return [nid for nid in self.postorder() if not self.nodes[nid].is_leaf]

    def subtree_leaves(self, node_id: int) -> List[int]:
        """Leaf ids under ``node_id`` (itself if a leaf)."""
        node = self.nodes[node_id]
        if node.is_leaf:
            return [node_id]
        out: List[int] = []
        for child in node.children:
            out.extend(self.subtree_leaves(child))
        return out

    def path_to_root(self, node_id: int) -> List[int]:
        """Node ids from ``node_id`` (inclusive) up to the root."""
        if node_id not in self.nodes:
            raise KeyError(f"unknown node {node_id}")
        path = [node_id]
        current = self.nodes[node_id]
        while current.parent is not None:
            path.append(current.parent)
            current = self.nodes[current.parent]
        return path

    @property
    def depth(self) -> int:
        """Number of levels (root level)."""
        if self.root_id is None:
            return 0
        return self.nodes[self.root_id].level

    def nodes_at_level(self, level: int) -> List[int]:
        return [n.node_id for n in self.nodes.values() if n.level == level]

    # ------------------------------------------------------------------
    # dimensionality allocation (Sec. IV-A)
    # ------------------------------------------------------------------
    def allocate_dimensions(self, total_dimension: int, feature_counts: List[int]) -> None:
        """Assign ``d_i = round(D * n_i / n)`` per node.

        ``feature_counts[i]`` is the number of features of leaf i. An
        internal node's feature coverage is the sum over its subtree;
        its dimension is the sum of its children's dimensions (so
        concatenation is well-defined), and the root therefore gets
        (within rounding) the full ``D``.
        """
        if total_dimension <= 0:
            raise ValueError("total_dimension must be positive")
        leaves = self.leaves()
        if len(feature_counts) != len(leaves):
            raise ValueError(
                f"{len(feature_counts)} feature counts for {len(leaves)} leaves"
            )
        total_features = sum(feature_counts)
        if total_features <= 0:
            raise ValueError("feature counts must sum to a positive value")
        for leaf_id in leaves:
            node = self.nodes[leaf_id]
            share = feature_counts[node.leaf_index] / total_features
            node.dimension = max(8, int(round(total_dimension * share)))
        for node_id in self.postorder():
            node = self.nodes[node_id]
            if not node.is_leaf:
                node.dimension = sum(self.nodes[c].dimension for c in node.children)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hierarchy(nodes={len(self.nodes)}, depth={self.depth})"


def build_star(n_end_nodes: int) -> Hierarchy:
    """STAR topology: all end nodes attach directly to the central node."""
    if n_end_nodes < 1:
        raise ValueError("need at least one end node")
    h = Hierarchy()
    root = h.add_node()
    for i in range(n_end_nodes):
        h.add_node(parent=root, leaf_index=i)
    return h.finalize()


def build_tree(n_end_nodes: int, fanout: int = 2) -> Hierarchy:
    """Three-level TREE: gateways with ``fanout`` end-node children.

    Mirrors Sec. VI-A: end nodes are grouped ``fanout`` at a time under
    gateways; a leftover group smaller than 2 attaches directly to the
    central node (as in the paper's 5-node APRI example: two gateways of
    two, one end node straight to the root).
    """
    if n_end_nodes < 1:
        raise ValueError("need at least one end node")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    h = Hierarchy()
    root = h.add_node()
    leaf = 0
    remaining = n_end_nodes
    while remaining > 0:
        group = min(fanout, remaining)
        if group == 1:
            h.add_node(parent=root, leaf_index=leaf)
            leaf += 1
        else:
            gateway = h.add_node(parent=root)
            for _ in range(group):
                h.add_node(parent=gateway, leaf_index=leaf)
                leaf += 1
        remaining -= group
    return h.finalize()


def build_deep_tree(n_end_nodes: int, depth: int, fanout: int = 2) -> Hierarchy:
    """Balanced tree of the requested ``depth`` (Fig. 13 study).

    End nodes are grouped under chains of gateways so the root sits at
    level ``depth``. With few end nodes the extra levels become chains
    of single-child gateways — matching the paper's observation that
    deeper configurations mostly add communication hops.
    """
    if depth < 2:
        raise ValueError("depth must be >= 2")
    if n_end_nodes < 1:
        raise ValueError("need at least one end node")
    h = Hierarchy()
    root = h.add_node()

    def grow(parent: int, level_above_leaves: int, leaf_counter: list[int], quota: int) -> None:
        """Attach ``quota`` leaves below ``parent`` across the remaining levels."""
        if quota <= 0:
            return
        if level_above_leaves == 1:
            for _ in range(quota):
                h.add_node(parent=parent, leaf_index=leaf_counter[0])
                leaf_counter[0] += 1
            return
        n_groups = min(fanout, quota)
        base, extra = divmod(quota, n_groups)
        for g in range(n_groups):
            child_quota = base + (1 if g < extra else 0)
            if child_quota == 0:
                continue
            gateway = h.add_node(parent=parent)
            grow(gateway, level_above_leaves - 1, leaf_counter, child_quota)

    grow(root, depth - 1, [0], n_end_nodes)
    return h.finalize()


def build_pecan(
    n_appliances: int = 312,
    appliances_per_house: int = 6,
    houses_per_street: int = 7,
) -> Hierarchy:
    """The four-level PECAN layout (Fig. 8).

    Appliance end nodes group under house nodes (up to 12 per house in
    the paper; default 6 gives the 52-house neighbourhood), houses group
    under street nodes (6-7 per street), streets attach to the city
    (central) node.
    """
    if n_appliances < 1:
        raise ValueError("need at least one appliance")
    if appliances_per_house < 1 or houses_per_street < 1:
        raise ValueError("grouping factors must be >= 1")
    h = Hierarchy()
    root = h.add_node()
    leaf = 0
    street: Optional[int] = None
    houses_in_street = 0
    while leaf < n_appliances:
        if street is None or houses_in_street == houses_per_street:
            street = h.add_node(parent=root)
            houses_in_street = 0
        house = h.add_node(parent=street)
        houses_in_street += 1
        for _ in range(min(appliances_per_house, n_appliances - leaf)):
            h.add_node(parent=house, leaf_index=leaf)
            leaf += 1
    return h.finalize()
